"""Bench — serving: snapshot warm start and cached query latency.

The production story of the paper (Section 7) is a *served* net: built
offline, answered online.  This benchmark measures the two properties the
serving layer exists for, and asserts both:

- **warm start**: loading a versioned snapshot (store replay through the
  trusted bulk path + BM25 rehydration) must be at least 2x faster than a
  fresh ``build_alicoco`` + service init at the same scale;
- **caching**: the LRU must put the cached-search p50 at least 10x below
  the uncached p50.

A warm-started service must also answer a mixed query battery *identically*
to the service built from scratch — warm start is an acceleration, not an
approximation.
"""

import time
from dataclasses import replace

from repro.pipeline.build import build_alicoco
from repro.serving import AliCoCoService

from conftest import BENCH_SCALE, SMOKE

_N_ITEMS = 160 if SMOKE else 480
_N_CONCEPTS = 40 if SMOKE else 110
#: Constant factors dominate at smoke scale; thresholds relax accordingly.
_MIN_WARM_SPEEDUP = 1.2 if SMOKE else 2.0
_MIN_CACHE_SPEEDUP = 3.0 if SMOKE else 10.0
_HIT_PASSES = 5


def _workload(built):
    """A mixed battery touching every endpoint, concept-card style."""
    requests = []
    for spec in built.concepts:
        concept_id = built.concept_ids[spec.text]
        requests.append(("search", spec.text))
        requests.append(("items_for_concept", concept_id, 10))
        requests.append(("interpretation", concept_id))
    for index in range(0, _N_ITEMS, 7):
        requests.append(("concepts_for_item", built.item_ids[index]))
    for primitive_id in list(built.primitive_ids.values())[::9]:
        requests.append(("hypernyms", primitive_id, True))
    return requests


def test_serving(tmp_path, report):
    scale = replace(BENCH_SCALE, n_items=_N_ITEMS)

    # Cold path: construct the net and fit the search index from scratch.
    start = time.perf_counter()
    built = build_alicoco(scale, n_concepts=_N_CONCEPTS)
    fresh = AliCoCoService.from_build(built, config_fingerprint=scale.fingerprint())
    cold_seconds = time.perf_counter() - start

    snapshot_path = tmp_path / "net.snapshot.jsonl"
    snapshot_lines = fresh.save_snapshot(snapshot_path)

    # Warm path: replay the snapshot, rehydrate the index, skip the build.
    # Best of three loads = steady-state restart cost, insulated from
    # one-off page-cache/allocator warmup noise.
    warm_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        warm = AliCoCoService.from_snapshot(
            snapshot_path, expected_fingerprint=scale.fingerprint()
        )
        warm_seconds = min(warm_seconds, time.perf_counter() - start)

    warm_speedup = cold_seconds / max(warm_seconds, 1e-9)
    assert warm_speedup >= _MIN_WARM_SPEEDUP, (
        f"warm start should be >={_MIN_WARM_SPEEDUP}x a fresh build, "
        f"got {warm_speedup:.2f}x"
    )

    # Parity: the warm service answers exactly like the fresh one.
    requests = _workload(built)
    fresh_answers = fresh.batch(requests)
    warm_answers = warm.batch(requests)
    assert fresh_answers == warm_answers

    # Cached vs uncached: the first batch above was all misses; repeat
    # passes are all hits.
    for _ in range(_HIT_PASSES):
        warm.batch(requests)
    stats = warm.stats()
    search = stats.endpoint("search")
    assert search.cache_misses == _N_CONCEPTS
    assert search.cache_hits == _HIT_PASSES * _N_CONCEPTS
    cache_speedup = search.miss_p50_ms / max(search.hit_p50_ms, 1e-9)
    assert cache_speedup >= _MIN_CACHE_SPEEDUP, (
        f"cached search p50 should be >={_MIN_CACHE_SPEEDUP}x below "
        f"uncached, got {cache_speedup:.2f}x"
    )

    lines = [
        f"Serving at {_N_ITEMS} items / {_N_CONCEPTS} concepts ({scale.name})",
        f"  snapshot: {snapshot_lines} lines (fingerprint {scale.fingerprint()})",
        f"  cold start (build + index fit):  {cold_seconds * 1e3:9.1f} ms",
        f"  warm start (snapshot + rehydrate): {warm_seconds * 1e3:7.1f} ms"
        f"  -> {warm_speedup:.1f}x",
        f"  cached search p50 vs uncached: {cache_speedup:.1f}x "
        f"({search.hit_p50_ms * 1e3:.2f}us vs {search.miss_p50_ms * 1e3:.2f}us)",
        f"  parity: {len(requests)} mixed queries identical fresh vs warm",
        "",
        stats.format_table("warm service stats"),
    ]
    report("\n".join(lines))
