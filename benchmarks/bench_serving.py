"""Bench — serving: snapshot warm start and cached query latency.

The production story of the paper (Section 7) is a *served* net: built
offline, answered online.  This benchmark measures the two properties the
serving layer exists for, and asserts both:

- **warm start**: loading a versioned snapshot (store replay through the
  trusted bulk path + BM25 rehydration) must be at least 2x faster than a
  fresh ``build_alicoco`` + service init at the same scale;
- **caching**: the LRU must put the cached-search p50 at least 10x below
  the uncached p50.

A warm-started service must also answer a mixed query battery *identically*
to the service built from scratch — warm start is an acceleration, not an
approximation.

A third section exercises the concurrent-serving contract: a shared
service hammered from several threads must answer identically to serial
execution with consistent counters, and thread-pool batch fan-out
(``workers=N``) must return results byte-identical to serial batches —
in envelope mode too, where failures come back as ``BatchResult``
envelopes instead of aborting the batch.
"""

import threading
import time
from dataclasses import replace

from repro.concepts import ConceptTagger
from repro.kg.relations import RelationKind
from repro.matching import DSSMMatcher, train_matcher
from repro.matching.base import matching_vocab
from repro.matching.dataset import pair_from_texts
from repro.nlp.pos import PosTagger
from repro.nlp.vocab import Vocab
from repro.pipeline.build import build_alicoco
from repro.serving import AliCoCoService

from conftest import BENCH_SCALE, SMOKE

_TAGGER_EPOCHS = 2 if SMOKE else 3
_RERANKER_EPOCHS = 2 if SMOKE else 3
#: Restoring bundled weights must beat re-training by at least this much.
_MIN_BUNDLE_SPEEDUP = 1.5 if SMOKE else 3.0

_N_ITEMS = 160 if SMOKE else 480
_N_CONCEPTS = 40 if SMOKE else 110
#: Constant factors dominate at smoke scale; thresholds relax accordingly.
_MIN_WARM_SPEEDUP = 1.2 if SMOKE else 2.0
_MIN_CACHE_SPEEDUP = 3.0 if SMOKE else 10.0
_HIT_PASSES = 5
_HAMMER_THREADS = 4 if SMOKE else 8
_HAMMER_PASSES = 2 if SMOKE else 5
_BATCH_WORKERS = 4


def _workload(built):
    """A mixed battery touching every endpoint, concept-card style."""
    requests = []
    for spec in built.concepts:
        concept_id = built.concept_ids[spec.text]
        requests.append(("search", spec.text))
        requests.append(("items_for_concept", concept_id, 10))
        requests.append(("interpretation", concept_id))
    for index in range(0, _N_ITEMS, 7):
        requests.append(("concepts_for_item", built.item_ids[index]))
    for primitive_id in list(built.primitive_ids.values())[::9]:
        requests.append(("hypernyms", primitive_id, True))
    return requests


def test_serving(tmp_path, report):
    scale = replace(BENCH_SCALE, n_items=_N_ITEMS)

    # Cold path: construct the net and fit the search index from scratch.
    start = time.perf_counter()
    built = build_alicoco(scale, n_concepts=_N_CONCEPTS)
    fresh = AliCoCoService.from_build(built, config_fingerprint=scale.fingerprint())
    cold_seconds = time.perf_counter() - start

    snapshot_path = tmp_path / "net.snapshot.jsonl"
    snapshot_lines = fresh.save_snapshot(snapshot_path)

    # Warm path: replay the snapshot, rehydrate the index, skip the build.
    # Best of three loads = steady-state restart cost, insulated from
    # one-off page-cache/allocator warmup noise.
    warm_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        warm = AliCoCoService.from_snapshot(
            snapshot_path, expected_fingerprint=scale.fingerprint()
        )
        warm_seconds = min(warm_seconds, time.perf_counter() - start)

    warm_speedup = cold_seconds / max(warm_seconds, 1e-9)
    assert warm_speedup >= _MIN_WARM_SPEEDUP, (
        f"warm start should be >={_MIN_WARM_SPEEDUP}x a fresh build, "
        f"got {warm_speedup:.2f}x"
    )

    # Parity: the warm service answers exactly like the fresh one.
    requests = _workload(built)
    fresh_answers = fresh.batch(requests)
    warm_answers = warm.batch(requests)
    assert fresh_answers == warm_answers

    # Cached vs uncached: the first batch above was all misses; repeat
    # passes are all hits.
    for _ in range(_HIT_PASSES):
        warm.batch(requests)
    stats = warm.stats()
    search = stats.endpoint("search")
    assert search.cache_misses == _N_CONCEPTS
    assert search.cache_hits == _HIT_PASSES * _N_CONCEPTS
    cache_speedup = search.miss_p50_ms / max(search.hit_p50_ms, 1e-9)
    assert cache_speedup >= _MIN_CACHE_SPEEDUP, (
        f"cached search p50 should be >={_MIN_CACHE_SPEEDUP}x below "
        f"uncached, got {cache_speedup:.2f}x"
    )

    # Threaded throughput: hammer one shared service from several
    # threads; answers must match serial execution and no observation may
    # be lost to a race (hits + misses == lookups).
    expected = fresh.batch(requests)
    hammer_errors: list = []
    barrier = threading.Barrier(_HAMMER_THREADS)

    def hammer():
        try:
            barrier.wait()
            for _ in range(_HAMMER_PASSES):
                assert fresh.batch(requests) == expected
        except Exception as error:  # pragma: no cover - failure path
            hammer_errors.append(error)

    threads = [threading.Thread(target=hammer) for _ in range(_HAMMER_THREADS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    hammer_seconds = time.perf_counter() - start
    assert hammer_errors == []
    cache = fresh._cache
    assert cache.hits + cache.misses == cache.lookups
    hammer_queries = _HAMMER_THREADS * _HAMMER_PASSES * len(requests)
    hammer_qps = hammer_queries / max(hammer_seconds, 1e-9)

    # Batch fan-out parity: workers=N must be byte-identical to serial,
    # with mid-batch failures enveloped instead of aborting the batch.
    faulty = requests + [("items_for_concept", "ec_999999999")]
    serial_envelopes = fresh.batch(faulty, on_error="envelope")
    parallel_envelopes = fresh.batch(
        faulty, on_error="envelope", workers=_BATCH_WORKERS
    )
    assert parallel_envelopes == serial_envelopes
    expected_ok = [True] * len(requests) + [False]
    assert [result.ok for result in serial_envelopes] == expected_ok
    assert fresh.batch(requests, workers=_BATCH_WORKERS) == expected

    lines = [
        f"Serving at {_N_ITEMS} items / {_N_CONCEPTS} concepts ({scale.name})",
        f"  snapshot: {snapshot_lines} lines (fingerprint {scale.fingerprint()})",
        f"  cold start (build + index fit):  {cold_seconds * 1e3:9.1f} ms",
        f"  warm start (snapshot + rehydrate): {warm_seconds * 1e3:7.1f} ms"
        f"  -> {warm_speedup:.1f}x",
        f"  cached search p50 vs uncached: {cache_speedup:.1f}x "
        f"({search.hit_p50_ms * 1e3:.2f}us vs {search.miss_p50_ms * 1e3:.2f}us)",
        f"  parity: {len(requests)} mixed queries identical fresh vs warm",
        f"  threaded: {_HAMMER_THREADS} threads x {_HAMMER_PASSES} passes = "
        f"{hammer_queries} queries in {hammer_seconds * 1e3:.1f} ms "
        f"({hammer_qps:,.0f} q/s), counters consistent",
        f"  batch fan-out: workers={_BATCH_WORKERS} byte-identical to serial "
        f"({len(faulty)} requests, 1 enveloped failure)",
        "",
        stats.format_table("warm service stats"),
    ]
    report("\n".join(lines))


def _train_models(built):
    """Tiny tagger + DSSM reranker trained on the built world."""
    sentences = [list(spec.tokens) for spec in built.concepts]
    tagger = ConceptTagger(
        Vocab.from_corpus(sentences),
        built.lexicon,
        PosTagger(built.lexicon.pos_lexicon()),
        use_fuzzy=False,
        word_dim=8,
        char_dim=4,
        hidden_dim=6,
        seed=1,
    )
    tagger.fit(built.concepts, epochs=_TAGGER_EPOCHS, lr=0.02, seed=1)

    pairs = []
    for spec in built.concepts[:10]:
        concept_id = built.concept_ids[spec.text]
        linked = {
            relation.source
            for relation in built.store.in_relations(
                concept_id, RelationKind.ITEM_ECOMMERCE
            )
        }
        for index in range(8):
            item_id = built.item_ids[index]
            title_tokens = built.store.get(item_id).title.split()
            pairs.append(
                pair_from_texts(
                    spec.tokens, title_tokens, label=int(item_id in linked)
                )
            )
    reranker = DSSMMatcher(matching_vocab(pairs), dim=8, hidden=8, seed=1)
    train_matcher(reranker, pairs, epochs=_RERANKER_EPOCHS, lr=0.05, seed=0)
    return tagger, reranker


def test_model_serving(tmp_path, report):
    """Model endpoints: warm-bundle start, rerank latency, parity."""
    scale = replace(BENCH_SCALE, n_items=_N_ITEMS)
    built = build_alicoco(scale, n_concepts=_N_CONCEPTS)

    # Cold model start: train both models from scratch, then serve them.
    start = time.perf_counter()
    tagger, reranker = _train_models(built)
    fresh = AliCoCoService.from_build(
        built,
        tagger=tagger,
        reranker=reranker,
        config_fingerprint=scale.fingerprint(),
    )
    cold_model_seconds = time.perf_counter() - start

    snapshot_path = tmp_path / "net.models.snapshot.jsonl"
    snapshot_lines = fresh.save_snapshot(snapshot_path)

    # Warm-bundle start: fresh (untrained) architectures, weights from
    # the snapshot's model bundle.  Best of three, as for the store.
    def fresh_architectures():
        sentences = [list(spec.tokens) for spec in built.concepts]
        untagger = ConceptTagger(
            Vocab.from_corpus(sentences),
            built.lexicon,
            PosTagger(built.lexicon.pos_lexicon()),
            use_fuzzy=False,
            word_dim=8,
            char_dim=4,
            hidden_dim=6,
            seed=99,
        )
        unranker = DSSMMatcher(reranker.vocab, dim=8, hidden=8, seed=99)
        return untagger, unranker

    warm_model_seconds = float("inf")
    for _ in range(3):
        new_tagger, new_reranker = fresh_architectures()
        start = time.perf_counter()
        warm = AliCoCoService.from_snapshot(
            snapshot_path,
            tagger=new_tagger,
            reranker=new_reranker,
            expected_fingerprint=scale.fingerprint(),
        )
        warm_model_seconds = min(warm_model_seconds, time.perf_counter() - start)

    bundle_speedup = cold_model_seconds / max(warm_model_seconds, 1e-9)
    assert bundle_speedup >= _MIN_BUNDLE_SPEEDUP, (
        f"warm-bundle model start should be >={_MIN_BUNDLE_SPEEDUP}x "
        f"faster than re-training, got {bundle_speedup:.2f}x"
    )

    # Parity: the restored models answer bit-identically to the trained
    # originals across the whole model battery.
    battery = []
    for spec in built.concepts[: min(12, len(built.concepts))]:
        concept_id = built.concept_ids[spec.text]
        battery.append(("tag", spec.text))
        battery.append(("items_for_concept_reranked", concept_id, 5))
        battery.append(("search_reranked", spec.text, 5))
    fresh_answers = fresh.batch(battery)
    warm_answers = warm.batch(battery)
    assert fresh_answers == warm_answers
    assert warm.batch(battery, workers=_BATCH_WORKERS) == warm_answers

    # Rerank cost: model-verified search vs BM25-only, uncached p50s.
    queries = [spec.text for spec in built.concepts]
    for text in queries:
        warm.search(text)
        warm.search_reranked(text)
    stats = warm.stats()
    bm25_p50 = stats.endpoint("search").miss_p50_ms
    rerank_p50 = stats.endpoint("search_reranked").miss_p50_ms
    rerank_cost = rerank_p50 / max(bm25_p50, 1e-9)

    report(
        "\n".join(
            [
                f"Model serving at {_N_ITEMS} items / {_N_CONCEPTS} "
                f"concepts ({scale.name})",
                f"  snapshot with model bundle: {snapshot_lines} lines",
                f"  cold model start (train tagger+reranker): "
                f"{cold_model_seconds * 1e3:9.1f} ms",
                f"  warm-bundle start (restore weights):      "
                f"{warm_model_seconds * 1e3:9.1f} ms -> {bundle_speedup:.1f}x",
                f"  search_reranked p50 vs search p50: {rerank_p50 * 1e3:.1f}us "
                f"vs {bm25_p50 * 1e3:.1f}us ({rerank_cost:.1f}x model cost)",
                f"  parity: {len(battery)} model queries bit-identical "
                f"fresh vs bundle-restored (serial and workers="
                f"{_BATCH_WORKERS})",
                "",
                stats.format_table("model service stats"),
            ]
        )
    )
