"""Bench — serving: snapshot warm start and cached query latency.

The production story of the paper (Section 7) is a *served* net: built
offline, answered online.  This benchmark measures the two properties the
serving layer exists for, and asserts both:

- **warm start**: loading a versioned snapshot (store replay through the
  trusted bulk path + BM25 rehydration) must be at least 2x faster than a
  fresh ``build_alicoco`` + service init at the same scale;
- **caching**: the LRU must put the cached-search p50 at least 10x below
  the uncached p50.

A warm-started service must also answer a mixed query battery *identically*
to the service built from scratch — warm start is an acceleration, not an
approximation.

A third section exercises the concurrent-serving contract: a shared
service hammered from several threads must answer identically to serial
execution with consistent counters, and thread-pool batch fan-out
(``workers=N``) must return results byte-identical to serial batches —
in envelope mode too, where failures come back as ``BatchResult``
envelopes instead of aborting the batch.
"""

import threading
import time
from dataclasses import replace

import numpy as np

from repro.concepts import ConceptTagger
from repro.kg.relations import RelationKind
from repro.matching import DSSMMatcher, KnowledgeMatcher, train_matcher
from repro.matching.base import matching_vocab
from repro.matching.dataset import pair_from_texts
from repro.nlp.pos import PosTagger
from repro.nlp.vocab import Vocab
from repro.pipeline.build import build_alicoco
from repro.serving import AliCoCoService, ServiceConfig
from repro.utils.timing import LatencyReservoir

from conftest import BENCH_SCALE, SMOKE

_TAGGER_EPOCHS = 2 if SMOKE else 3
_RERANKER_EPOCHS = 2 if SMOKE else 3
#: Restoring bundled weights must beat re-training by at least this much.
_MIN_BUNDLE_SPEEDUP = 1.5 if SMOKE else 3.0

_N_ITEMS = 160 if SMOKE else 480
_N_CONCEPTS = 40 if SMOKE else 110
#: Constant factors dominate at smoke scale; thresholds relax accordingly.
_MIN_WARM_SPEEDUP = 1.2 if SMOKE else 2.0
_MIN_CACHE_SPEEDUP = 3.0 if SMOKE else 10.0
_HIT_PASSES = 5
_HAMMER_THREADS = 4 if SMOKE else 8
_HAMMER_PASSES = 2 if SMOKE else 5
_BATCH_WORKERS = 4

#: Pool-scoring bench: candidate-pool sizes compared scalar vs batched.
_POOL_SIZES = (10, 50) if SMOKE else (10, 50, 200)
_POOL_QUERIES = 4 if SMOKE else 8
_POOL_PASSES = 2 if SMOKE else 3
#: Headline assertion at pool size 50 (= the default rerank_pool_k):
#: batched pool scoring must beat the scalar loop by this much.  Smoke
#: runs only guard against regression (batched never slower).
_MIN_POOL_SPEEDUP = 1.0 if SMOKE else 3.0


def _workload(built):
    """A mixed battery touching every endpoint, concept-card style."""
    requests = []
    for spec in built.concepts:
        concept_id = built.concept_ids[spec.text]
        requests.append(("search", spec.text))
        requests.append(("items_for_concept", concept_id, 10))
        requests.append(("interpretation", concept_id))
    for index in range(0, _N_ITEMS, 7):
        requests.append(("concepts_for_item", built.item_ids[index]))
    for primitive_id in list(built.primitive_ids.values())[::9]:
        requests.append(("hypernyms", primitive_id, True))
    return requests


def test_serving(tmp_path, report):
    scale = replace(BENCH_SCALE, n_items=_N_ITEMS)

    # Cold path: construct the net and fit the search index from scratch.
    start = time.perf_counter()
    built = build_alicoco(scale, n_concepts=_N_CONCEPTS)
    fresh = AliCoCoService.from_build(built, config_fingerprint=scale.fingerprint())
    cold_seconds = time.perf_counter() - start

    snapshot_path = tmp_path / "net.snapshot.jsonl"
    snapshot_lines = fresh.save_snapshot(snapshot_path)

    # Warm path: replay the snapshot, rehydrate the index, skip the build.
    # Best of three loads = steady-state restart cost, insulated from
    # one-off page-cache/allocator warmup noise.
    warm_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        warm = AliCoCoService.from_snapshot(
            snapshot_path, expected_fingerprint=scale.fingerprint()
        )
        warm_seconds = min(warm_seconds, time.perf_counter() - start)

    warm_speedup = cold_seconds / max(warm_seconds, 1e-9)
    assert warm_speedup >= _MIN_WARM_SPEEDUP, (
        f"warm start should be >={_MIN_WARM_SPEEDUP}x a fresh build, "
        f"got {warm_speedup:.2f}x"
    )

    # Parity: the warm service answers exactly like the fresh one.
    requests = _workload(built)
    fresh_answers = fresh.batch(requests)
    warm_answers = warm.batch(requests)
    assert fresh_answers == warm_answers

    # Cached vs uncached: the first batch above was all misses; repeat
    # passes are all hits.
    for _ in range(_HIT_PASSES):
        warm.batch(requests)
    stats = warm.stats()
    search = stats.endpoint("search")
    assert search.cache_misses == _N_CONCEPTS
    assert search.cache_hits == _HIT_PASSES * _N_CONCEPTS
    cache_speedup = search.miss_p50_ms / max(search.hit_p50_ms, 1e-9)
    assert cache_speedup >= _MIN_CACHE_SPEEDUP, (
        f"cached search p50 should be >={_MIN_CACHE_SPEEDUP}x below "
        f"uncached, got {cache_speedup:.2f}x"
    )

    # Threaded throughput: hammer one shared service from several
    # threads; answers must match serial execution and no observation may
    # be lost to a race (hits + misses == lookups).
    expected = fresh.batch(requests)
    hammer_errors: list = []
    barrier = threading.Barrier(_HAMMER_THREADS)

    def hammer():
        try:
            barrier.wait()
            for _ in range(_HAMMER_PASSES):
                assert fresh.batch(requests) == expected
        except Exception as error:  # pragma: no cover - failure path
            hammer_errors.append(error)

    threads = [threading.Thread(target=hammer) for _ in range(_HAMMER_THREADS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    hammer_seconds = time.perf_counter() - start
    assert hammer_errors == []
    cache = fresh._cache
    assert cache.hits + cache.misses == cache.lookups
    hammer_queries = _HAMMER_THREADS * _HAMMER_PASSES * len(requests)
    hammer_qps = hammer_queries / max(hammer_seconds, 1e-9)

    # Batch fan-out parity: workers=N must be byte-identical to serial,
    # with mid-batch failures enveloped instead of aborting the batch.
    faulty = requests + [("items_for_concept", "ec_999999999")]
    serial_envelopes = fresh.batch(faulty, on_error="envelope")
    parallel_envelopes = fresh.batch(
        faulty, on_error="envelope", workers=_BATCH_WORKERS
    )
    assert parallel_envelopes == serial_envelopes
    expected_ok = [True] * len(requests) + [False]
    assert [result.ok for result in serial_envelopes] == expected_ok
    assert fresh.batch(requests, workers=_BATCH_WORKERS) == expected

    lines = [
        f"Serving at {_N_ITEMS} items / {_N_CONCEPTS} concepts ({scale.name})",
        f"  snapshot: {snapshot_lines} lines (fingerprint {scale.fingerprint()})",
        f"  cold start (build + index fit):  {cold_seconds * 1e3:9.1f} ms",
        f"  warm start (snapshot + rehydrate): {warm_seconds * 1e3:7.1f} ms"
        f"  -> {warm_speedup:.1f}x",
        f"  cached search p50 vs uncached: {cache_speedup:.1f}x "
        f"({search.hit_p50_ms * 1e3:.2f}us vs {search.miss_p50_ms * 1e3:.2f}us)",
        f"  parity: {len(requests)} mixed queries identical fresh vs warm",
        f"  threaded: {_HAMMER_THREADS} threads x {_HAMMER_PASSES} passes = "
        f"{hammer_queries} queries in {hammer_seconds * 1e3:.1f} ms "
        f"({hammer_qps:,.0f} q/s), counters consistent",
        f"  batch fan-out: workers={_BATCH_WORKERS} byte-identical to serial "
        f"({len(faulty)} requests, 1 enveloped failure)",
        "",
        stats.format_table("warm service stats"),
    ]
    report("\n".join(lines))


def _train_models(built):
    """Tiny tagger + DSSM reranker trained on the built world."""
    sentences = [list(spec.tokens) for spec in built.concepts]
    tagger = ConceptTagger(
        Vocab.from_corpus(sentences),
        built.lexicon,
        PosTagger(built.lexicon.pos_lexicon()),
        use_fuzzy=False,
        word_dim=8,
        char_dim=4,
        hidden_dim=6,
        seed=1,
    )
    tagger.fit(built.concepts, epochs=_TAGGER_EPOCHS, lr=0.02, seed=1)

    pairs = []
    for spec in built.concepts[:10]:
        concept_id = built.concept_ids[spec.text]
        linked = {
            relation.source
            for relation in built.store.in_relations(
                concept_id, RelationKind.ITEM_ECOMMERCE
            )
        }
        for index in range(8):
            item_id = built.item_ids[index]
            title_tokens = built.store.get(item_id).title.split()
            pairs.append(
                pair_from_texts(
                    spec.tokens, title_tokens, label=int(item_id in linked)
                )
            )
    reranker = DSSMMatcher(matching_vocab(pairs), dim=8, hidden=8, seed=1)
    train_matcher(reranker, pairs, epochs=_RERANKER_EPOCHS, lr=0.05, seed=0)
    return tagger, reranker


def test_model_serving(tmp_path, report):
    """Model endpoints: warm-bundle start, rerank latency, parity."""
    scale = replace(BENCH_SCALE, n_items=_N_ITEMS)
    built = build_alicoco(scale, n_concepts=_N_CONCEPTS)

    # Cold model start: train both models from scratch, then serve them.
    start = time.perf_counter()
    tagger, reranker = _train_models(built)
    fresh = AliCoCoService.from_build(
        built,
        tagger=tagger,
        reranker=reranker,
        config_fingerprint=scale.fingerprint(),
    )
    cold_model_seconds = time.perf_counter() - start

    snapshot_path = tmp_path / "net.models.snapshot.jsonl"
    snapshot_lines = fresh.save_snapshot(snapshot_path)

    # Warm-bundle start: fresh (untrained) architectures, weights from
    # the snapshot's model bundle.  Best of three, as for the store.
    def fresh_architectures():
        sentences = [list(spec.tokens) for spec in built.concepts]
        untagger = ConceptTagger(
            Vocab.from_corpus(sentences),
            built.lexicon,
            PosTagger(built.lexicon.pos_lexicon()),
            use_fuzzy=False,
            word_dim=8,
            char_dim=4,
            hidden_dim=6,
            seed=99,
        )
        unranker = DSSMMatcher(reranker.vocab, dim=8, hidden=8, seed=99)
        return untagger, unranker

    warm_model_seconds = float("inf")
    for _ in range(3):
        new_tagger, new_reranker = fresh_architectures()
        start = time.perf_counter()
        warm = AliCoCoService.from_snapshot(
            snapshot_path,
            tagger=new_tagger,
            reranker=new_reranker,
            expected_fingerprint=scale.fingerprint(),
        )
        warm_model_seconds = min(warm_model_seconds, time.perf_counter() - start)

    bundle_speedup = cold_model_seconds / max(warm_model_seconds, 1e-9)
    assert bundle_speedup >= _MIN_BUNDLE_SPEEDUP, (
        f"warm-bundle model start should be >={_MIN_BUNDLE_SPEEDUP}x "
        f"faster than re-training, got {bundle_speedup:.2f}x"
    )

    # Parity: the restored models answer bit-identically to the trained
    # originals across the whole model battery.
    battery = []
    for spec in built.concepts[: min(12, len(built.concepts))]:
        concept_id = built.concept_ids[spec.text]
        battery.append(("tag", spec.text))
        battery.append(("items_for_concept_reranked", concept_id, 5))
        battery.append(("search_reranked", spec.text, 5))
    fresh_answers = fresh.batch(battery)
    warm_answers = warm.batch(battery)
    assert fresh_answers == warm_answers
    assert warm.batch(battery, workers=_BATCH_WORKERS) == warm_answers

    # Rerank cost: model-verified search vs BM25-only, uncached p50s.
    queries = [spec.text for spec in built.concepts]
    for text in queries:
        warm.search(text)
        warm.search_reranked(text)
    stats = warm.stats()
    bm25_p50 = stats.endpoint("search").miss_p50_ms
    rerank_p50 = stats.endpoint("search_reranked").miss_p50_ms
    rerank_cost = rerank_p50 / max(bm25_p50, 1e-9)

    report(
        "\n".join(
            [
                f"Model serving at {_N_ITEMS} items / {_N_CONCEPTS} "
                f"concepts ({scale.name})",
                f"  snapshot with model bundle: {snapshot_lines} lines",
                f"  cold model start (train tagger+reranker): "
                f"{cold_model_seconds * 1e3:9.1f} ms",
                f"  warm-bundle start (restore weights):      "
                f"{warm_model_seconds * 1e3:9.1f} ms -> {bundle_speedup:.1f}x",
                f"  search_reranked p50 vs search p50: {rerank_p50 * 1e3:.1f}us "
                f"vs {bm25_p50 * 1e3:.1f}us ({rerank_cost:.1f}x model cost)",
                f"  parity: {len(battery)} model queries bit-identical "
                f"fresh vs bundle-restored (serial and workers="
                f"{_BATCH_WORKERS})",
                "",
                stats.format_table("model service stats"),
            ]
        )
    )


def _train_reranker(built, cls, **kwargs):
    """Train one matcher on graph-labelled (concept, title) pairs."""
    pairs = []
    for spec in built.concepts[:10]:
        concept_id = built.concept_ids[spec.text]
        linked = {
            relation.source
            for relation in built.store.in_relations(
                concept_id, RelationKind.ITEM_ECOMMERCE
            )
        }
        for index in range(8):
            item_id = built.item_ids[index]
            title_tokens = built.store.get(item_id).title.split()
            pairs.append(
                pair_from_texts(
                    spec.tokens, title_tokens, label=int(item_id in linked)
                )
            )
    model = cls(matching_vocab(pairs), **kwargs)
    train_matcher(model, pairs, epochs=1, lr=0.05, seed=0)
    return model


def _knowledge_reranker(built):
    """The paper's matcher (Fig. 8), knowledge branch on."""
    vectors = {}

    def knowledge_lookup(token):
        if token not in vectors:
            seed = sum(ord(char) for char in token)
            vectors[token] = np.random.default_rng(seed).normal(size=6)
        return vectors[token]

    gloss_tokens = {
        spec.tokens[0]: list(spec.tokens[1:3]) for spec in built.concepts[:20]
    }

    def build(vocab):
        return KnowledgeMatcher(
            vocab,
            PosTagger(built.lexicon.pos_lexicon()),
            ner_lookup=lambda token: (len(token) * 7) % 5,
            num_ner_labels=5,
            knowledge_lookup=knowledge_lookup,
            gloss_tokens=gloss_tokens,
            knowledge_dim=6,
            dim=8,
            conv_dim=8,
            pyramid_layers=2,
            seed=1,
        )

    return _train_reranker(built, build)


def _time_pool_variants(matcher, queries, pool):
    """p50/p95 reservoirs for scalar vs pooled vs pooled+warm scoring."""
    reservoirs = {
        name: LatencyReservoir(256, seed=i)
        for i, name in enumerate(("scalar", "pooled", "warm"))
    }
    encoded = [matcher.encode_doc(doc) for doc in pool]
    for _ in range(_POOL_PASSES):
        for query in queries:
            start = time.perf_counter()
            scalar = [matcher.score_text(query, doc) for doc in pool]
            reservoirs["scalar"].record(time.perf_counter() - start)

            start = time.perf_counter()
            pooled = matcher.score_pool(query, pool)
            reservoirs["pooled"].record(time.perf_counter() - start)

            start = time.perf_counter()
            warm = matcher.score_pool(query, pool, doc_encodings=encoded)
            reservoirs["warm"].record(time.perf_counter() - start)

            assert np.abs(pooled - np.asarray(scalar)).max() <= 1e-9
            assert np.array_equal(warm, pooled)
    return {name: res.percentiles_ms() for name, res in reservoirs.items()}


def test_pool_scoring(report):
    """Batched pool scoring vs the scalar oracle, matcher and service level."""
    scale = replace(BENCH_SCALE, n_items=_N_ITEMS)
    built = build_alicoco(scale, n_concepts=_N_CONCEPTS)
    titles = [
        built.store.get(built.item_ids[index]).title.split()
        for index in range(min(max(_POOL_SIZES), _N_ITEMS))
    ]
    queries = [list(spec.tokens) for spec in built.concepts[:_POOL_QUERIES]]

    knowledge = _knowledge_reranker(built)
    dssm = _train_reranker(built, DSSMMatcher, dim=8, hidden=8, seed=1)

    lines = [
        f"Pool scoring at {_N_ITEMS} items / {_N_CONCEPTS} concepts "
        f"({scale.name}); {_POOL_QUERIES} queries x {_POOL_PASSES} passes",
        f"  {'matcher':<10} {'pool':>5} {'scalar p50':>11} {'pooled p50':>11} "
        f"{'warm p50':>10} {'speedup':>8} {'warm speedup':>13}",
    ]
    headline = {}
    for name, matcher in (("knowledge", knowledge), ("dssm", dssm)):
        for size in _POOL_SIZES:
            timings = _time_pool_variants(matcher, queries, titles[:size])
            scalar, pooled, warm = (
                timings["scalar"], timings["pooled"], timings["warm"]
            )
            speedup = scalar["p50"] / max(pooled["p50"], 1e-9)
            warm_speedup = scalar["p50"] / max(warm["p50"], 1e-9)
            if size == 50:
                headline[name] = speedup
            lines.append(
                f"  {name:<10} {size:>5} {scalar['p50']:>9.3f}ms "
                f"{pooled['p50']:>9.3f}ms {warm['p50']:>8.3f}ms "
                f"{speedup:>7.1f}x {warm_speedup:>12.1f}x"
            )
            lines.append(
                f"  {'':<10} {'p95':>5} {scalar['p95']:>9.3f}ms "
                f"{pooled['p95']:>9.3f}ms {warm['p95']:>8.3f}ms"
            )
    for name, speedup in headline.items():
        assert speedup >= _MIN_POOL_SPEEDUP, (
            f"{name} pool scoring at pool 50 should be "
            f">={_MIN_POOL_SPEEDUP}x the scalar loop, got {speedup:.2f}x"
        )

    # Service level: the reranked endpoints through the fast path +
    # pre-warmed doc cache vs the scalar oracle (use_fast_path=False).
    # The result LRU is disabled so every pass pays full scoring cost.
    fast = AliCoCoService.from_build(
        built,
        reranker=knowledge,
        config=ServiceConfig(cache_capacity=0, prewarm_doc_cache=True),
    )
    oracle = AliCoCoService.from_build(
        built,
        reranker=knowledge,
        config=ServiceConfig(cache_capacity=0, use_fast_path=False),
    )
    # Concepts with actual item pools — a pool of zero measures nothing.
    linked = [
        spec
        for spec in built.concepts
        if built.store.in_relations(
            built.concept_ids[spec.text], RelationKind.ITEM_ECOMMERCE
        )
    ][:_POOL_QUERIES]
    texts = [spec.text for spec in linked]
    concept_ids = [built.concept_ids[spec.text] for spec in linked]
    for text, concept_id in zip(texts, concept_ids):
        fast_search = fast.search_reranked(text)
        oracle_search = oracle.search_reranked(text)
        assert [c for c, _ in fast_search] == [c for c, _ in oracle_search]
        assert all(
            abs(a[1] - b[1]) <= 1e-9
            for a, b in zip(fast_search, oracle_search)
        )
        fast_items = fast.items_for_concept_reranked(concept_id)
        oracle_items = oracle.items_for_concept_reranked(concept_id)
        assert [i for i, _ in fast_items] == [i for i, _ in oracle_items]
        assert all(
            abs(a[1] - b[1]) <= 1e-9
            for a, b in zip(fast_items, oracle_items)
        )
    for _ in range(_POOL_PASSES):
        for text, concept_id in zip(texts, concept_ids):
            fast.search_reranked(text)
            oracle.search_reranked(text)
            fast.items_for_concept_reranked(concept_id)
            oracle.items_for_concept_reranked(concept_id)

    fast_stats, oracle_stats = fast.stats(), oracle.stats()
    lines.append("")
    for endpoint in ("search_reranked", "items_for_concept_reranked"):
        fast_ep = fast_stats.endpoint(endpoint)
        oracle_ep = oracle_stats.endpoint(endpoint)
        endpoint_speedup = oracle_ep.miss_p50_ms / max(fast_ep.miss_p50_ms, 1e-9)
        assert endpoint_speedup >= 1.0, (
            f"{endpoint} fast path should not be slower than the scalar "
            f"oracle, got {endpoint_speedup:.2f}x"
        )
        lines.append(
            f"  {endpoint}: fast p50 {fast_ep.miss_p50_ms:.3f}ms / "
            f"p95 {fast_ep.miss_p95_ms:.3f}ms vs scalar "
            f"p50 {oracle_ep.miss_p50_ms:.3f}ms / "
            f"p95 {oracle_ep.miss_p95_ms:.3f}ms -> {endpoint_speedup:.1f}x"
        )
    doc = fast_stats
    lines.append(
        f"  doc cache: {doc.doc_cache_entries} entries pre-warmed, "
        f"{doc.doc_cache_hits} hits / {doc.doc_cache_misses} misses"
    )
    lines.append(
        f"  parity: rankings identical, scores within 1e-9, "
        f"{len(texts)} queries x 2 endpoints"
    )
    report("\n".join(lines))
