"""Bench F9L — Figure 9 (left): MAP vs negative-sample ratio N."""

from repro.experiments import fig9_negatives


def test_fig9_negative_samples(benchmark, report, ew):
    ratios = (1, 5, 10, 20, 40, 80)
    result = benchmark.pedantic(
        lambda: fig9_negatives.run(ew, ratios=ratios, epochs=15),
        rounds=1, iterations=1)

    by_ratio = dict(result.points)
    # Paper shape: performance improves as N grows and peaks at a large N
    # (the paper's sweep peaks around 100).
    assert result.best_n() >= 20, "large negative ratios should win"
    assert by_ratio[result.best_n()] > by_ratio[1] + 0.05
    assert by_ratio[max(ratios)] > by_ratio[min(ratios)]

    report(fig9_negatives.format_report(result))
