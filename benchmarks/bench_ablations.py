"""Ablation benches for design choices DESIGN.md calls out."""

from repro.experiments import ablations


def test_ablation_ucs_alpha(benchmark, report, ew):
    result = benchmark.pedantic(lambda: ablations.run_ucs_alpha(ew),
                                rounds=1, iterations=1)
    # α is a real dial: different settings must trade label economy
    # against MAP (not all collapse to one point).
    maps = [m for _, m, _ in result.points]
    labels = [label for _, _, label in result.points]
    assert max(maps) > 0.0
    assert len(set(labels)) > 1 or len(set(round(m, 3) for m in maps)) > 1

    report(ablations.format_ucs_alpha(result))


def test_ablation_concept_sources(benchmark, report, ew):
    result = benchmark.pedantic(lambda: ablations.run_concept_sources(ew),
                                rounds=1, iterations=1)
    # Pattern combination must contribute coverage text mining alone
    # cannot reach, and the union must dominate both.
    assert result.both >= result.generation_only
    assert result.both >= result.mining_only
    assert result.generation_only > result.mining_only, \
        "pattern combination should reach more scenarios than mining alone"

    report(ablations.format_concept_sources(result))


def test_ablation_distant_filter(benchmark, report, ew):
    result = benchmark.pedantic(lambda: ablations.run_distant_filter(ew),
                                rounds=1, iterations=1)
    # The paper's perfect-match filter keeps fewer sentences but must not
    # discover fewer concepts: partial matches actively teach the model
    # that unknown words are Outside.
    assert result.with_filter[0] <= result.without_filter[0]
    assert result.with_filter[1] >= result.without_filter[1]

    report(ablations.format_distant_filter(result))
