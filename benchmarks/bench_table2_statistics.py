"""Bench T2 — regenerate Table 2 (statistics of the constructed net)."""

from repro.experiments import table2_statistics
from repro.experiments.table2_statistics import Table2Result

from conftest import BENCH_SCALE


def test_table2_statistics(benchmark, report):
    result: Table2Result = benchmark.pedantic(
        lambda: table2_statistics.run(BENCH_SCALE), rounds=1, iterations=1)
    stats = result.stats

    # Shape assertions mirroring the paper's headline structure:
    # every layer populated, Category the largest domain, (nearly) all
    # items linked, many e-commerce concepts per item side.
    assert stats.primitive_concepts > 300
    assert stats.ecommerce_concepts >= 40
    assert stats.items == BENCH_SCALE.n_items
    assert stats.linked_item_fraction >= 0.98
    assert stats.primitive_by_domain["Category"] >= 200
    largest = max(stats.primitive_by_domain.values())
    assert stats.primitive_by_domain["Brand"] <= largest
    assert stats.avg_primitive_per_item >= 2.0
    assert stats.isa_primitive > 50

    report(table2_statistics.format_report(result))
