"""Bench S8.2 — cognitive recommendation vs item-based CF (Section 8.2.1)."""

from repro.experiments import recommendation

from conftest import BENCH_SCALE


def test_cognitive_recommendation(benchmark, report):
    result = benchmark.pedantic(lambda: recommendation.run(BENCH_SCALE),
                                rounds=1, iterations=1)

    # Paper shape: user-needs driven recommendation satisfies needs at
    # least as well overall, is dramatically better on needs absent from
    # the behaviour logs (CF "cannot jump out of historical behaviors"),
    # and its recommendations are explainable by concepts.
    assert result.cognitive.hit_rate >= result.item_cf.hit_rate
    assert result.cognitive_novel_need_hit > result.cf_novel_need_hit + 0.2
    assert result.cognitive.explained > result.item_cf.explained

    report(recommendation.format_report(result))
