"""Bench T6 — Table 6: concept-item semantic matching comparison."""

from repro.experiments import table6_matching


def test_table6_matching(benchmark, report, ew):
    result = benchmark.pedantic(lambda: table6_matching.run(ew), rounds=1,
                                iterations=1)

    metrics = result.metrics
    # Paper shape: lexical BM25 is the floor; the knowledge-aware model
    # beats its knowledge-free variant; the full model is at/near the top.
    neural = ("dssm", "matchpyramid", "re2", "ours", "ours+knowledge")
    beats_bm25 = sum(1 for m in neural
                     if metrics[m]["auc"] > metrics["bm25"]["auc"])
    assert beats_bm25 >= 4, "neural matchers should beat lexical BM25"
    assert metrics["ours+knowledge"]["auc"] > metrics["ours"]["auc"], \
        "external knowledge must add on top of the base model"
    ranked = sorted(neural, key=lambda m: -metrics[m]["auc"])
    assert "ours+knowledge" in ranked[:2], \
        "the knowledge-aware model should be at/near the top on AUC"

    report(table6_matching.format_report(result))
