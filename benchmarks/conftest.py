"""Benchmark harness plumbing.

Each benchmark regenerates one table/figure of the paper (see DESIGN.md's
per-experiment index), asserts its *shape* (who wins, roughly by how
much), and registers a formatted report.  Reports are printed in the
terminal summary (bypassing capture) and written to
``benchmarks/reports/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.config import RunScale
from repro.experiments.common import build_experiment_world

_REPORTS: list[tuple[str, str]] = []
_REPORT_DIR = Path(__file__).parent / "reports"

#: Smoke mode (``REPRO_BENCH_SMOKE=1``): CI runs selected benchmarks at a
#: reduced scale to validate the harness end to end in seconds.  Shape
#: assertions with tight margins relax their thresholds under smoke —
#: timings at toy sizes are dominated by constant factors.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Benchmark scale: item/corpus sizes between TINY and SMALL, tuned so the
#: whole suite finishes in minutes while every shape is stable.
BENCH_SCALE = RunScale(name="bench-lite", n_items=250, n_queries=400,
                       n_reviews=200, n_guides=80, embedding_dim=16,
                       hidden_dim=16, epochs=4, seed=7)
if SMOKE:
    BENCH_SCALE = RunScale(name="bench-smoke", n_items=140, n_queries=180,
                           n_reviews=90, n_guides=40, embedding_dim=16,
                           hidden_dim=16, epochs=2, seed=7)


@pytest.fixture(scope="session")
def ew():
    """The shared experiment world (built once per benchmark session).

    embedding_epochs=8: the SGNS vectors must be well-trained at this
    corpus size or every embedding-based experiment (Fig 9, Table 3)
    under-performs for the wrong reason.
    """
    return build_experiment_world(BENCH_SCALE, n_concepts=110,
                                  embedding_epochs=8)


@pytest.fixture
def report(request):
    """Register a report for the terminal summary and the reports dir."""

    def _add(text: str) -> None:
        _REPORTS.append((request.node.name, text))
        _REPORT_DIR.mkdir(exist_ok=True)
        path = _REPORT_DIR / f"{request.node.name}.txt"
        path.write_text(text + "\n", encoding="utf-8")

    return _add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    for name, text in _REPORTS:
        terminalreporter.write_sep("=", name)
        terminalreporter.write_line(text)
