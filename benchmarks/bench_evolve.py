"""Bench — evolve: generation swaps under live read traffic.

The net the paper serves is rebuilt offline, but the catalog keeps
moving between rebuilds.  The generational store lets the serving tier
absorb that drift without a restart: writes land in copy-on-write delta
segments and ``publish()`` swaps the next generation in atomically while
readers keep answering.  This benchmark gates the three properties that
story stands on:

- **generation-0 bit-identity**: a service over a zero-delta
  ``GenerationalStore`` answers all eight endpoints exactly like the
  service over the frozen base store — evolvability is free until used;
- **swap atomicity under load**: while generations publish mid-flight,
  every concurrent answer must be *exactly* a generation-g answer for
  some published g.  A third value would mean a reader saw a mixed
  state (new documents with old corpus statistics, say);
- **read latency under swap**: publishing happens off the read path
  (readers never take the publish lock), so the p99 of reads taken
  while generations swap must stay within a generous multiple of the
  no-swap p99 — a swap must never stall the read side.

A final freshness check asserts the last generation's concepts answer
immediately after ``publish()`` returns, and that the incrementally
extended BM25 index is bit-identical to a refit over the flattened
store.

Two more gates close the evolution loop:

- **compaction parity**: folding the segment chain into a fresh base
  (``compact()``, or ``compact_after_segments`` auto-compaction) keeps
  every answer bit-identical, keeps the generation id, and bounds the
  chain length while generations keep publishing;
- **driver freshness**: the background ``EvolutionDriver`` mines real
  candidates from fresh corpus batches and every concept it accepts is
  searchable the moment its publish returns — end to end, no restart.
"""

import threading
import time
from dataclasses import replace

from repro.concepts import ConceptTagger
from repro.errors import NodeNotFoundError
from repro.kg import GenerationalStore, Relation, RelationKind, flatten
from repro.matching import DSSMMatcher, train_matcher
from repro.matching.base import matching_vocab
from repro.matching.dataset import pair_from_texts
from repro.nlp.pos import PosTagger
from repro.nlp.vocab import Vocab
from repro.pipeline.build import build_alicoco
from repro.pipeline.evolve import EvolutionConfig, EvolutionDriver
from repro.serving import AliCoCoService, ServiceConfig, fit_concept_index
from repro.utils.timing import LatencyReservoir

from conftest import BENCH_SCALE, SMOKE

_N_ITEMS = 160 if SMOKE else 480
_N_CONCEPTS = 40 if SMOKE else 110
_TAGGER_EPOCHS = 2 if SMOKE else 3
_RERANKER_EPOCHS = 2 if SMOKE else 3
_READER_THREADS = 4 if SMOKE else 8
_GENERATIONS = 3 if SMOKE else 6
_BASELINE_SECONDS = 0.2 if SMOKE else 0.5
#: Publishes are spread out so swaps land mid-read-traffic.
_PUBLISH_GAP_SECONDS = 0.01 if SMOKE else 0.02
#: Read p99 while swapping vs without: a generous bound (publish clones
#: indexes off the read path; readers only ever load one attribute), with
#: an absolute floor because toy-scale p99s are single-digit micros.
_MAX_P99_RATIO = 50.0
_P99_FLOOR_SECONDS = 0.05


def _train_models(built):
    """Tiny tagger + DSSM reranker trained on the built world."""
    sentences = [list(spec.tokens) for spec in built.concepts]
    tagger = ConceptTagger(
        Vocab.from_corpus(sentences),
        built.lexicon,
        PosTagger(built.lexicon.pos_lexicon()),
        use_fuzzy=False,
        word_dim=8,
        char_dim=4,
        hidden_dim=6,
        seed=1,
    )
    tagger.fit(built.concepts, epochs=_TAGGER_EPOCHS, lr=0.02, seed=1)

    pairs = []
    for spec in built.concepts[:10]:
        concept_id = built.concept_ids[spec.text]
        linked = {
            relation.source
            for relation in built.store.in_relations(
                concept_id, RelationKind.ITEM_ECOMMERCE
            )
        }
        for index in range(8):
            item_id = built.item_ids[index]
            title_tokens = built.store.get(item_id).title.split()
            pairs.append(
                pair_from_texts(
                    spec.tokens, title_tokens, label=int(item_id in linked)
                )
            )
    reranker = DSSMMatcher(matching_vocab(pairs), dim=8, hidden=8, seed=1)
    train_matcher(reranker, pairs, epochs=_RERANKER_EPOCHS, lr=0.05, seed=0)
    return tagger, reranker


def _eight_endpoint_battery(built):
    """One request per endpoint family, several keys each."""
    requests = []
    for spec in built.concepts[:8]:
        concept_id = built.concept_ids[spec.text]
        requests += [
            ("search", spec.text),
            ("items_for_concept", concept_id, 5),
            ("interpretation", concept_id),
            ("tag", spec.text),
            ("items_for_concept_reranked", concept_id, 5),
            ("search_reranked", spec.text, 5),
        ]
    for index in range(6):
        requests.append(("concepts_for_item", built.item_ids[index]))
    for primitive_id in list(built.primitive_ids.values())[:6]:
        requests.append(("hypernyms", primitive_id, True))
    return requests


def _grow(store, generation):
    """One generation's writes: a concept, an item, and the link."""
    concept = store.create_ecommerce(f"fresh evolve {generation} concept")
    item = store.create_item(f"fresh evolve {generation} item title")
    store.add_relation(
        Relation(
            kind=RelationKind.ITEM_ECOMMERCE,
            source=item.id,
            target=concept.id,
            weight=0.9,
        )
    )
    return concept


def _observe(service, probes):
    results = []
    for endpoint, *args in probes:
        try:
            results.append(getattr(service, endpoint)(*args))
        except NodeNotFoundError:
            results.append("absent")
    return tuple(results)


def test_evolve(report):
    scale = replace(BENCH_SCALE, n_items=_N_ITEMS)
    built = build_alicoco(scale, n_concepts=_N_CONCEPTS)
    tagger, reranker = _train_models(built)
    config = ServiceConfig(seed=0)

    # ---- Gate 1: generation 0 is bit-identical to the frozen service.
    frozen = AliCoCoService(
        built.store, config=config, tagger=tagger, reranker=reranker
    )
    evolvable = AliCoCoService(
        GenerationalStore(built.store),
        config=config,
        tagger=tagger,
        reranker=reranker,
    )
    battery = _eight_endpoint_battery(built)
    assert evolvable.batch(battery) == frozen.batch(battery), (
        "a zero-delta generational service must be bit-identical to the "
        "frozen service on every endpoint"
    )

    # ---- Reference run: per-generation expected answers.  Node ids
    # allocate deterministically, so an identical store taken through
    # the same writes predicts each generation's answers exactly.
    probe_concept = GenerationalStore(built.store).create_ecommerce("x").id
    probes = [
        ("search", f"fresh evolve {_GENERATIONS} concept"),
        ("search", built.concepts[0].text),
        ("items_for_concept", probe_concept, 5),
    ]
    reference = GenerationalStore(built.store)
    reference_service = AliCoCoService(reference, config=config)
    expected = [_observe(reference_service, probes)]
    for generation in range(1, _GENERATIONS + 1):
        _grow(reference, generation)
        reference_service.publish()
        expected.append(_observe(reference_service, probes))
    allowed = [
        {answers[index] for answers in expected} for index in range(len(probes))
    ]

    # ---- Gate 3 baseline: read p99 with no swaps in flight.
    store = GenerationalStore(built.store)
    service = AliCoCoService(store, config=config)
    baseline = LatencyReservoir(capacity=512, seed=0)
    under_swap = LatencyReservoir(capacity=512, seed=0)
    reservoir = baseline
    errors: list = []
    stop = threading.Event()
    barrier = threading.Barrier(_READER_THREADS + 1)
    query_count = [0]

    def reader():
        try:
            barrier.wait()
            while not stop.is_set():
                start = time.perf_counter()
                observed = _observe(service, probes)
                reservoir.record(time.perf_counter() - start)
                query_count[0] += 1  # benign race: approximate count
                for index, answer in enumerate(observed):
                    assert answer in allowed[index], (index, answer)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=reader) for _ in range(_READER_THREADS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    time.sleep(_BASELINE_SECONDS)

    # ---- Gate 2 + 3: publish every generation while readers hammer.
    reservoir = under_swap
    swap_start = time.perf_counter()
    for generation in range(1, _GENERATIONS + 1):
        _grow(store, generation)
        published = service.publish()
        assert published == generation
        time.sleep(_PUBLISH_GAP_SECONDS)
    swap_seconds = time.perf_counter() - swap_start
    time.sleep(_PUBLISH_GAP_SECONDS)
    stop.set()
    for thread in threads:
        thread.join()
    assert errors == [], errors[:1]

    p99_baseline = baseline.quantile(0.99)
    p99_swap = under_swap.quantile(0.99)
    p99_bound = max(_MAX_P99_RATIO * p99_baseline, _P99_FLOOR_SECONDS)
    assert p99_swap <= p99_bound, (
        f"read p99 under swap {p99_swap * 1e3:.2f} ms exceeds "
        f"{p99_bound * 1e3:.2f} ms "
        f"(baseline p99 {p99_baseline * 1e3:.2f} ms x {_MAX_P99_RATIO})"
    )

    # ---- Freshness: the final generation answers immediately, and the
    # incrementally extended BM25 index equals a refit bit-for-bit.
    final = _observe(service, probes)
    assert final == expected[_GENERATIONS]
    assert service.generation_id == _GENERATIONS
    hits = service.search(f"fresh evolve {_GENERATIONS} concept")
    assert hits and service._gen.store.get(hits[0][0]).text == (
        f"fresh evolve {_GENERATIONS} concept"
    )
    refit = fit_concept_index(flatten(store))
    assert service._search_index.to_state() == refit.to_state()

    counters = service._cache.counters()
    assert counters.hits + counters.misses == counters.lookups

    # ---- Gate 4: compaction parity.  Folding the chain is a
    # representation change: answers and the generation id must not
    # move, and auto-compaction must bound the chain while generations
    # keep publishing.
    before_compaction = _observe(service, probes)
    assert len(store.published_segments) == _GENERATIONS
    assert store.compact() == _GENERATIONS
    assert store.published_segments == ()
    assert service.generation_id == _GENERATIONS
    assert _observe(service, probes) == before_compaction, (
        "compaction changed an answer: folding the segment chain must be "
        "bit-identical"
    )
    compacting = GenerationalStore(built.store, compact_after_segments=2)
    compacting_service = AliCoCoService(compacting, config=config)
    for generation in range(1, _GENERATIONS + 1):
        _grow(compacting, generation)
        compacting_service.publish()
        assert len(compacting.published_segments) <= 2, (
            "auto-compaction must bound the segment chain"
        )
    assert compacting.base_generation > 0
    assert _observe(compacting_service, probes) == expected[_GENERATIONS], (
        "an auto-compacting store must answer exactly like the "
        "never-compacted reference"
    )

    # ---- Gate 5: driver freshness.  The background evolution loop
    # mines candidates from fresh corpus batches; every accepted
    # concept must be searchable the moment its publish returns.
    driver_store = GenerationalStore(built.store, compact_after_segments=3)
    driver_service = AliCoCoService(driver_store, config=config)
    driver = EvolutionDriver.from_build(
        built,
        driver_service,
        config=EvolutionConfig(
            seed=23,
            n_good=3,
            n_bad=2,
            n_queries=12 if SMOKE else 24,
            n_guides=8 if SMOKE else 16,
            publish_min_nodes=1,
            cycle_interval=0.0,
        ),
    )
    publishes_needed = 2 if SMOKE else 3
    cycles = 0
    while driver.stats().publishes < publishes_needed:
        cycles += 1
        assert cycles <= 10 * publishes_needed, (
            f"driver freshness: {publishes_needed} publishes did not "
            f"happen within {cycles} cycles"
        )
        cycle = driver.run_cycle()
        if cycle.published_generation is not None:
            newest = list(driver_store.nodes("ec"))[-1]
            hits = driver_service.search(newest.text)
            assert hits and hits[0][0] == newest.id, (
                f"concept {newest.text!r} not searchable immediately "
                f"after publish {cycle.published_generation}"
            )
    final_generation = driver.drain()
    driver_stats = driver.stats()
    assert driver_service.generation_id == final_generation
    assert driver_stats.concepts_accepted > 0
    assert len(driver_store.published_segments) <= 3, (
        "the driver's store must auto-compact to a bounded chain"
    )

    lines = [
        f"Evolvable serving at {_N_ITEMS} items / {_N_CONCEPTS} concepts "
        f"({scale.name})",
        f"  generation-0 parity: {len(battery)} requests across all eight "
        f"endpoints bit-identical to the frozen service",
        f"  swaps: {_GENERATIONS} generations published in "
        f"{swap_seconds * 1e3:.1f} ms under {_READER_THREADS} reader threads "
        f"(~{query_count[0]} probe batteries, every answer a whole "
        f"generation)",
        f"  read p99: baseline {p99_baseline * 1e6:.0f} us, under swap "
        f"{p99_swap * 1e6:.0f} us (bound {p99_bound * 1e3:.1f} ms)",
        f"  freshness: generation {_GENERATIONS} searchable immediately; "
        f"incremental BM25 state == refit",
        f"  cache: {counters.hits} hits / {counters.misses} misses, "
        f"generation-keyed (never cleared)",
        f"  compaction: {_GENERATIONS} segments folded bit-identically at "
        f"generation {_GENERATIONS}; auto-compaction held the chain at "
        f"<= 2 segments",
        f"  evolution driver: {driver_stats.cycles} cycles mined "
        f"{driver_stats.concepts_accepted} concepts "
        f"(+{driver_stats.relations_staged} relations) across "
        f"{driver_stats.publishes} publishes to generation "
        f"{final_generation}; every concept searchable on publish",
    ]
    report("\n".join(lines))
