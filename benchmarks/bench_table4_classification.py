"""Bench T4 — Table 4: concept-classification ablation."""

from repro.experiments import table4_classification


def test_table4_classification(benchmark, report, ew):
    result = benchmark.pedantic(
        lambda: table4_classification.run(ew), rounds=1, iterations=1)

    order = [name for name, _ in
             (("baseline", 0), ("+wide", 0), ("+wide&bert", 0),
              ("+wide&bert&knowledge", 0))]
    precisions = [result.precision(name) for name in order]
    accuracies = [result.metrics[name]["accuracy"] for name in order]

    # Paper shape: each component helps; knowledge gives the final, clear
    # jump (0.870 -> 0.935 overall).  At laptop scale the middle rows sit
    # within noise of each other on precision, so monotonicity is asserted
    # on accuracy (balanced test set) with a small tolerance, and the
    # knowledge jump on precision.
    assert precisions[-1] > precisions[0] + 0.02, \
        "full model must beat baseline precision"
    assert precisions[-1] == max(precisions)
    for earlier, later in zip(accuracies[:-1], accuracies[1:]):
        assert later >= earlier - 0.01, "components must not hurt accuracy"
    assert accuracies[-1] > accuracies[0] + 0.01

    report(table4_classification.format_report(result))
