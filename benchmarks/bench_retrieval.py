"""Bench — retrieval: the sublinear first stage behind retrieval-then-verify.

AliCoCo's deployment story (Section 6) proposes candidates with a cheap
first stage and verifies only those with the deep matcher.  This benchmark
gates the properties that make the first stage trustworthy:

- **recall**: IVF and HNSW must recover >=90% of brute-force dense's
  top-50 at their default knobs (approximation, not degradation);
- **latency**: the ANN index must answer >=3x faster than the exact scan
  at 10k items (the whole point of sublinearity), measured interleaved
  best-of-rounds so machine-load drift hits both sides equally;
- **scaling**: the scanned fraction must *shrink* as the catalog grows —
  sublinear in shape, not just faster by a constant;
- **warm start**: a fitted index rehydrated from snapshot state (through
  actual JSON) must retrieve bit-identically to the fresh fit;
- **hybrid lift**: RRF fusion of dense + BM25 must not lose candidate
  recall against the BM25-only baseline on the synthetic matching
  dataset (fusion is how dense recall reaches serving without giving up
  exact lexical pins).

Thresholds relax under smoke: at toy scale the exact scan fits in cache
and fixed per-query overhead dominates, so the latency gate only guards
against the ANN path being *slower* than brute force.
"""

import json
import time

import numpy as np

from repro.matching import (
    CandidateGenerator,
    DSSMMatcher,
    retrieval_recall,
    train_matcher,
)
from repro.matching.base import matching_vocab
from repro.matching.dataset import build_matching_dataset
from repro.retrieval import (
    BruteForceDense,
    HNSWLiteIndex,
    IVFIndex,
    retriever_from_state,
)
from repro.synth.clicklog import simulate_clicks
from repro.synth.items import generate_items
from repro.synth.lexicon import build_lexicon
from repro.synth.world import World

from conftest import SMOKE

#: Corpus scale for the ANN section.  Full mode uses the 10k-item /
#: 128-dim regime the acceptance gate names; smoke shrinks both so the
#: HNSW build stays in CI seconds.
_N_ITEMS = 5000 if SMOKE else 10000
_DIM = 64 if SMOKE else 128
_N_QUERIES = 100 if SMOKE else 200
_N_CENTERS = 30 if SMOKE else 50
_TOP_K = 50
#: Interleaved timing rounds; each side keeps its best round.
_ROUNDS = 3 if SMOKE else 5

_MIN_RECALL = 0.8 if SMOKE else 0.9
_MIN_SPEEDUP = 1.0 if SMOKE else 3.0

#: Scaling section: catalog sizes for the scanned-fraction curve.
_SCALING_SIZES = (500, 1000, 2000) if SMOKE else (2500, 5000, 10000)

#: Hybrid section: synthetic matching-world scale.
_N_CONCEPTS = 30 if SMOKE else 60
_N_CATALOG = 90 if SMOKE else 200
_RECALL_K = 30


def _clustered(rng, n, dim):
    """Vectors with cluster structure — the regime ANN indexes exist for."""
    centers = rng.normal(size=(_N_CENTERS, dim))
    labels = rng.integers(0, _N_CENTERS, size=n)
    return (centers[labels] + rng.normal(scale=0.3, size=(n, dim))).astype(
        np.float32
    ), centers


def _round_time(index, queries):
    """Mean per-query seconds for one pass over the battery."""
    start = time.perf_counter()
    for query in queries:
        index.retrieve(query, _TOP_K)
    return (time.perf_counter() - start) / len(queries)


def _interleaved_best(indexes, queries, rounds=_ROUNDS):
    """Best per-query time per index, measured in interleaved rounds.

    A full round touches every index before any index's second round, so
    load drift (other tenants, thermal throttling) cannot systematically
    favour whichever side happened to run last.
    """
    for index in indexes:
        _round_time(index, queries)  # warm-up: caches, lazy allocations
    best = [float("inf")] * len(indexes)
    for _ in range(rounds):
        for slot, index in enumerate(indexes):
            best[slot] = min(best[slot], _round_time(index, queries))
    return best


def _recall_at_k(oracle_sets, index, queries):
    overlap = 0.0
    for exact, query in zip(oracle_sets, queries):
        approx = {doc_id for doc_id, _ in index.retrieve(query, _TOP_K)}
        overlap += len(exact & approx) / len(exact)
    return overlap / len(queries)


def test_ann_recall_latency(report):
    rng = np.random.default_rng(7)
    data, centers = _clustered(rng, _N_ITEMS, _DIM)
    ids = [f"doc{i}" for i in range(_N_ITEMS)]
    queries = (
        centers[rng.integers(0, _N_CENTERS, size=_N_QUERIES)]
        + rng.normal(scale=0.3, size=(_N_QUERIES, _DIM))
    ).astype(np.float32)

    brute = BruteForceDense().fit(ids, data)
    fit_start = time.perf_counter()
    ivf = IVFIndex(seed=0).fit(ids, data)
    ivf_fit = time.perf_counter() - fit_start
    fit_start = time.perf_counter()
    hnsw = HNSWLiteIndex(seed=0).fit(ids, data)
    hnsw_fit = time.perf_counter() - fit_start

    # --- recall at default knobs, brute force as the oracle -------------
    oracle_sets = [
        {doc_id for doc_id, _ in brute.retrieve(query, _TOP_K)}
        for query in queries
    ]
    recalls = {
        "ivf": _recall_at_k(oracle_sets, ivf, queries),
        "hnsw": _recall_at_k(oracle_sets, hnsw, queries),
    }
    for backend, recall in recalls.items():
        assert recall >= _MIN_RECALL, (
            f"{backend} recall@{_TOP_K} should be >={_MIN_RECALL} at default "
            f"knobs, got {recall:.3f}"
        )

    # --- latency: the sublinear scan must actually be faster ------------
    brute_s, ivf_s, hnsw_s = _interleaved_best([brute, ivf, hnsw], queries)
    ann_s = min(ivf_s, hnsw_s)
    speedup = brute_s / max(ann_s, 1e-12)
    assert speedup >= _MIN_SPEEDUP, (
        f"best ANN backend should answer >={_MIN_SPEEDUP}x faster than "
        f"brute force at {_N_ITEMS} items, got {speedup:.2f}x "
        f"(brute {brute_s * 1e6:.1f}us vs ann {ann_s * 1e6:.1f}us)"
    )

    # --- work accounting: both ANN backends scan a small fraction -------
    scan = {
        "brute": brute.stats().scan_fraction,
        "ivf": ivf.stats().scan_fraction,
        "hnsw": hnsw.stats().scan_fraction,
    }
    assert scan["brute"] == 1.0
    assert scan["ivf"] < 0.5 and scan["hnsw"] < 0.5

    # --- scaling: the scanned fraction shrinks as the catalog grows -----
    scaling_rows = []
    fractions = []
    for size in _SCALING_SIZES:
        sub_ivf = IVFIndex(seed=0).fit(ids[:size], data[:size])
        sub_brute = BruteForceDense().fit(ids[:size], data[:size])
        sub_brute_s, sub_ivf_s = _interleaved_best(
            [sub_brute, sub_ivf], queries, rounds=2
        )
        fraction = sub_ivf.stats().scan_fraction
        fractions.append(fraction)
        scaling_rows.append(
            f"  {size:>6} items: scan {fraction:>6.1%}  "
            f"brute {sub_brute_s * 1e6:>7.1f}us  ivf {sub_ivf_s * 1e6:>7.1f}us  "
            f"({sub_brute_s / max(sub_ivf_s, 1e-12):.2f}x)"
        )
    assert fractions == sorted(fractions, reverse=True), (
        f"IVF scanned fraction should shrink with catalog size "
        f"(sublinear shape), got {fractions}"
    )

    # --- warm start: snapshot state answers bit-identically -------------
    battery = queries[:25]
    for index in (brute, ivf, hnsw):
        state = json.loads(json.dumps(index.to_state()))
        warm = retriever_from_state(state)
        for query in battery:
            assert warm.retrieve(query, _TOP_K) == index.retrieve(
                query, _TOP_K
            ), f"{index.backend} warm start diverged from its fresh fit"
    # A *second* fresh fit must land on the same results too — fit is
    # deterministic under the seed, so snapshots never pin stale rankings.
    refit = IVFIndex(seed=0).fit(ids, data)
    for query in battery:
        assert refit.retrieve(query, _TOP_K) == ivf.retrieve(query, _TOP_K)

    report(
        "\n".join(
            [
                f"ANN retrieval at {_N_ITEMS} items x {_DIM} dims "
                f"({_N_QUERIES} queries, top-{_TOP_K}, best of {_ROUNDS} "
                f"interleaved rounds)",
                f"  {'backend':<10} {'recall':>7} {'us/query':>9} "
                f"{'vs brute':>9} {'scanned':>8} {'fit':>7}",
                f"  {'brute':<10} {'1.000':>7} {brute_s * 1e6:>9.1f} "
                f"{'1.00x':>9} {scan['brute']:>8.1%} {'-':>7}",
                f"  {'ivf':<10} {recalls['ivf']:>7.3f} {ivf_s * 1e6:>9.1f} "
                f"{brute_s / max(ivf_s, 1e-12):>8.2f}x {scan['ivf']:>8.1%} "
                f"{ivf_fit:>6.1f}s",
                f"  {'hnsw':<10} {recalls['hnsw']:>7.3f} {hnsw_s * 1e6:>9.1f} "
                f"{brute_s / max(hnsw_s, 1e-12):>8.2f}x {scan['hnsw']:>8.1%} "
                f"{hnsw_fit:>6.1f}s",
                "  (hnsw walks its graph in pure python, so its wall-clock "
                "trails BLAS scans; its scanned fraction is the story)",
                "",
                "IVF scaling (scanned fraction must shrink with size):",
                *scaling_rows,
                "",
                f"warm start: brute/ivf/hnsw snapshot states bit-identical "
                f"to fresh fits over {len(battery)} queries",
            ]
        )
    )


def test_hybrid_recall_lift(report):
    """RRF fusion must not lose candidate recall against BM25 alone."""
    rng = np.random.default_rng(9)
    lexicon = build_lexicon(seed=9)
    world = World(lexicon, seed=9)
    concepts = world.sample_good_concepts(rng, _N_CONCEPTS)
    items = generate_items(world, _N_CATALOG)
    clicks = simulate_clicks(world, concepts, items, impressions_per_concept=8)
    dataset = build_matching_dataset(
        world, concepts, items, clicks, rng, test_concepts=10
    )
    matcher = DSSMMatcher(matching_vocab(dataset.train), dim=8, hidden=8, seed=0)
    train_matcher(matcher, dataset.train, epochs=2, lr=0.05, seed=0)

    generators = {
        "bm25": CandidateGenerator("bm25").fit(items),
        "dense/ivf": CandidateGenerator(
            "dense", matcher=matcher, dense_backend="ivf"
        ).fit(items),
        "hybrid/ivf": CandidateGenerator(
            "hybrid", matcher=matcher, dense_backend="ivf"
        ).fit(items),
    }
    recalls = {
        name: retrieval_recall(generator, dataset, k=_RECALL_K)
        for name, generator in generators.items()
    }
    assert recalls["hybrid/ivf"] >= recalls["bm25"], (
        f"hybrid RRF retrieval_recall should be >= BM25-only, got "
        f"{recalls['hybrid/ivf']:.3f} vs {recalls['bm25']:.3f}"
    )
    # Fusion must actually carry the dense arm's recall through, not just
    # tie a weak baseline: much of the click oracle is lexically disjoint
    # from titles (semantic drift), so a large share of the reachable
    # candidate recall lives in the dense arm.
    assert recalls["hybrid/ivf"] >= 0.5 * recalls["dense/ivf"], (
        f"RRF fusion lost the dense arm's recall: hybrid "
        f"{recalls['hybrid/ivf']:.3f} vs dense {recalls['dense/ivf']:.3f}"
    )

    lines = [
        f"First-stage candidate recall@{_RECALL_K} on the synthetic "
        f"matching dataset ({_N_CONCEPTS} concepts, {_N_CATALOG} items, "
        f"10 test concepts)",
    ]
    for name, recall in recalls.items():
        scanned = generators[name].stats().scan_fraction
        lines.append(
            f"  {name:<12} recall {recall:.3f}  "
            f"(scanned {scanned:.1%} of catalog per query)"
        )
    lines.append(
        "  Many clicked items share no content words with their concept "
        "(semantic drift, BM25's blind spot); the dense arm recovers "
        "them, and RRF folds both arms' hits into one list without "
        "giving up the lexical pins."
    )
    report("\n".join(lines))
