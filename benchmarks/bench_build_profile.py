"""Bench — construction profile: stage timings, indexed vs brute force.

Builds the net at the scaling study's largest preset (480 items) twice —
once through the inverted candidate indexes (the default) and once
through the brute-force all-pairs scans kept behind
``use_candidate_index=False`` — then checks that (a) both paths produce
the identical store and (b) the indexed hot path (item-concept matching
plus concept-isA discovery, read off the stage timers) is at least twice
as fast.
"""

from dataclasses import replace

from repro.pipeline.build import build_alicoco
from repro.synth.index import ConceptCandidateIndex

from conftest import BENCH_SCALE, SMOKE

_N_ITEMS = 160 if SMOKE else 480
_N_CONCEPTS = 40 if SMOKE else 60
#: At smoke scale constant factors dominate, so only parity is asserted.
_MIN_SPEEDUP = 1.0 if SMOKE else 2.0


def _hot_path_seconds(result) -> float:
    return (result.timings.seconds("item-matching")
            + result.timings.seconds("concept-isa"))


def test_build_profile(benchmark, report):
    scale = replace(BENCH_SCALE, n_items=_N_ITEMS)
    indexed = benchmark.pedantic(
        lambda: build_alicoco(scale, n_concepts=_N_CONCEPTS,
                              use_candidate_index=True),
        rounds=1, iterations=1)
    brute = build_alicoco(scale, n_concepts=_N_CONCEPTS,
                          use_candidate_index=False)

    # Parity: the fast path is an acceleration, not an approximation.
    assert sorted(n.id for n in indexed.store.nodes()) == \
        sorted(n.id for n in brute.store.nodes())
    assert list(indexed.store.relations()) == list(brute.store.relations())

    speedup = _hot_path_seconds(brute) / max(_hot_path_seconds(indexed), 1e-9)
    assert speedup >= _MIN_SPEEDUP, \
        f"indexed hot path should be >={_MIN_SPEEDUP}x brute force, " \
        f"got {speedup:.2f}x"

    index_stats = ConceptCandidateIndex(indexed.concepts).stats()
    selectivity = ", ".join(f"{key}={value}"
                            for key, value in index_stats.items())
    lines = [f"Build profile at {_N_ITEMS} items / {_N_CONCEPTS} concepts",
             f"  hot-path speedup (match + isA): {speedup:.2f}x",
             f"  candidate index: {selectivity}", ""]
    for tag, result in (("indexed", indexed), ("brute-force", brute)):
        lines.append(result.timings.format_table(f"{tag} stage timings"))
        lines.append("")
    report("\n".join(lines))
