"""Bench T5 — Table 5: concept-tagging ablation."""

from repro.experiments import table5_tagging


def test_table5_tagging(benchmark, report, ew):
    result = benchmark.pedantic(lambda: table5_tagging.run(ew), rounds=1,
                                iterations=1)

    baseline = result.f1("baseline")
    fuzzy = result.f1("+fuzzy")
    knowledge = result.f1("+fuzzy&knowledge")

    # Paper shape: fuzzy CRF improves over the strict-CRF baseline on
    # ambiguity-rich data, and knowledge (text augmentation) adds on top.
    assert fuzzy > baseline - 0.005, "fuzzy CRF should not lose to strict"
    assert knowledge > baseline + 0.02
    assert knowledge == max(baseline, fuzzy, knowledge)

    report(table5_tagging.format_report(result))
