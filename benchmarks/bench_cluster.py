"""Bench — cluster serving: scatter-gather, coalescing, load shedding.

The closed-loop gate for the sharded serving tier.  Three sections, each
with hard assertions (CI runs them under ``REPRO_BENCH_SMOKE=1`` in the
``load-smoke`` job):

- **scatter-gather parity**: a cluster at 1/2/4 shards must answer a
  mixed battery (point lookups, scattered search, reranked endpoints
  under the hybrid retriever) *bit-identically* to the single-store
  oracle, with routed traffic reasonably balanced across shards;
- **request coalescing**: 8 closed-loop clients hammering a handful of
  hot rerank queries must see coalesced throughput at least match the
  straight-through cluster (>= 2x in full mode) — duplicates share one
  computation instead of each paying full rerank cost;
- **load shedding**: past the admission limits the cluster must answer
  ``OverloadedError`` within the queue-wait bound — overload degrades
  into fast typed rejections, never unbounded queueing or a hang;
- **executor scaling**: with per-request rerank compute scaled up to
  dominate overheads (10x catalog, scalar scoring path), the process
  executor's throughput-vs-shard-count curve must bend upward — at full
  scale, >= 1.5x the thread executor at 4 shards and monotone in shard
  count.  The gate needs hardware that can actually run 4 workers at
  once: under smoke, or with fewer than 4 usable cores, the section
  reports shape only (a one-core box cannot bend any curve; parity is
  still asserted).

The three historical sections honour ``REPRO_CLUSTER_EXECUTOR``
(``thread`` default, ``process`` to drive every cluster through the
out-of-process shard workers) so CI exercises both executors against the
same gates.  The final test is a leaked-process tripwire: after every
section, no worker child may still be alive.

Per-shard balance and a coalescing-window sweep are reported (not
gated).
"""

import multiprocessing
import os
import threading
import time
from dataclasses import replace

import pytest

from repro.errors import OverloadedError
from repro.kg.relations import RelationKind
from repro.matching import DSSMMatcher, train_matcher
from repro.matching.base import matching_vocab
from repro.matching.dataset import pair_from_texts
from repro.pipeline.build import build_alicoco
from repro.serving import (
    AliCoCoCluster,
    AliCoCoService,
    ClusterConfig,
    ServiceConfig,
)

from conftest import BENCH_SCALE, SMOKE

#: Which shard executor the parity/coalescing/overload sections drive.
_EXECUTOR = os.environ.get("REPRO_CLUSTER_EXECUTOR", "thread")

#: Full mode grows the synthetic catalog 10x (through the RunScale knob
#: below) so scattered rerank compute dominates per-request overhead —
#: the regime where shard parallelism is measurable at all.
_CATALOG_GROWTH = 1 if SMOKE else 10
_N_ITEMS = 160 if SMOKE else 480 * _CATALOG_GROWTH
_N_CONCEPTS = 40 if SMOKE else 220
_SHARD_COUNTS = (1, 2, 4)
_RERANKED_QUERIES = 6 if SMOKE else 12

#: Closed-loop coalescing A/B: clients cycling a small hot set.
_CLIENTS = 8
_HOT_QUERIES = 4
_COALESCE_PASSES = 4 if SMOKE else 10
#: Smoke guards against regression only (constant factors dominate at toy
#: sizes); the full run must show real sharing at 8 concurrent clients.
_MIN_COALESCE_SPEEDUP = 1.0 if SMOKE else 2.0
_WINDOW_SWEEP_MS = (0.0, 2.0)

#: Executor scaling: a closed loop of scalar-path rerank queries (the
#: per-candidate scoring loop is pure GIL-bound Python — the workload
#: the process executor exists for).
_SCALING_QUERIES = 4 if SMOKE else 10
_SCALING_PASSES = 1 if SMOKE else 3
_SCALING_POOL_K = 32 if SMOKE else 200
#: Full-scale gate: process >= this x thread throughput at 4 shards.
_SCALING_MIN_SPEEDUP = 1.5
#: Full-scale monotonicity: each step up in shard count may lose at most
#: this fraction to noise while the curve must still trend upward.
_SCALING_MONOTONE_TOLERANCE = 0.9
#: Cores this process may actually schedule on.  Four workers cannot
#: outrun one interpreter on a one-core box, so the speedup/monotone
#: gates only arm at full scale with >= 4 usable cores (parity asserts
#: unconditionally).
_USABLE_CORES = (
    len(os.sched_getaffinity(0))
    if hasattr(os, "sched_getaffinity")
    else (os.cpu_count() or 1)
)
_SCALING_GATED = not SMOKE and _USABLE_CORES >= 4

#: Overload section: one execution slot, one queue slot, short deadline.
_OVERLOAD_THREADS = 8
_OVERLOAD_PASSES = 2 if SMOKE else 3
_QUEUE_WAIT_MS = 150.0
#: A shed request must return within the queue-wait bound; the grace term
#: absorbs scheduler jitter on loaded CI runners.
_SHED_BOUND_SECONDS = _QUEUE_WAIT_MS / 1e3 + 0.35


@pytest.fixture(scope="module")
def built():
    scale = replace(BENCH_SCALE, n_items=_N_ITEMS)
    return build_alicoco(scale, n_concepts=_N_CONCEPTS)


@pytest.fixture(scope="module")
def reranker(built):
    """A small trained DSSM over graph-labelled (concept, title) pairs."""
    pairs = []
    for spec in built.concepts[:10]:
        concept_id = built.concept_ids[spec.text]
        linked = {
            relation.source
            for relation in built.store.in_relations(
                concept_id, RelationKind.ITEM_ECOMMERCE
            )
        }
        for index in range(8):
            item_id = built.item_ids[index]
            title_tokens = built.store.get(item_id).title.split()
            pairs.append(
                pair_from_texts(
                    spec.tokens, title_tokens, label=int(item_id in linked)
                )
            )
    model = DSSMMatcher(matching_vocab(pairs), dim=8, hidden=8, seed=1)
    train_matcher(model, pairs, epochs=2, lr=0.05, seed=0)
    return model


def _linked_concepts(built, count):
    """Concept specs with item pools — empty pools measure nothing."""
    return [
        spec
        for spec in built.concepts
        if built.store.in_relations(
            built.concept_ids[spec.text], RelationKind.ITEM_ECOMMERCE
        )
    ][:count]


def _battery(built):
    """A mixed battery: every endpoint, routed and scattered."""
    requests = []
    for spec in built.concepts:
        concept_id = built.concept_ids[spec.text]
        requests.append(("search", spec.text))
        requests.append(("items_for_concept", concept_id, 10))
        requests.append(("interpretation", concept_id))
    for index in range(0, _N_ITEMS, 7):
        requests.append(("concepts_for_item", built.item_ids[index]))
    for primitive_id in list(built.primitive_ids.values())[::9]:
        requests.append(("hypernyms", primitive_id, True))
    for spec in _linked_concepts(built, _RERANKED_QUERIES):
        concept_id = built.concept_ids[spec.text]
        requests.append(("items_for_concept_reranked", concept_id, 5))
        requests.append(("search_reranked", spec.text, 5))
    return requests


def test_cluster_scatter_gather(built, reranker, report):
    """1/2/4-shard clusters answer bit-identically to the single store."""
    service_config = ServiceConfig(retriever="hybrid")
    oracle = AliCoCoService(
        built.store, config=service_config, reranker=reranker
    )
    requests = _battery(built)
    expected = oracle.batch(requests)

    lines = [
        f"Cluster scatter-gather at {_N_ITEMS} items / {_N_CONCEPTS} "
        f"concepts ({BENCH_SCALE.name}); {len(requests)} mixed requests, "
        f"retriever=hybrid",
        f"  {'shards':>6} {'batch':>10} {'q/s':>8} {'imbalance':>10} "
        f"shard calls",
    ]
    for n_shards in _SHARD_COUNTS:
        cluster = AliCoCoCluster(
            built.store,
            config=ClusterConfig(n_shards=n_shards, executor=_EXECUTOR),
            service_config=service_config,
            reranker=reranker,
        )
        start = time.perf_counter()
        answers = cluster.batch(requests)
        batch_seconds = time.perf_counter() - start
        assert answers == expected, (
            f"scatter-gather at {n_shards} shards diverged from the "
            f"single-store oracle"
        )
        stats = cluster.stats()
        # Scatter fan-out plus hash routing must keep shards busy evenly:
        # no shard may see more than 3x the mean call count.
        assert stats.imbalance <= 3.0, (
            f"shard imbalance {stats.imbalance:.2f} at {n_shards} shards"
        )
        qps = len(requests) / max(batch_seconds, 1e-9)
        lines.append(
            f"  {n_shards:>6} {batch_seconds * 1e3:>8.1f}ms {qps:>8,.0f} "
            f"{stats.imbalance:>9.2f}x {list(stats.shard_calls)}"
        )
        cluster.close()
    lines.append(
        f"  parity: all {len(requests)} answers bit-identical to the "
        f"oracle at every shard count (incl. reranked hybrid retrieval)"
    )
    report("\n".join(lines))


class _StraightThrough:
    """Coalescing disabled: every request computes independently."""

    def submit(self, key, compute):
        return compute()


def _coalescing_cluster(built, reranker, window_ms, coalesce=True):
    """A cluster with result caches off so every request pays rerank cost."""
    cluster = AliCoCoCluster(
        built.store,
        config=ClusterConfig(
            n_shards=2,
            executor=_EXECUTOR,
            cache_capacity=0,
            coalesce_window_ms=window_ms,
            max_inflight=_CLIENTS,
            max_queue_depth=4 * _CLIENTS,
            max_queue_wait_ms=30_000.0,
        ),
        service_config=ServiceConfig(cache_capacity=0),
        reranker=reranker,
    )
    if not coalesce:
        cluster._coalescer = _StraightThrough()
    return cluster


def _hot_requests(built):
    """A small hot set: the coalescing win case is concurrent duplicates."""
    specs = _linked_concepts(built, _HOT_QUERIES)
    requests = []
    for index, spec in enumerate(specs):
        if index % 2 == 0:
            requests.append(("search_reranked", spec.text, 5))
        else:
            concept_id = built.concept_ids[spec.text]
            requests.append(("items_for_concept_reranked", concept_id, 5))
    return requests


def _closed_loop(cluster, requests, expected):
    """Hammer the cluster with _CLIENTS closed-loop threads; return q/s."""
    errors: list = []
    barrier = threading.Barrier(_CLIENTS)

    def client():
        try:
            barrier.wait()
            for _ in range(_COALESCE_PASSES):
                for request, answer in zip(requests, expected):
                    endpoint, *arguments = request
                    assert getattr(cluster, endpoint)(*arguments) == answer
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=client) for _ in range(_CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    assert errors == []
    total = _CLIENTS * _COALESCE_PASSES * len(requests)
    return total / max(seconds, 1e-9)


def test_cluster_coalescing(built, reranker, report):
    """Coalesced rerank throughput >= straight-through at 8 clients."""
    requests = _hot_requests(built)
    oracle = AliCoCoService(
        built.store, config=ServiceConfig(cache_capacity=0), reranker=reranker
    )
    expected = [
        getattr(oracle, endpoint)(*arguments)
        for endpoint, *arguments in requests
    ]

    # Best of two runs per variant damps scheduler noise on CI runners.
    coalesced_qps = uncoalesced_qps = 0.0
    coalesced_stats = None
    for _ in range(2):
        with _coalescing_cluster(built, reranker, 0.0, coalesce=False) as off:
            uncoalesced_qps = max(
                uncoalesced_qps, _closed_loop(off, requests, expected)
            )
        with _coalescing_cluster(built, reranker, 0.0) as on:
            coalesced_qps = max(
                coalesced_qps, _closed_loop(on, requests, expected)
            )
            coalesced_stats = on.stats()

    # The coalescer ledger must balance, and with 8 clients cycling
    # _HOT_QUERIES hot keys duplicates must actually have shared flights.
    ledger = coalesced_stats.coalescer
    assert ledger.requests == ledger.flights + ledger.joined
    assert ledger.requests == _CLIENTS * _COALESCE_PASSES * len(requests)
    assert ledger.joined > 0
    assert coalesced_stats.admission.shed == ()

    speedup = coalesced_qps / max(uncoalesced_qps, 1e-9)
    assert speedup >= _MIN_COALESCE_SPEEDUP, (
        f"coalesced rerank throughput should be >={_MIN_COALESCE_SPEEDUP}x "
        f"the straight-through cluster at {_CLIENTS} clients, got "
        f"{speedup:.2f}x"
    )

    lines = [
        f"Request coalescing at {_N_ITEMS} items / {_N_CONCEPTS} concepts: "
        f"{_CLIENTS} closed-loop clients x {_COALESCE_PASSES} passes over "
        f"{len(requests)} hot rerank queries (result caches off)",
        f"  straight-through: {uncoalesced_qps:>8,.0f} q/s",
        f"  coalesced (w=0):  {coalesced_qps:>8,.0f} q/s -> {speedup:.1f}x",
        f"  flights {ledger.flights} / joined {ledger.joined} "
        f"(mean batch {ledger.mean_batch:.1f}, max {ledger.max_batch})",
        "",
        f"  window sweep ({'smoke' if SMOKE else 'full'} scale):",
        f"  {'window':>8} {'q/s':>8} {'flights':>8} {'joined':>8} "
        f"{'mean batch':>11} {'max':>4}",
    ]
    for window_ms in _WINDOW_SWEEP_MS:
        with _coalescing_cluster(built, reranker, window_ms) as swept:
            sweep_qps = _closed_loop(swept, requests, expected)
            sweep = swept.stats().coalescer
        lines.append(
            f"  {window_ms:>6.1f}ms {sweep_qps:>8,.0f} {sweep.flights:>8} "
            f"{sweep.joined:>8} {sweep.mean_batch:>11.1f} "
            f"{sweep.max_batch:>4}"
        )
    report("\n".join(lines))


def test_cluster_overload(built, reranker, report):
    """Past admission limits the cluster sheds fast — it never hangs."""
    cluster = AliCoCoCluster(
        built.store,
        config=ClusterConfig(
            n_shards=2,
            executor=_EXECUTOR,
            cache_capacity=0,
            max_inflight=1,
            max_queue_depth=1,
            max_queue_wait_ms=_QUEUE_WAIT_MS,
        ),
        service_config=ServiceConfig(cache_capacity=0),
        reranker=reranker,
    )
    # Distinct queries per request so coalescing cannot absorb the burst:
    # every submission needs its own admission slot.
    texts = [spec.text for spec in built.concepts]
    assert len(texts) >= _OVERLOAD_THREADS * _OVERLOAD_PASSES

    shed_durations: list = []
    ok_durations: list = []
    unexpected: list = []
    barrier = threading.Barrier(_OVERLOAD_THREADS)

    def client(offset):
        try:
            barrier.wait()
            for index in range(_OVERLOAD_PASSES):
                text = texts[offset * _OVERLOAD_PASSES + index]
                start = time.perf_counter()
                try:
                    answer = cluster.search_reranked(text, 5)
                    ok_durations.append(time.perf_counter() - start)
                    assert isinstance(answer, tuple)
                except OverloadedError as error:
                    shed_durations.append(time.perf_counter() - start)
                    assert error.reason in ("queue_full", "queue_timeout")
        except Exception as error:  # pragma: no cover - failure path
            unexpected.append(error)

    threads = [
        threading.Thread(target=client, args=(offset,))
        for offset in range(_OVERLOAD_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads), (
        "overloaded cluster hung a client thread"
    )
    # Overload may only surface as OverloadedError — nothing else leaks.
    assert unexpected == []
    assert shed_durations, "admission limits were never reached"

    stats = cluster.stats()
    admission = stats.admission
    total = _OVERLOAD_THREADS * _OVERLOAD_PASSES
    assert admission.admitted + admission.shed_total == total
    assert admission.shed_total == len(shed_durations)
    endpoint = stats.endpoint("search_reranked")
    assert ("OverloadedError", len(shed_durations)) in endpoint.errors

    # The queue-wait bound: a shed request is a *fast* rejection.
    slowest_shed = max(shed_durations)
    assert slowest_shed <= _SHED_BOUND_SECONDS, (
        f"shed request took {slowest_shed * 1e3:.0f}ms, bound is "
        f"{_SHED_BOUND_SECONDS * 1e3:.0f}ms"
    )
    assert admission.shed_wait_p99_ms <= _QUEUE_WAIT_MS + 100.0

    reasons = ", ".join(
        f"{reason}={count}" for reason, count in admission.shed
    ) or "none"
    lines = [
        f"Load shedding: {_OVERLOAD_THREADS} clients x {_OVERLOAD_PASSES} "
        f"distinct rerank queries against max_inflight=1 / queue_depth=1 / "
        f"wait={_QUEUE_WAIT_MS:.0f}ms",
        f"  admitted {admission.admitted} / shed {admission.shed_total} "
        f"({admission.shed_rate * 100:.0f}% shed: {reasons})",
        f"  slowest shed: {slowest_shed * 1e3:.1f}ms "
        f"(bound {_SHED_BOUND_SECONDS * 1e3:.0f}ms); "
        f"shed wait p99 {admission.shed_wait_p99_ms:.1f}ms",
        f"  queue wait p50/p95/p99: {admission.queue_wait_p50_ms:.1f} / "
        f"{admission.queue_wait_p95_ms:.1f} / "
        f"{admission.queue_wait_p99_ms:.1f} ms",
        f"  success p50: "
        f"{sorted(ok_durations)[len(ok_durations) // 2] * 1e3:.1f}ms "
        f"({len(ok_durations)} served)",
        "",
        stats.format_table("overloaded cluster stats"),
    ]
    cluster.close()
    report("\n".join(lines))


def _scaling_requests(built):
    """Rerank-heavy battery for the executor-scaling section."""
    requests = []
    for spec in _linked_concepts(built, _SCALING_QUERIES):
        concept_id = built.concept_ids[spec.text]
        requests.append(("search_reranked", spec.text, 5))
        requests.append(("items_for_concept_reranked", concept_id, 5))
    return requests


def test_cluster_executor_scaling(built, reranker, report):
    """Process workers bend the throughput-vs-shard-count curve upward.

    The thread executor scatters rerank arms across a fanout pool, but
    the scalar scoring loop holds the GIL, so adding shards adds no
    compute.  The process executor runs each arm in its own interpreter:
    at full scale on >= 4 usable cores its 4-shard throughput must be >=
    ``_SCALING_MIN_SPEEDUP``x the thread executor's, and its curve must
    be monotone in shard count.  Answers stay bit-identical throughout —
    speed never buys divergence.
    """
    service_config = ServiceConfig(
        retriever="hybrid",
        rerank_pool_k=_SCALING_POOL_K,
        use_fast_path=False,
        doc_cache_capacity=0,
        cache_capacity=0,
    )
    requests = _scaling_requests(built)
    oracle = AliCoCoService(
        built.store, config=service_config, reranker=reranker
    )
    expected = oracle.batch(requests)

    throughput: dict[tuple, float] = {}
    for executor in ("thread", "process"):
        for n_shards in _SHARD_COUNTS:
            cluster = AliCoCoCluster(
                built.store,
                config=ClusterConfig(
                    n_shards=n_shards,
                    executor=executor,
                    cache_capacity=0,
                    fanout_workers=n_shards,
                ),
                service_config=service_config,
                reranker=reranker,
            )
            try:
                assert cluster.batch(requests) == expected, (
                    f"{executor} executor at {n_shards} shards diverged "
                    f"from the single-store oracle"
                )
                best = 0.0
                for _ in range(_SCALING_PASSES):
                    start = time.perf_counter()
                    answers = cluster.batch(requests)
                    seconds = time.perf_counter() - start
                    assert answers == expected
                    best = max(best, len(requests) / max(seconds, 1e-9))
                throughput[(executor, n_shards)] = best
            finally:
                cluster.close()

    lines = [
        f"Executor scaling at {_N_ITEMS} items / {_N_CONCEPTS} concepts "
        f"({_CATALOG_GROWTH}x catalog, {BENCH_SCALE.name}): "
        f"{len(requests)} scalar-path rerank queries "
        f"(pool_k={_SCALING_POOL_K}), best of {_SCALING_PASSES}",
        f"  {'shards':>6} {'thread q/s':>11} {'process q/s':>12} "
        f"{'process/thread':>15}",
    ]
    for n_shards in _SHARD_COUNTS:
        thread_qps = throughput[("thread", n_shards)]
        process_qps = throughput[("process", n_shards)]
        lines.append(
            f"  {n_shards:>6} {thread_qps:>11,.1f} {process_qps:>12,.1f} "
            f"{process_qps / max(thread_qps, 1e-9):>14.2f}x"
        )
    gate = throughput[("process", 4)] / max(throughput[("thread", 4)], 1e-9)
    if not _SCALING_GATED:
        reason = (
            "smoke scale"
            if SMOKE
            else f"only {_USABLE_CORES} usable core(s)"
        )
        lines.append(
            f"  {reason}: shape report only (4-shard ratio "
            f"{gate:.2f}x; the >={_SCALING_MIN_SPEEDUP}x gate and the "
            f"monotone check run at full scale on >= 4 cores)"
        )
    else:
        assert gate >= _SCALING_MIN_SPEEDUP, (
            f"process executor at 4 shards is only {gate:.2f}x the "
            f"thread executor; the GIL escape should buy >= "
            f"{_SCALING_MIN_SPEEDUP}x"
        )
        for previous, current in zip(_SHARD_COUNTS, _SHARD_COUNTS[1:]):
            low = throughput[("process", previous)]
            high = throughput[("process", current)]
            assert high >= low * _SCALING_MONOTONE_TOLERANCE, (
                f"process curve dipped: {previous} shards "
                f"{low:,.1f} q/s -> {current} shards {high:,.1f} q/s"
            )
        lines.append(
            f"  gates: process/thread at 4 shards {gate:.2f}x "
            f"(>= {_SCALING_MIN_SPEEDUP}x), process curve monotone "
            f"within {_SCALING_MONOTONE_TOLERANCE:.0%} per step"
        )
    report("\n".join(lines))


def test_no_leaked_worker_processes():
    """Tripwire (runs last): every section reaped its shard workers."""
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    leaked = multiprocessing.active_children()
    assert leaked == [], (
        f"worker processes leaked past cluster.close(): "
        f"{[process.name for process in leaked]}"
    )
