"""Bench T3 + F9R — Table 3 / Figure 9 (right): AL sampling strategies.

One shared run feeds both artefacts: Table 3's label economy (labels used
at convergence per strategy) and Figure 9 (right)'s best-MAP comparison.
"""

import pytest

from repro.experiments import active_learning
from repro.experiments.common import format_rows

_CACHE = {}


@pytest.fixture(scope="module")
def comparison(ew):
    if "result" not in _CACHE:
        _CACHE["result"] = active_learning.run(ew)
    return _CACHE["result"]


def test_table3_label_economy(benchmark, report, ew, comparison):
    result = benchmark.pedantic(lambda: comparison, rounds=1, iterations=1)

    outcomes = result.outcomes
    # Paper shape: Random labels the whole pool; every AL strategy stops
    # earlier, and UCS saves a substantial share (-35% in the paper).
    assert outcomes["random"].labels_used == result.pool_size
    for strategy in ("us", "cs", "ucs"):
        assert outcomes[strategy].labels_used < result.pool_size
    assert outcomes["ucs"].reduction_vs_pool > 0.05

    report(active_learning.format_report(result))


def test_fig9_sampling_strategies(benchmark, report, comparison):
    result = benchmark.pedantic(lambda: comparison, rounds=1, iterations=1)

    outcomes = result.outcomes
    # Figure 9 (right) shape: UCS reaches the best MAP of all strategies.
    best = max(outcomes.values(), key=lambda o: o.best_map)
    assert best.strategy == "ucs", (
        f"expected UCS to reach the best MAP, got {best.strategy}")
    assert outcomes["ucs"].best_map > outcomes["random"].best_map

    rows = [(s.upper(), f"{o.best_map:.4f}",
             active_learning.PAPER[s]["map"])
            for s, o in outcomes.items()]
    report(format_rows("Figure 9 (right) — best MAP per strategy",
                       ("strategy", "best MAP", "paper MAP"), rows,
                       paper_note="UCS highest (46.32 vs 45.30 random)"))
