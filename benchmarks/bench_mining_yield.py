"""Bench S7.2 — iterative vocabulary-mining yield."""

from repro.experiments import mining_yield


def test_mining_yield(benchmark, report, ew):
    result = benchmark.pedantic(
        lambda: mining_yield.run(ew, rounds=2, max_sentences=900),
        rounds=1, iterations=1)

    # Paper shape: each round proposes candidates, a fraction survives
    # verification (64K -> 10K), and the known vocabulary grows.
    first = result.rounds[0]
    assert first.candidates, "the miner should propose new spans"
    assert first.accepted, "some proposals should verify as true concepts"
    assert 0.0 < first.acceptance_rate <= 1.0
    assert result.rounds[-1].known_after > result.known_before

    report(mining_yield.format_report(result))
