"""Bench S8.1 — search relevance with AliCoCo isA data."""

from repro.experiments import search_relevance

from conftest import BENCH_SCALE


def test_search_relevance(benchmark, report):
    result = benchmark.pedantic(
        lambda: search_relevance.run(BENCH_SCALE), rounds=1, iterations=1)

    # Paper shape: isA knowledge improves matching AUC (+1% offline) and
    # removes relevance bad cases (-4% online).
    assert result.auc_gain > 0.0, "isA expansion must improve relevance AUC"
    assert result.bad_cases_with < result.bad_cases_without, \
        "isA expansion must remove vocabulary-gap bad cases"

    report(search_relevance.format_report(result))
