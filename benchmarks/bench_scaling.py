"""Bench — scaling study of the construction pipeline."""

from repro.experiments import scaling

from conftest import BENCH_SCALE


def test_build_scaling(benchmark, report):
    result = benchmark.pedantic(
        lambda: scaling.run(BENCH_SCALE, item_counts=(60, 120, 240, 480)),
        rounds=1, iterations=1)

    points = result.points
    # Item-relation volume must grow with the catalog, every scale must
    # stay fully linked, and growth must not be superlinear by more than
    # a small factor (matching is O(items x concepts) by construction).
    for smaller, larger in zip(points[:-1], points[1:]):
        assert larger.item_relations > smaller.item_relations
        assert larger.linked_fraction >= 0.98
    first, last = points[0], points[-1]
    item_growth = last.n_items / first.n_items
    relation_growth = last.item_relations / first.item_relations
    assert relation_growth < item_growth * 2.5, \
        "item-relation growth should stay near-linear in catalog size"

    report(scaling.format_report(result))
