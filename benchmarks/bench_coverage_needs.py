"""Bench S7.1 — user-needs coverage: AliCoCo vs the former CPV ontology."""

from repro.experiments import coverage


def test_coverage_needs(benchmark, report, ew):
    result = benchmark.pedantic(lambda: coverage.run(ew), rounds=1,
                                iterations=1)

    # Paper shape: AliCoCo ~75%, former ontology ~30% — a large gap, with
    # scenario/problem queries essentially invisible to CPV.
    assert result.alicoco.query_coverage > result.cpv.query_coverage + 0.25
    assert result.alicoco.query_coverage > 0.6
    assert result.cpv.query_coverage < 0.55
    assert result.cpv.by_family.get("scenario", 0.0) < 0.2
    assert result.alicoco.by_family.get("scenario", 0.0) > 0.5

    report(coverage.format_report(result))
