"""The five technical modules, end to end at demo scale.

Walks the construction pipeline of Sections 4-6 on the synthetic world:

1. distant supervision + BiLSTM-CRF vocabulary mining (Section 4.1);
2. hypernym discovery: Hearst patterns, suffix rule, projection learning
   (Section 4.2);
3. e-commerce concept candidate generation (Section 5.2.1);
4. knowledge-enhanced concept classification (Section 5.2.2);
5. concept tagging with the fuzzy CRF (Section 5.3).

Run:
    python examples/construction_pipeline.py        (~1-2 minutes)
"""

import numpy as np

from repro.concepts import CandidateGenerator, ConceptTagger
from repro.concepts.classifier import ConceptClassifier, lexicon_ner_lookup
from repro.concepts.features import WideFeatureExtractor
from repro.config import TINY
from repro.experiments.common import build_experiment_world
from repro.hypernym import HearstMiner, ProjectionModel, build_dataset, suffix_rule_pairs
from repro.mining import MiningPipeline
from repro.nlp.vocab import Vocab


def main() -> None:
    print("Building the synthetic world and shared substrate ...")
    ew = build_experiment_world(TINY, n_concepts=80, embedding_epochs=8)
    sentences = ew.corpus.sentences()

    print("\n[1] Vocabulary mining (Section 4.1)")
    pipeline = MiningPipeline(ew.lexicon, held_out_fraction=0.3,
                              seed=TINY.seed)
    rounds = pipeline.run(sentences[:600], rounds=1, epochs=2,
                          embedding_dim=16, hidden_dim=16)
    round_one = rounds[0]
    print(f"    candidates proposed: {len(round_one.candidates)}")
    print(f"    verified & accepted: {len(round_one.accepted)}")
    print(f"    examples: {round_one.accepted[:4]}")

    print("\n[2] Hypernym discovery (Section 4.2)")
    surfaces = ew.lexicon.domain_surfaces("Category")
    suffix = suffix_rule_pairs(surfaces)
    hearst = HearstMiner(surfaces).mine(ew.corpus.guides)
    print(f"    suffix-rule pairs: {len(suffix)} "
          f"(e.g. {suffix[0] if suffix else '-'})")
    print(f"    Hearst-pattern pairs from guides: {len(hearst)}")
    dataset = build_dataset(ew.lexicon, np.random.default_rng(0),
                            negatives_per_positive=10)
    model = ProjectionModel(ew.phrase_vector, dim=TINY.embedding_dim,
                            k_layers=3, seed=1)
    model.fit(dataset.train, epochs=12, seed=1)
    metrics = model.evaluate(dataset)
    print(f"    projection model: MAP={metrics['map']:.3f} "
          f"MRR={metrics['mrr']:.3f} P@1={metrics['p@1']:.3f}")
    ranked = model.rank_candidates("trench coat", surfaces)[:3]
    print(f"    top hypernym guesses for 'trench coat': {ranked}")

    print("\n[3] Concept candidate generation (Section 5.2.1)")
    generator = CandidateGenerator(ew.world)
    rng = np.random.default_rng(1)
    combined, mined, gen_report = generator.generate(sentences, rng, 60, 60)
    print(f"    pattern-combined: {gen_report.combined}, "
          f"corpus-mined: {gen_report.mined}")
    print(f"    mined examples: {mined[:3]}")

    print("\n[4] Concept classification (Section 5.2.2)")
    texts = [s.text for s in combined]
    labels = [int(s.good) for s in combined]
    vocab = Vocab.from_corpus([t.split() for t in texts])
    ner_lookup, num_ner = lexicon_ner_lookup(ew.lexicon)
    wide = WideFeatureExtractor(ew.language_model, sentences)
    classifier = ConceptClassifier(vocab, ew.pos_tagger, ner_lookup, num_ner,
                                   wide_extractor=wide,
                                   knowledge_lookup=ew.gloss_vector,
                                   gloss_kb=ew.gloss_kb,
                                   knowledge_dim=ew.gloss_doc2vec.dim,
                                   word_dim=16, hidden_dim=10, seed=1)
    classifier.fit(texts[:90], labels[:90], epochs=3, seed=1)
    held_out = classifier.evaluate(texts[90:], labels[90:])
    print(f"    held-out precision: {held_out['precision']:.3f}, "
          f"accuracy: {held_out['accuracy']:.3f}")

    print("\n[5] Concept tagging (Section 5.3)")
    good = [s for s in combined if s.good]
    tagger = ConceptTagger(Vocab.from_corpus([list(s.tokens) for s in good]),
                           ew.lexicon, ew.pos_tagger, use_fuzzy=True,
                           word_dim=16, hidden_dim=10, seed=1)
    tagger.fit(good[:45], epochs=3, seed=1)
    spec = good[-1]
    print(f"    concept: {spec.text!r}")
    print(f"    predicted: {tagger.predict(list(spec.tokens))}")
    print(f"    gold:      {spec.iob_labels()}")


if __name__ == "__main__":
    main()
