"""Semantic search demo (Section 8.1): concept cards and isA relevance.

Shows the paper's three search behaviours:
1. a scenario query triggers a concept card with its associated items;
2. a wordy problem query still finds the concept by containment;
3. the isA layer bridges the query-title vocabulary gap ("top" retrieves
   jackets and coats whose titles never say "top").

Run:
    python examples/semantic_search.py
"""

from repro import build_alicoco, TINY
from repro.apps import SemanticSearchEngine
from repro.kg.query import items_for_concept


def show(result) -> None:
    print(f"\nquery: {result.query!r}")
    if result.concept_card is not None:
        print(f"  [concept card] items you will need for: "
              f"{result.concept_card.text!r}")
        for item in result.card_items[:4]:
            print(f"      - {item.title}")
    else:
        print("  (no concept card)")
    if result.items:
        print("  top item results:")
        for item in result.items[:4]:
            print(f"      - {item.title}")


def main() -> None:
    built = build_alicoco(TINY)
    engine = SemanticSearchEngine(built.store)

    # Pick a scenario concept that actually has items at this scale.
    demo_concept = None
    for spec in built.concepts:
        concept_id = built.concept_ids[spec.text]
        if len(items_for_concept(built.store, concept_id)) >= 3:
            demo_concept = spec
            break
    assert demo_concept is not None

    show(engine.search(demo_concept.text))
    show(engine.search(f"what do i need for {demo_concept.text}"))
    show(engine.search("red dress"))

    print("\n=== isA expansion (Section 8.1.1) ===")
    without = SemanticSearchEngine(built.store, use_isa_expansion=False)
    for query in ("top", "footwear"):
        hits_with = engine.retrieve_items(query, top_k=5)
        hits_without = without.retrieve_items(query, top_k=5)
        print(f"query {query!r}: {len(hits_with)} items with isA, "
              f"{len(hits_without)} without")
        for item in hits_with[:3]:
            print(f"      - {item.title}")


if __name__ == "__main__":
    main()
