"""Serving demo (Section 7): build once, snapshot, restart, query.

Walks the offline/online split the paper deploys at Alibaba: construct
the net offline, persist it as a versioned snapshot, then warm-start the
online service from that snapshot (no rebuild, no index re-fit) and
answer concept queries — including an enveloped batch, where a bad
request comes back as a ``BatchResult`` error envelope instead of
throwing away its neighbours' completed work.

The second half serves *models*: a trained concept tagger answers
``tag`` (free text -> linked concept mentions) and a trained matcher
reranks BM25 candidates (``search_reranked``); both ride the same
snapshot as a model bundle, so the restarted service warm-starts graph,
index and weights from one file.

Run:
    python examples/serve_snapshot.py
"""

import tempfile
import threading
import time
from pathlib import Path

from repro import build_alicoco, TINY
from repro.concepts import ConceptTagger
from repro.errors import OverloadedError
from repro.kg import GenerationalStore
from repro.kg.relations import RelationKind
from repro.pipeline import EvolutionConfig, EvolutionDriver
from repro.matching import DSSMMatcher, train_matcher
from repro.matching.base import matching_vocab
from repro.matching.dataset import pair_from_texts
from repro.nlp.pos import PosTagger
from repro.nlp.vocab import Vocab
from repro.serving import (
    AliCoCoCluster,
    AliCoCoService,
    ClusterConfig,
    ServiceConfig,
)


def make_tagger(built, seed=1):
    """An untrained tagger architecture over the built world's text."""
    sentences = [list(spec.tokens) for spec in built.concepts]
    return ConceptTagger(
        Vocab.from_corpus(sentences),
        built.lexicon,
        PosTagger(built.lexicon.pos_lexicon()),
        use_fuzzy=False,
        word_dim=8,
        char_dim=4,
        hidden_dim=6,
        seed=seed,
    )


def training_pairs(built):
    """(concept text, item title) pairs for the reranker, from the graph."""
    pairs = []
    for spec in built.concepts[:10]:
        concept_id = built.concept_ids[spec.text]
        linked = {
            relation.source
            for relation in built.store.in_relations(
                concept_id, RelationKind.ITEM_ECOMMERCE
            )
        }
        for index in range(8):
            item_id = built.item_ids[index]
            pairs.append(
                pair_from_texts(
                    spec.tokens,
                    built.store.get(item_id).title.split(),
                    label=int(item_id in linked),
                )
            )
    return pairs


def make_reranker(built, seed=1):
    """An untrained DSSM architecture over the reranker's pair vocab."""
    return DSSMMatcher(
        matching_vocab(training_pairs(built)), dim=8, hidden=8, seed=seed
    )


def main() -> None:
    # --- offline: build the net and bring up a cold service --------------
    start = time.perf_counter()
    built = build_alicoco(TINY)
    service = AliCoCoService.from_build(built, config_fingerprint=TINY.fingerprint())
    cold_ms = (time.perf_counter() - start) * 1e3
    print(f"cold start (build + index fit): {cold_ms:.0f} ms")

    # --- persist: one versioned, atomically written snapshot file --------
    snapshot = Path(tempfile.mkdtemp()) / "net.snapshot.jsonl"
    lines = service.save_snapshot(snapshot)
    print(f"snapshot: {lines} lines at {snapshot}")

    # --- restart: warm-start a fresh service from the snapshot -----------
    start = time.perf_counter()
    service = AliCoCoService.from_snapshot(
        snapshot, expected_fingerprint=TINY.fingerprint()
    )
    warm_ms = (time.perf_counter() - start) * 1e3
    print(f"warm start (snapshot replay): {warm_ms:.0f} ms")

    # --- query: the production surface, one concept card's worth ---------
    spec = built.concepts[0]
    print(f"\nquery: {spec.text!r}")
    for concept_id, score in service.search(spec.text, k=3):
        concept = service.store.get(concept_id)
        print(f"  {score:6.2f}  {concept.text!r}")

    concept_id = built.concept_ids[spec.text]
    print("\nconcept card:")
    for item_id, weight in service.items_for_concept(concept_id, top_k=3):
        print(f"  {weight:6.2f}  {service.store.get(item_id).title}")
    for primitive_id in service.interpretation(concept_id):
        primitive = service.store.get(primitive_id)
        print(f"  sense: {primitive.name} ({primitive.domain})")

    # --- batch with envelopes: failures are data, not lost work ----------
    requests = [
        ("search", spec.text),
        ("items_for_concept", "ec_999999999"),  # bad id, mid-batch
        ("items_for_concept", concept_id, 3),
    ]
    print("\nenvelope batch (one bad request in the middle, workers=2):")
    for request, result in zip(
        requests, service.batch(requests, on_error="envelope", workers=2)
    ):
        if result.ok:
            print(f"  ok    {request[0]}: {len(result.value)} results")
        else:
            print(
                f"  FAIL  {request[0]}: {result.error_type}: "
                f"{result.error_message}"
            )

    # --- observe: cache, latency and error stats after a repeat batch ----
    requests = [("search", spec.text), ("items_for_concept", concept_id, 3)]
    for _ in range(3):
        service.batch(requests)
    print("\n" + service.stats().format_table("service stats"))

    # --- model serving: train once, bundle in the snapshot ---------------
    print("\ntraining models (tagger + reranker)...")
    start = time.perf_counter()
    tagger = make_tagger(built)
    tagger.fit(built.concepts, epochs=3, lr=0.02, seed=1)
    reranker = make_reranker(built)
    train_matcher(reranker, training_pairs(built), epochs=2, lr=0.05, seed=0)
    train_ms = (time.perf_counter() - start) * 1e3
    modelled = AliCoCoService.from_build(
        built,
        tagger=tagger,
        reranker=reranker,
        config_fingerprint=TINY.fingerprint(),
    )
    print(f"trained in {train_ms:.0f} ms; serving {modelled.models}")

    bundle_path = snapshot.with_name("net.models.snapshot.jsonl")
    modelled.save_snapshot(bundle_path)

    # Restart with weights from the bundle: fresh architectures, no
    # re-training; outputs are bit-identical to the trained originals.
    start = time.perf_counter()
    modelled = AliCoCoService.from_snapshot(
        bundle_path,
        tagger=make_tagger(built, seed=99),
        reranker=make_reranker(built, seed=99),
        expected_fingerprint=TINY.fingerprint(),
    )
    restore_ms = (time.perf_counter() - start) * 1e3
    print(
        f"warm-bundle restart: {restore_ms:.0f} ms (vs {train_ms:.0f} ms "
        "of training)"
    )

    print(f"\ntag: {spec.text!r}")
    for span in modelled.tag(spec.text):
        link = span.primitive_id or "<no node>"
        print(
            f"  [{span.start}:{span.stop}] {span.surface!r} "
            f"({span.domain}) -> {link}"
        )

    print("\nmodel-reranked search vs BM25:")
    for (bm25_id, bm25_score), (model_id, prob) in zip(
        modelled.search(spec.text, k=3), modelled.search_reranked(spec.text, 3)
    ):
        print(
            f"  bm25 {bm25_score:6.2f} {bm25_id:>6}   "
            f"model p={prob:.3f} {model_id:>6}"
        )

    # --- inference fast path: pre-warm the doc-encoding cache ------------
    # Reranked endpoints batch their pool through score_pool (query
    # encoded once, tape-free kernels); warming encodes the frozen
    # catalog up front so first queries pay no doc-encoding cost either.
    warmed = modelled.warm_doc_cache()
    start = time.perf_counter()
    modelled.search_reranked(built.concepts[1].text, 3)
    warm_query_ms = (time.perf_counter() - start) * 1e3
    doc_stats = modelled.stats()
    print(
        f"\nfast path: {warmed} doc encodings pre-warmed; "
        f"first warm reranked query {warm_query_ms:.2f} ms "
        f"({doc_stats.doc_cache_hits} doc-cache hits)"
    )

    # --- hybrid retrieval: dense ANN + BM25 fused with RRF ----------------
    # The first stage behind the reranked endpoints is pluggable
    # (ServiceConfig(retriever=...)): "bm25" (default), "dense" (an ANN
    # index over the reranker's own doc vectors), or "hybrid" (both arms
    # fused with Reciprocal Rank Fusion).  The dense index embeds the
    # frozen catalog once at startup — through the same doc-encoding
    # cache — and its *fitted* state rides the snapshot, so a restart
    # skips the k-means build entirely.
    hybrid_config = ServiceConfig(retriever="hybrid", dense_backend="ivf")
    hybrid = AliCoCoService.from_build(
        built,
        tagger=tagger,
        reranker=reranker,
        config=hybrid_config,
        config_fingerprint=TINY.fingerprint(),
    )
    print("\nhybrid-reranked search (RRF over dense + BM25 arms):")
    answers = hybrid.search_reranked(spec.text, 3)
    for concept_id, prob in answers:
        print(f"  p={prob:.3f}  {hybrid.store.get(concept_id).text!r}")

    hybrid_path = snapshot.with_name("net.hybrid.snapshot.jsonl")
    hybrid.save_snapshot(hybrid_path)
    start = time.perf_counter()
    warm_hybrid = AliCoCoService.from_snapshot(
        hybrid_path,
        tagger=make_tagger(built, seed=7),
        reranker=make_reranker(built, seed=7),
        config=hybrid_config,
        expected_fingerprint=TINY.fingerprint(),
    )
    hybrid_warm_ms = (time.perf_counter() - start) * 1e3
    assert warm_hybrid.search_reranked(spec.text, 3) == answers
    print(
        f"  warm hybrid restart: {hybrid_warm_ms:.0f} ms, answers "
        "bit-identical (fitted ANN index state rides the snapshot)"
    )

    # --- cluster serving: shards, coalescing, load shedding ---------------
    # The same store and models behind a sharded scatter-gather façade:
    # `ec`/`item` hash-partitioned, the taxonomy replicated, concurrent
    # duplicate rerank requests coalesced into one computation — and
    # answers bit-identical to the single service.  Result caches are off
    # and the admission limits are deliberately tight here so the demo
    # can actually shed.
    cluster = AliCoCoCluster(
        modelled.store,
        config=ClusterConfig(
            n_shards=2,
            cache_capacity=0,
            max_inflight=1,
            max_queue_depth=1,
            max_queue_wait_ms=100.0,
        ),
        service_config=ServiceConfig(cache_capacity=0),
        reranker=reranker,
    )
    assert cluster.search(spec.text, k=3) == modelled.search(spec.text, k=3)
    assert cluster.search_reranked(spec.text, 3) == (
        modelled.search_reranked(spec.text, 3)
    )
    print("\ncluster (2 shards): search + reranked answers bit-identical")

    # Under overload the cluster sheds with a typed error instead of
    # queueing without bound; a client's discipline is retry-with-backoff.
    def search_with_retry(text, k, retries=5, backoff_s=0.02):
        for attempt in range(retries):
            try:
                return cluster.search_reranked(text, k)
            except OverloadedError as error:
                print(f"  overloaded ({error.reason}); backing off...")
                time.sleep(backoff_s * (attempt + 1))
        return cluster.search_reranked(text, k)

    def hammer(texts):
        for text in texts:
            try:
                cluster.search_reranked(text, 3)
            except OverloadedError:
                pass

    print("cluster under a 4-client burst (max_inflight=1, queue=1):")
    burst = [
        threading.Thread(
            target=hammer,
            args=([candidate.text] * 3,),
        )
        for candidate in built.concepts[2:6]
    ]
    for thread in burst:
        thread.start()
    answers = search_with_retry(spec.text, 3)
    for thread in burst:
        thread.join()
    assert answers == modelled.search_reranked(spec.text, 3)
    admission = cluster.stats().admission
    print(
        f"  retried query served correctly; admitted {admission.admitted}, "
        f"shed {admission.shed_total} "
        f"({', '.join(f'{r} x{c}' for r, c in admission.shed) or 'none'})"
    )
    cluster.close()

    # --- out-of-process shards: escape the GIL, survive worker crashes ----
    # executor="process" serves every shard from its own interpreter:
    # the parent snapshots each shard store to disk, spawns one worker
    # per shard, and speaks a compact framed RPC over pipes.  Answers
    # stay bit-identical to the thread executor and the single service;
    # what changes is that scattered rerank compute runs on all cores.
    process_cluster = AliCoCoCluster(
        modelled.store,
        config=ClusterConfig(n_shards=2, executor="process"),
        service_config=ServiceConfig(),
        reranker=reranker,
    )
    assert process_cluster.search(spec.text, k=3) == (
        modelled.search(spec.text, k=3)
    )
    expected = modelled.search_reranked(spec.text, 3)
    assert process_cluster.search_reranked(spec.text, 3) == expected
    workers = process_cluster.stats().workers
    print(
        f"\nprocess cluster (2 shards): answers bit-identical; workers "
        f"{[w.pid for w in workers.workers]} alive={workers.all_alive}"
    )

    # Crash and recover: kill a worker out from under the cluster.  The
    # next call that needs it respawns the worker from its bootstrap
    # snapshot (plus any published deltas) and the answer is the same —
    # bounded restarts, then typed ShardUnavailableError degradation.
    victim = process_cluster.worker_pool.worker_process(0)
    victim.kill()
    victim.join()
    fresh_query = built.concepts[1].text
    assert process_cluster.search_reranked(fresh_query, 3) == (
        modelled.search_reranked(fresh_query, 3)
    )
    workers = process_cluster.stats().workers
    print(
        f"  killed shard 0 (pid {victim.pid}); auto-restarted as pid "
        f"{workers.workers[0].pid}, answers still bit-identical "
        f"({workers.total_restarts} restart)"
    )
    process_cluster.close()

    # --- closing the loop: background mining, drain, compact, restart -----
    # The deployed net keeps growing.  An EvolutionDriver runs the
    # construction stages (mine -> classify -> link -> match) against
    # fresh corpus batches on a background thread and publishes
    # generations into the live service; new concepts become searchable
    # without a restart and readers never block.
    evolving = AliCoCoService(
        GenerationalStore(built.store), config=ServiceConfig()
    )
    driver = EvolutionDriver.from_build(
        built,
        evolving,
        config=EvolutionConfig(
            seed=23,
            n_good=3,
            n_bad=2,
            n_queries=12,
            n_guides=8,
            publish_min_nodes=1,
            cycle_interval=0.0,
        ),
    )
    print("\nevolution: background mining into the live service...")
    driver.start()
    while evolving.generation_id < 2:
        time.sleep(0.005)

    # Drain flushes whatever is staged and stops the loop; the newest
    # mined concept is searchable with no restart.  Compaction then
    # folds the published segment chain into a fresh frozen base —
    # bit-identical answers, same generation id.
    final_generation = driver.drain()
    store = evolving.store  # the GenerationalStore behind the service
    newest = list(store.nodes("ec"))[-1]
    hits = evolving.search(newest.text)
    assert hits and hits[0][0] == newest.id
    print(
        f"  mined concept {newest.text!r} searchable at generation "
        f"{evolving.generation_id}, no restart"
    )
    before = hits
    folded = store.compact()
    assert evolving.search(newest.text) == before
    print(
        f"  drained at generation {final_generation}; compacted "
        f"{folded} segments into the base (answers bit-identical)"
    )

    # The folded generation rides the snapshot: a warm restart resumes
    # the numbering and keeps growing from where the driver left off.
    evolved_path = snapshot.with_name("evolved.snapshot.jsonl")
    evolving.save_snapshot(evolved_path)
    warm_evolved = AliCoCoService.from_snapshot(evolved_path)
    assert warm_evolved.generation_id == final_generation
    assert warm_evolved.search(newest.text) == before
    resumed = EvolutionDriver.from_build(
        built,
        warm_evolved,
        config=EvolutionConfig(
            seed=29, n_good=2, n_bad=1, n_queries=10, n_guides=6,
            publish_min_nodes=1, cycle_interval=0.0,
        ),
    )
    report = resumed.run_cycle()
    print(
        f"  warm restart resumed at generation {final_generation}; one "
        f"more cycle published generation {report.published_generation} "
        f"({report.accepted} concepts, {report.links + report.matches} "
        "relations)"
    )


if __name__ == "__main__":
    main()
