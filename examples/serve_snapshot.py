"""Serving demo (Section 7): build once, snapshot, restart, query.

Walks the offline/online split the paper deploys at Alibaba: construct
the net offline, persist it as a versioned snapshot, then warm-start the
online service from that snapshot (no rebuild, no index re-fit) and
answer concept queries — including an enveloped batch, where a bad
request comes back as a ``BatchResult`` error envelope instead of
throwing away its neighbours' completed work.

Run:
    python examples/serve_snapshot.py
"""

import tempfile
import time
from pathlib import Path

from repro import build_alicoco, TINY
from repro.serving import AliCoCoService


def main() -> None:
    # --- offline: build the net and bring up a cold service --------------
    start = time.perf_counter()
    built = build_alicoco(TINY)
    service = AliCoCoService.from_build(built, config_fingerprint=TINY.fingerprint())
    cold_ms = (time.perf_counter() - start) * 1e3
    print(f"cold start (build + index fit): {cold_ms:.0f} ms")

    # --- persist: one versioned, atomically written snapshot file --------
    snapshot = Path(tempfile.mkdtemp()) / "net.snapshot.jsonl"
    lines = service.save_snapshot(snapshot)
    print(f"snapshot: {lines} lines at {snapshot}")

    # --- restart: warm-start a fresh service from the snapshot -----------
    start = time.perf_counter()
    service = AliCoCoService.from_snapshot(
        snapshot, expected_fingerprint=TINY.fingerprint()
    )
    warm_ms = (time.perf_counter() - start) * 1e3
    print(f"warm start (snapshot replay): {warm_ms:.0f} ms")

    # --- query: the production surface, one concept card's worth ---------
    spec = built.concepts[0]
    print(f"\nquery: {spec.text!r}")
    for concept_id, score in service.search(spec.text, k=3):
        concept = service.store.get(concept_id)
        print(f"  {score:6.2f}  {concept.text!r}")

    concept_id = built.concept_ids[spec.text]
    print("\nconcept card:")
    for item_id, weight in service.items_for_concept(concept_id, top_k=3):
        print(f"  {weight:6.2f}  {service.store.get(item_id).title}")
    for primitive_id in service.interpretation(concept_id):
        primitive = service.store.get(primitive_id)
        print(f"  sense: {primitive.name} ({primitive.domain})")

    # --- batch with envelopes: failures are data, not lost work ----------
    requests = [
        ("search", spec.text),
        ("items_for_concept", "ec_999999999"),  # bad id, mid-batch
        ("items_for_concept", concept_id, 3),
    ]
    print("\nenvelope batch (one bad request in the middle, workers=2):")
    for request, result in zip(
        requests, service.batch(requests, on_error="envelope", workers=2)
    ):
        if result.ok:
            print(f"  ok    {request[0]}: {len(result.value)} results")
        else:
            print(
                f"  FAIL  {request[0]}: {result.error_type}: "
                f"{result.error_message}"
            )

    # --- observe: cache, latency and error stats after a repeat batch ----
    requests = [("search", spec.text), ("items_for_concept", concept_id, 3)]
    for _ in range(3):
        service.batch(requests)
    print("\n" + service.stats().format_table("service stats"))


if __name__ == "__main__":
    main()
