"""Run the complete evaluation (every table and figure) and write a report.

This is the script version of the benchmark suite, with the scale under
your control:

    python examples/full_evaluation.py            # bench-lite, ~6 minutes
    python examples/full_evaluation.py tiny       # smaller, ~2 minutes

The report is written to ``evaluation_report.txt``.
"""

import sys
import time

from repro.config import get_scale, RunScale
from repro.experiments import (
    ablations, active_learning, build_experiment_world, coverage,
    fig9_negatives, mining_yield, search_relevance, table2_statistics,
    table4_classification, table5_tagging, table6_matching,
)

BENCH_LITE = RunScale(name="bench-lite", n_items=250, n_queries=400,
                      n_reviews=200, n_guides=80, embedding_dim=16,
                      hidden_dim=16, epochs=4, seed=7)


def main() -> None:
    scale = BENCH_LITE
    if len(sys.argv) > 1:
        scale = get_scale(sys.argv[1])
    start = time.time()
    print(f"building experiment world at scale {scale.name!r} ...")
    ew = build_experiment_world(scale, n_concepts=110, embedding_epochs=8)

    sections: list[str] = []

    def section(title, text):
        print(f"[{time.time() - start:6.1f}s] {title}")
        sections.append(text)

    section("Table 2", table2_statistics.format_report(
        table2_statistics.run(scale)))
    section("S7.1 coverage", coverage.format_report(coverage.run(ew)))
    section("S7.2 mining yield", mining_yield.format_report(
        mining_yield.run(ew, rounds=2, max_sentences=900)))
    section("Figure 9 left", fig9_negatives.format_report(
        fig9_negatives.run(ew, epochs=15)))
    section("Table 3 / Figure 9 right", active_learning.format_report(
        active_learning.run(ew)))
    section("Table 4", table4_classification.format_report(
        table4_classification.run(ew)))
    section("Table 5", table5_tagging.format_report(table5_tagging.run(ew)))
    section("Table 6", table6_matching.format_report(
        table6_matching.run(ew)))
    section("S8.1 search relevance", search_relevance.format_report(
        search_relevance.run(scale)))
    section("Ablation: UCS alpha", ablations.format_ucs_alpha(
        ablations.run_ucs_alpha(ew)))
    section("Ablation: distant filter", ablations.format_distant_filter(
        ablations.run_distant_filter(ew)))
    section("Ablation: concept sources", ablations.format_concept_sources(
        ablations.run_concept_sources(ew)))

    report = "\n\n".join(sections)
    with open("evaluation_report.txt", "w", encoding="utf-8") as handle:
        handle.write(report + "\n")
    print(f"\nwrote evaluation_report.txt ({time.time() - start:.0f}s total)")
    print("\n" + report)


if __name__ == "__main__":
    main()
