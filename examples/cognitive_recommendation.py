"""Cognitive recommendation demo (Section 8.2).

Contrasts the item-CF baseline ("similar to items you viewed") with
user-needs driven recommendation: infer the scenario behind the user's
history through the net, recommend a concept card, and explain it.

Run:
    python examples/cognitive_recommendation.py
"""

import numpy as np

from repro import build_alicoco, TINY
from repro.apps import CognitiveRecommender, ItemCFRecommender, recommendation_reason
from repro.kg.query import items_for_concept


def build_sessions(built, rng):
    """Synthetic co-purchase sessions: items sharing a shopping scenario."""
    sessions = []
    for spec in built.concepts:
        concept_id = built.concept_ids[spec.text]
        items = items_for_concept(built.store, concept_id)
        if len(items) < 3:
            continue
        for _ in range(4):
            picked = rng.choice(len(items), size=3, replace=False)
            sessions.append([items[i].id for i in picked])
    return sessions


def main() -> None:
    built = build_alicoco(TINY)
    rng = np.random.default_rng(11)
    sessions = build_sessions(built, rng)
    history = sessions[0][:2]

    print("user history:")
    for item_id in history:
        print(f"  - {built.store.get(item_id).title}")

    print("\n=== item-based CF (the baseline the paper critiques) ===")
    cf = ItemCFRecommender(sessions)
    for item_id in cf.recommend(history, top_k=4):
        print(f"  - {built.store.get(item_id).title}")
        print("      reason: similar to items you have viewed")

    print("\n=== cognitive recommendation (Section 8.2.1) ===")
    recommender = CognitiveRecommender(built.store)
    for card in recommender.recommend_cards(history, top_k=2):
        print(f"  [card] {card.concept.text!r}")
        for item in card.items[:3]:
            reason = recommendation_reason(built.store, item.id, history)
            print(f"      - {item.title}")
            print(f"        reason: {reason}")

    print("\n=== novelty (the paper: 'brings more novelty') ===")
    cf_items = cf.recommend(history, top_k=6)
    cards = recommender.recommend_cards(history, top_k=3)
    cognitive_items = [item.id for card in cards for item in card.items][:6]
    print(f"  CF novelty:        "
          f"{recommender.novelty(history, cf_items):.0%}")
    print(f"  cognitive novelty: "
          f"{recommender.novelty(history, cognitive_items):.0%}")


if __name__ == "__main__":
    main()
