"""Quickstart: build a small AliCoCo net and walk its four layers.

Run:
    python examples/quickstart.py
"""

from repro import build_alicoco, TINY
from repro.kg import query as kgq


def main() -> None:
    print("Building AliCoCo at the 'tiny' scale ...")
    result = build_alicoco(TINY)
    store = result.store

    print("\n=== Table-2-style statistics ===")
    print(store.stats().summary())

    # Walk layer by layer, mirroring Figure 1 of the paper.
    print("\n=== Taxonomy (Section 3) ===")
    clothing = store.find_by_name("cls", "Clothing")[0]
    path = " -> ".join(c.name for c in kgq.class_path(store, clothing.id))
    print(f"class path: {path}")

    print("\n=== Primitive concepts (Section 4) ===")
    senses = kgq.find_primitive_senses(store, "village")
    for sense in senses:
        print(f"  'village' sense: {sense.id} in domain {sense.domain}")
    coat = kgq.find_primitive_senses(store, "trench coat")[0]
    hypernyms = kgq.hypernyms(store, coat.id, transitive=True)
    print("  'trench coat' isA:", [h.name for h in hypernyms])

    print("\n=== E-commerce concepts (Section 5) ===")
    spec = result.concepts[0]
    concept = store.get(result.concept_ids[spec.text])
    print(f"  concept: {concept.text!r} (pattern: {concept.source})")
    interpretation = kgq.interpretation(store, concept.id)
    for primitive in interpretation:
        print(f"    interpreted by {primitive.name!r} ({primitive.domain})")

    print("\n=== Items (Section 6) ===")
    items = kgq.items_for_concept(store, concept.id, top_k=5)
    if items:
        print(f"  items for {concept.text!r}:")
        for item in items:
            print(f"    - {item.title}")
    else:
        print(f"  (no items matched {concept.text!r} at this tiny scale)")


if __name__ == "__main__":
    main()
