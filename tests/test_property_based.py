"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml.tensor import Tensor
from repro.nlp.crf import LinearChainCRF
from repro.nlp.segmentation import MaxMatchSegmenter
from repro.nlp.vocab import Vocab
from repro.utils.metrics import (
    average_precision, f1_score, mean_average_precision, precision_at_k,
    reciprocal_rank, roc_auc,
)
from repro.utils.text import ngrams, normalize_text

# ------------------------------------------------------------------ helpers
tokens_strategy = st.lists(
    st.text(alphabet="abcdefg", min_size=1, max_size=5), min_size=0,
    max_size=8)
relevance_strategy = st.lists(st.integers(min_value=0, max_value=1),
                              min_size=1, max_size=20)


class TestMetricsProperties:
    @given(relevance_strategy)
    def test_average_precision_bounds(self, relevance):
        assert 0.0 <= average_precision(relevance) <= 1.0

    @given(st.integers(min_value=1, max_value=20))
    def test_perfect_ranking_is_one(self, n):
        assert average_precision([1] * n) == 1.0
        assert mean_average_precision([[1] * n]) == 1.0

    @given(relevance_strategy)
    def test_reciprocal_rank_matches_first_hit(self, relevance):
        rr = reciprocal_rank(relevance)
        if 1 in relevance:
            assert rr == pytest.approx(1.0 / (relevance.index(1) + 1))
        else:
            assert rr == 0.0

    @given(relevance_strategy, st.integers(min_value=1, max_value=25))
    def test_precision_at_k_bounds(self, relevance, k):
        assert 0.0 <= precision_at_k(relevance, k) <= 1.0

    @given(st.lists(st.floats(min_value=-10, max_value=10,
                              allow_nan=False), min_size=4, max_size=30))
    def test_auc_complement_under_score_negation(self, scores):
        labels = [i % 2 for i in range(len(scores))]
        # Break exact ties so the complement identity is exact.
        scores = [s + i * 1e-6 for i, s in enumerate(scores)]
        auc = roc_auc(labels, scores)
        flipped = roc_auc(labels, [-s for s in scores])
        assert auc + flipped == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False)
                    .map(lambda x: round(x, 3)),
                    min_size=4, max_size=30),
           st.floats(min_value=0.1, max_value=3.0))
    def test_auc_invariant_to_monotone_rescale(self, scores, scale):
        # Rounding keeps the affine transform tie-preserving in float64
        # (tiny denormals would otherwise underflow into new ties).
        labels = [i % 2 for i in range(len(scores))]
        base = roc_auc(labels, scores)
        rescaled = roc_auc(labels, [scale * s + 1.0 for s in scores])
        assert base == pytest.approx(rescaled)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2,
                    max_size=30))
    def test_f1_perfect_predictions(self, labels):
        expected = 1.0 if 1 in labels else 0.0
        assert f1_score(labels, labels) == pytest.approx(expected)


class TestTextProperties:
    @given(st.text(max_size=60))
    def test_normalize_idempotent(self, text):
        once = normalize_text(text)
        assert normalize_text(once) == once

    @given(st.text(max_size=60))
    def test_normalize_output_charset(self, text):
        for char in normalize_text(text):
            assert char.islower() or char.isdigit() or char in " -'"

    @given(tokens_strategy, st.integers(min_value=1, max_value=5))
    def test_ngram_count(self, tokens, n):
        grams = list(ngrams(tokens, n))
        assert len(grams) == max(0, len(tokens) - n + 1)
        for gram in grams:
            assert len(gram) == n


class TestVocabProperties:
    @given(st.lists(st.text(alphabet="xyz", min_size=1, max_size=4),
                    min_size=0, max_size=20))
    def test_roundtrip_known_tokens(self, tokens):
        vocab = Vocab(tokens)
        for token in tokens:
            assert vocab.token(vocab.id(token)) == token

    @given(st.lists(st.lists(st.text(alphabet="pq", min_size=1, max_size=3),
                             min_size=1, max_size=6),
                    min_size=1, max_size=10))
    def test_from_corpus_covers_frequent_tokens(self, sentences):
        vocab = Vocab.from_corpus(sentences, min_freq=1)
        for sentence in sentences:
            for token in sentence:
                assert token in vocab

    @given(st.lists(st.text(alphabet="abc", min_size=1, max_size=3),
                    min_size=0, max_size=15))
    def test_ids_are_dense(self, tokens):
        vocab = Vocab(tokens)
        ids = {vocab.id(t) for t in vocab.tokens()}
        assert ids == set(range(len(vocab)))


class TestTensorProperties:
    @given(st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False),
                    min_size=1, max_size=12))
    def test_softmax_is_distribution(self, values):
        probs = Tensor(np.array(values)).softmax(axis=0).numpy()
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0)

    @given(st.lists(st.floats(min_value=-20, max_value=20, allow_nan=False),
                    min_size=1, max_size=12))
    def test_logsumexp_geq_max(self, values):
        array = np.array(values)
        lse = Tensor(array).logsumexp(axis=0).item()
        assert lse >= array.max() - 1e-12
        assert lse <= array.max() + np.log(len(values)) + 1e-12

    @given(st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False),
                    min_size=1, max_size=10))
    def test_sum_gradient_is_ones(self, values):
        tensor = Tensor(np.array(values), requires_grad=True)
        tensor.sum().backward()
        np.testing.assert_allclose(tensor.grad, np.ones(len(values)))

    @given(st.lists(st.floats(min_value=-3, max_value=3, allow_nan=False),
                    min_size=2, max_size=8),
           st.lists(st.floats(min_value=-3, max_value=3, allow_nan=False),
                    min_size=2, max_size=8))
    def test_add_commutes(self, left, right):
        size = min(len(left), len(right))
        a = Tensor(np.array(left[:size]))
        b = Tensor(np.array(right[:size]))
        np.testing.assert_allclose((a + b).numpy(), (b + a).numpy())


class TestCRFProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=3))
    def test_distribution_normalises(self, seed, length):
        rng = np.random.default_rng(seed)
        crf = LinearChainCRF(2, rng)
        emissions = Tensor(rng.normal(size=(length, 2)))
        total = 0.0
        for path_id in range(2 ** length):
            path = [(path_id >> i) & 1 for i in range(length)]
            total += np.exp(-crf.nll(emissions, path).item())
        assert total == pytest.approx(1.0, abs=1e-8)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.lists(st.integers(min_value=0, max_value=2), min_size=1,
                    max_size=4))
    def test_fuzzy_never_exceeds_strict(self, seed, labels):
        rng = np.random.default_rng(seed)
        crf = LinearChainCRF(3, rng)
        emissions = Tensor(rng.normal(size=(len(labels), 3)))
        strict = crf.nll(emissions, labels).item()
        allowed = [[label, (label + 1) % 3] for label in labels]
        fuzzy = crf.fuzzy_nll(emissions, allowed).item()
        assert fuzzy <= strict + 1e-9
        assert fuzzy >= -1e-9

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=5))
    def test_viterbi_path_is_argmax(self, seed, length):
        """Viterbi beats (or ties) any random path's score."""
        rng = np.random.default_rng(seed)
        crf = LinearChainCRF(2, rng)
        emissions = rng.normal(size=(length, 2))
        best = crf.decode(emissions)
        best_nll = crf.nll(Tensor(emissions), best).item()
        for path_id in range(2 ** length):
            path = [(path_id >> i) & 1 for i in range(length)]
            assert best_nll <= crf.nll(Tensor(emissions), path).item() + 1e-9


class TestSegmentationProperties:
    LEXICON = {("a",): {"X"}, ("b",): {"Y"}, ("a", "b"): {"Z"},
               ("c", "c"): {"X"}}

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=0,
                    max_size=10))
    def test_coverage_bounds(self, tokens):
        segmenter = MaxMatchSegmenter(self.LEXICON)
        result = segmenter.segment(tokens)
        assert 0 <= result.covered <= len(tokens)
        labels = result.iob_labels(len(tokens))
        assert len(labels) == len(tokens)
        inside = sum(1 for label in labels if label != "O")
        assert inside == result.covered

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1,
                    max_size=10))
    def test_perfect_match_implies_full_cover(self, tokens):
        segmenter = MaxMatchSegmenter(self.LEXICON)
        if segmenter.perfectly_matched(tokens):
            assert segmenter.segment(tokens).covered == len(tokens)

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=0,
                    max_size=10))
    def test_segments_disjoint_and_sorted(self, tokens):
        segmenter = MaxMatchSegmenter(self.LEXICON)
        result = segmenter.segment(tokens)
        previous_stop = 0
        for segment in result.segments:
            assert segment.start >= previous_stop
            assert segment.stop <= len(tokens)
            previous_stop = segment.stop
