"""The serving layer: endpoints, caching, metrics, and read-only safety."""

import pytest

from repro import build_alicoco, TINY
from repro.errors import (
    ConfigError,
    DataError,
    FrozenStoreError,
    NodeNotFoundError,
    RelationError,
    ReproError,
    error_by_name,
)
from repro.kg import query as kgq
from repro.matching.bm25 import BM25Index
from repro.serving import AliCoCoService, BatchResult, LRUCache, ServiceConfig
from repro.utils.timing import LatencyReservoir, quantile


@pytest.fixture(scope="module")
def built():
    return build_alicoco(TINY)


@pytest.fixture(scope="module")
def service(built):
    return AliCoCoService.from_build(built)


class TestEndpoints:
    def test_items_for_concept_matches_query_layer(self, built, service):
        for spec in built.concepts[:10]:
            concept_id = built.concept_ids[spec.text]
            expected = kgq.items_for_concept(built.store, concept_id, top_k=5)
            expected_ids = [item.id for item in expected]
            served = service.items_for_concept(concept_id, top_k=5)
            served_ids = [item_id for item_id, _ in served]
            assert served_ids == expected_ids

    def test_items_ranked_by_weight(self, built, service):
        for spec in built.concepts:
            concept_id = built.concept_ids[spec.text]
            weights = [w for _, w in service.items_for_concept(concept_id)]
            assert weights == sorted(weights, reverse=True)
            if len(weights) >= 3:
                return
        pytest.fail("no concept with enough items at TINY scale")

    def test_concepts_for_item_matches_query_layer(self, built, service):
        item_id = built.item_ids[0]
        expected = [c.id for c in kgq.concepts_for_item(built.store, item_id)]
        assert list(service.concepts_for_item(item_id)) == expected

    def test_interpretation_matches_query_layer(self, built, service):
        concept_id = built.concept_ids[built.concepts[0].text]
        expected = [p.id for p in kgq.interpretation(built.store, concept_id)]
        assert list(service.interpretation(concept_id)) == expected

    def test_hypernym_expansion(self, built, service):
        for (surface, domain), primitive_id in built.primitive_ids.items():
            nodes = kgq.hypernyms(built.store, primitive_id, transitive=True)
            expected = [p.id for p in nodes]
            if expected:
                served = service.hypernyms(primitive_id, transitive=True)
                assert list(served) == expected
                return
        pytest.fail("no primitive with hypernyms at TINY scale")

    def test_search_finds_concept_by_own_text(self, built, service):
        spec = built.concepts[0]
        results = service.search(spec.text)
        assert results[0][0] == built.concept_ids[spec.text]

    def test_search_k_limits_results(self, built, service):
        spec = built.concepts[0]
        assert len(service.search(spec.text, k=2)) <= 2
        with pytest.raises(ConfigError):
            service.search(spec.text, k=0)

    def test_search_empty_text_returns_nothing(self, service):
        assert service.search("   ") == ()

    def test_batch_dispatches_in_order(self, built, service):
        spec = built.concepts[0]
        concept_id = built.concept_ids[spec.text]
        requests = [
            ("search", spec.text),
            ("items_for_concept", concept_id, 3),
            ("interpretation", concept_id),
        ]
        results = service.batch(requests)
        assert len(results) == 3
        assert results[0] == service.search(spec.text)
        assert results[1] == service.items_for_concept(concept_id, 3)

    def test_batch_unknown_endpoint_rejected(self, service):
        with pytest.raises(ConfigError, match="unknown endpoint"):
            service.batch([("teleport", "ec_0")])

    def test_unknown_id_raises(self, service):
        with pytest.raises(NodeNotFoundError):
            service.items_for_concept("ec_999999")

    def test_wrong_layer_id_raises(self, built, service):
        item_id = built.item_ids[0]
        with pytest.raises(RelationError, match="layer"):
            service.items_for_concept(item_id)

    def test_non_positive_top_k_rejected(self, built, service):
        # Regression: top_k=-1 used to slice relations[:-1], silently
        # dropping the *last* item instead of rejecting the request.
        concept_id = built.concept_ids[built.concepts[0].text]
        for bad in (0, -1):
            with pytest.raises(ConfigError, match="top_k"):
                service.items_for_concept(concept_id, top_k=bad)

    def test_search_cache_key_is_token_tuple(self, built):
        # Regression: "a  b" and "a b" tokenise identically but used to
        # occupy separate LRU entries (the key was the raw text).
        service = AliCoCoService.from_build(built)
        spec = built.concepts[0]
        spaced = "  " + "   ".join(spec.text.split()) + " "
        assert service.search(spec.text) == service.search(spaced)
        stats = service.stats().endpoint("search")
        assert stats.cache_misses == 1
        assert stats.cache_hits == 1


class TestBatchEnvelope:
    def test_envelope_preserves_completed_work(self, built):
        """A mid-batch failure yields an envelope, not a lost batch."""
        service = AliCoCoService.from_build(built)
        spec = built.concepts[0]
        concept_id = built.concept_ids[spec.text]
        requests = [
            ("search", spec.text),
            ("items_for_concept", "ec_999999"),  # fails mid-batch
            ("items_for_concept", concept_id, 3),  # still answered
        ]
        results = service.batch(requests, on_error="envelope")
        assert [result.ok for result in results] == [True, False, True]
        assert results[0].value == service.search(spec.text)
        assert results[1].error_type == "NodeNotFoundError"
        assert "ec_999999" in results[1].error_message
        assert results[2].value == service.items_for_concept(concept_id, 3)

    def test_envelope_order_matches_requests(self, built):
        service = AliCoCoService.from_build(built)
        spec = built.concepts[0]
        requests = [
            ("teleport", "x"),
            ("search", spec.text),
            ("hypernyms", "ec_0"),  # wrong layer
        ]
        results = service.batch(requests, on_error="envelope")
        assert [result.error_type for result in results] == [
            "ConfigError",
            None,
            "RelationError",
        ]

    def test_unwrap_reraises_original_type(self, built):
        service = AliCoCoService.from_build(built)
        (result,) = service.batch(
            [("items_for_concept", "ec_999999")], on_error="envelope"
        )
        with pytest.raises(NodeNotFoundError):
            result.unwrap()
        ok = BatchResult(ok=True, value=42)
        assert ok.unwrap() == 42
        foreign = BatchResult(ok=False, error_type="TypeError", error_message="boom")
        with pytest.raises(ReproError, match="TypeError: boom"):
            foreign.unwrap()

    def test_error_by_name_walks_hierarchy(self):
        assert error_by_name("NodeNotFoundError") is NodeNotFoundError
        assert error_by_name("ConfigError") is ConfigError
        assert error_by_name("KeyError") is None

    def test_raise_mode_is_default_and_unchanged(self, built, service):
        with pytest.raises(NodeNotFoundError):
            service.batch([("items_for_concept", "ec_999999")])
        with pytest.raises(ConfigError, match="on_error"):
            service.batch([], on_error="ignore")

    def test_envelope_requests_are_metered(self, built):
        service = AliCoCoService.from_build(built)
        spec = built.concepts[0]
        service.batch(
            [("search", spec.text), ("items_for_concept", "ec_999999")],
            on_error="envelope",
        )
        stats = service.stats()
        assert stats.endpoint("search").calls == 1
        errors = stats.endpoint("items_for_concept").errors
        assert errors == (("NodeNotFoundError", 1),)
        assert stats.total_errors == 1


class TestErrorCounters:
    def test_errors_grouped_by_exception_type(self, built):
        service = AliCoCoService.from_build(built)
        concept_id = built.concept_ids[built.concepts[0].text]
        for _ in range(2):
            with pytest.raises(NodeNotFoundError):
                service.items_for_concept("ec_999999")
        with pytest.raises(ConfigError):
            service.items_for_concept(concept_id, top_k=0)
        stats = service.stats().endpoint("items_for_concept")
        assert stats.errors == (("ConfigError", 1), ("NodeNotFoundError", 2))
        assert stats.error_total == 3
        assert stats.calls == 0  # failures are not answers

    def test_error_counters_in_report(self, built):
        service = AliCoCoService.from_build(built)
        with pytest.raises(NodeNotFoundError):
            service.concepts_for_item("item_999999999")
        table = service.stats().format_table()
        assert "errors" in table
        assert "NodeNotFoundError x1" in table

    def test_format_table_aligns_long_endpoint_names(self, built):
        """Regression: ``items_for_concept_reranked`` (25 chars) used to
        overflow the fixed 20-character endpoint column and shear every
        numeric column after it out of alignment."""
        service = AliCoCoService.from_build(built)
        table = service.stats().format_table()
        lines = table.splitlines()
        header = next(line for line in lines if "endpoint" in line)
        rows = [
            line
            for line in lines
            if any(line.strip().startswith(name) for name in service.endpoints)
        ]
        assert len(rows) == len(service.endpoints)
        calls_column = header.index("calls")
        for row in rows:
            # The endpoint cell must end (and the calls cell start) at
            # the same offset on every row, longest name included.
            assert len(row) >= calls_column
            name = row.strip().split()[0]
            assert row[2 : 2 + len(name)] == name
            cell = row[2:calls_column]
            assert cell.rstrip() == name  # nothing bleeds past the column


class TestCachingAndStats:
    def test_repeat_queries_hit_the_cache(self, built):
        service = AliCoCoService.from_build(built)
        spec = built.concepts[0]
        first = service.search(spec.text)
        second = service.search(spec.text)
        assert first == second
        stats = service.stats().endpoint("search")
        assert stats.calls == 2
        assert stats.cache_hits == 1
        assert stats.cache_misses == 1
        assert stats.hit_rate == 0.5

    def test_stats_report_totals_and_format(self, built):
        service = AliCoCoService.from_build(built)
        concept_id = built.concept_ids[built.concepts[0].text]
        service.items_for_concept(concept_id)
        stats = service.stats()
        assert stats.nodes == len(built.store)
        assert stats.total_calls == 1
        assert "items_for_concept" in stats.format_table()
        with pytest.raises(KeyError):
            stats.endpoint("nonexistent")

    def test_cache_disabled_still_serves(self, built):
        service = AliCoCoService.from_build(
            built, config=ServiceConfig(cache_capacity=0)
        )
        spec = built.concepts[0]
        assert service.search(spec.text) == service.search(spec.text)
        stats = service.stats().endpoint("search")
        assert stats.cache_hits == 0
        assert stats.cache_misses == 2

    def test_store_is_frozen_by_serving(self, built):
        service = AliCoCoService.from_build(built)
        with pytest.raises(FrozenStoreError):
            service.store.create_item("contraband")

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            ServiceConfig(cache_capacity=-1)
        with pytest.raises(ConfigError):
            ServiceConfig(search_top_k=0)
        with pytest.raises(ConfigError):
            ServiceConfig(reservoir_capacity=0)

    def test_empty_store_serves_no_search_results(self):
        from repro.kg.store import AliCoCoStore

        service = AliCoCoService(AliCoCoStore())
        assert service.search("anything") == ()


class TestLRUCache:
    def test_eviction_order_is_least_recently_used(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        cache.put("c", 3)  # evicts "b"
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_counters(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5

    def test_cached_none_is_a_hit(self):
        cache = LRUCache(capacity=2)
        cache.put("k", None)
        sentinel = object()
        assert cache.get("k", sentinel) is None
        assert cache.hits == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            LRUCache(capacity=0)

    def test_clear_keeps_counters(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class TestLatencyReservoir:
    def test_quantiles_on_known_data(self):
        reservoir = LatencyReservoir(capacity=100)
        for value in range(1, 101):
            reservoir.record(value / 1000.0)
        assert reservoir.quantile(0.0) == pytest.approx(0.001)
        assert reservoir.quantile(1.0) == pytest.approx(0.100)
        assert reservoir.quantile(0.5) == pytest.approx(0.0505)

    def test_capacity_bounds_memory_not_count(self):
        reservoir = LatencyReservoir(capacity=8, seed=1)
        for value in range(1000):
            reservoir.record(float(value))
        assert reservoir.count == 1000
        assert len(reservoir._samples) == 8

    def test_reservoir_is_deterministic(self):
        def fill(seed):
            reservoir = LatencyReservoir(capacity=4, seed=seed)
            for value in range(100):
                reservoir.record(float(value))
            return reservoir._samples

        assert fill(3) == fill(3)

    def test_percentiles_ms_shape(self):
        reservoir = LatencyReservoir()
        reservoir.record(0.002)
        summary = reservoir.percentiles_ms()
        assert set(summary) == {"p50", "p95", "p99"}
        assert summary["p50"] == pytest.approx(2.0)

    def test_quantile_validation(self):
        assert quantile([], 0.5) == 0.0
        assert quantile([3.0], 0.99) == 3.0
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestBM25State:
    def test_malformed_state_rejected(self):
        with pytest.raises(DataError, match="malformed BM25"):
            BM25Index.from_state({"k1": 1.5})

    def test_state_round_trip_scores_identically(self):
        documents = {
            "d1": ["red", "dress"],
            "d2": ["red", "shoes"],
            "d3": ["winter", "coat"],
        }
        fitted = BM25Index().fit(documents)
        rehydrated = BM25Index.from_state(fitted.to_state())
        for query in (["red"], ["red", "dress"], ["winter", "coat"]):
            assert rehydrated.top_k(query, 3) == fitted.top_k(query, 3)
