"""Model-backed serving: tag/rerank endpoints, bundles, inference guards.

Covers the online half of Sections 5.3 and 6: a service given a trained
:class:`ConceptTagger` and a neural matcher answers ``tag`` and the
``*_reranked`` endpoints; its snapshot carries the trained weights as a
model bundle; a warm-started service reproduces the original's outputs
bit-for-bit; and the inference-mode guards turn misuse (unfitted models,
training a live served module) into typed errors.
"""

import threading

import numpy as np
import pytest

from repro import build_alicoco, TINY
from repro.concepts import ConceptTagger
from repro.errors import ConfigError, DataError, NotFittedError
from repro.matching import DSSMMatcher, train_matcher
from repro.matching.base import matching_vocab
from repro.matching.dataset import pair_from_texts
from repro.kg.relations import RelationKind
from repro.nlp.pos import PosTagger
from repro.nlp.vocab import Vocab
from repro.serving import (
    AliCoCoService,
    RERANKER_KIND,
    RERANKER_MODEL,
    ServiceConfig,
    TAGGER_KIND,
    TAGGER_MODEL,
    TagSpan,
    ensure_inference_mode,
    prepare_serving_module,
    restore_serving_module,
)
from repro.serving.models import model_bundle_state

N_THREADS = 6


@pytest.fixture(scope="module")
def built():
    return build_alicoco(TINY)


def _make_tagger(built, seed=1):
    sentences = [list(spec.tokens) for spec in built.concepts]
    vocab = Vocab.from_corpus(sentences)
    pos = PosTagger(built.lexicon.pos_lexicon())
    return ConceptTagger(
        vocab,
        built.lexicon,
        pos,
        use_fuzzy=False,
        word_dim=8,
        char_dim=4,
        hidden_dim=6,
        seed=seed,
    )


@pytest.fixture(scope="module")
def tagger(built):
    model = _make_tagger(built)
    model.fit(built.concepts, epochs=3, lr=0.02, seed=1)
    return model


def _training_pairs(built):
    """(concept text, item title) pairs labelled by graph adjacency."""
    pairs = []
    store = built.store
    for spec in built.concepts[:8]:
        concept_id = built.concept_ids[spec.text]
        linked = {
            relation.source
            for relation in store.in_relations(
                concept_id, RelationKind.ITEM_ECOMMERCE
            )
        }
        for index in range(6):
            item_id = built.item_ids[index]
            title_tokens = store.get(item_id).title.split()
            pairs.append(
                pair_from_texts(
                    spec.tokens, title_tokens, label=int(item_id in linked)
                )
            )
    return pairs


def _make_reranker(built, seed=1, hidden=8):
    vocab = matching_vocab(_training_pairs(built))
    return DSSMMatcher(vocab, dim=8, hidden=hidden, seed=seed)


@pytest.fixture(scope="module")
def reranker(built):
    model = _make_reranker(built)
    train_matcher(model, _training_pairs(built), epochs=2, lr=0.05, seed=0)
    return model


@pytest.fixture()
def service(built, tagger, reranker):
    return AliCoCoService.from_build(built, tagger=tagger, reranker=reranker)


def _model_requests(built):
    """A battery over the three model endpoints with valid arguments."""
    requests = []
    for spec in built.concepts[:4]:
        concept_id = built.concept_ids[spec.text]
        requests.append(("tag", spec.text))
        requests.append(("items_for_concept_reranked", concept_id, 5))
        requests.append(("search_reranked", spec.text, 5))
    return requests


class TestTag:
    def test_spans_match_tagger_prediction(self, built, service, tagger):
        spec = built.concepts[0]
        spans = service.tag(spec.text)
        assert isinstance(spans, tuple)
        assert all(isinstance(span, TagSpan) for span in spans)
        labels = tagger.predict(list(spec.tokens))
        from repro.concepts.tagging import iob_spans

        expected = iob_spans(labels)
        assert [(s.start, s.stop, s.domain) for s in spans] == expected
        tokens = spec.text.split()
        for span in spans:
            assert span.surface == " ".join(tokens[span.start:span.stop])

    def test_linked_spans_point_into_primitive_layer(self, built, service):
        linked = []
        for spec in built.concepts[:10]:
            for span in service.tag(spec.text):
                if span.primitive_id is not None:
                    linked.append(span)
        assert linked, "tagger linked no span at all across ten concepts"
        for span in linked:
            node = built.store.get(span.primitive_id)
            assert (node.name, node.domain) == (span.surface, span.domain)

    def test_unknown_surface_yields_unlinked_span(self, built, service):
        spans = service.tag("zzzunknownword " + built.concepts[0].text)
        for span in spans:
            if "zzzunknownword" in span.surface:
                assert span.primitive_id is None

    def test_results_are_cached(self, built, service):
        text = built.concepts[1].text
        first = service.tag(text)
        second = service.tag(text)
        assert first == second
        stats = service.stats().endpoint("tag")
        assert stats.cache_hits >= 1

    def test_empty_text_is_a_data_error(self, service):
        with pytest.raises(DataError):
            service.tag("   ")

    def test_without_tagger_raises_config_error(self, built):
        bare = AliCoCoService.from_build(built)
        with pytest.raises(ConfigError, match="concept-tagger"):
            bare.tag("anything")
        stats = bare.stats().endpoint("tag")
        assert stats.errors == (("ConfigError", 1),)


class TestReranked:
    def test_items_rescored_within_graph_candidates(self, built, service):
        spec = built.concepts[0]
        concept_id = built.concept_ids[spec.text]
        plain = service.items_for_concept(concept_id)
        reranked = service.items_for_concept_reranked(concept_id)
        assert {item_id for item_id, _ in reranked} <= {
            item_id for item_id, _ in plain
        }
        scores = [score for _, score in reranked]
        assert scores == sorted(scores, reverse=True)
        assert all(0.0 <= score <= 1.0 for score in scores)

    def test_top_k_truncates(self, built, service):
        concept_id = built.concept_ids[built.concepts[0].text]
        full = service.items_for_concept_reranked(concept_id)
        if len(full) > 1:
            assert service.items_for_concept_reranked(concept_id, 1) == full[:1]

    def test_pool_bounded_by_rerank_pool_k(self, built, tagger, reranker):
        small = AliCoCoService.from_build(
            built,
            tagger=tagger,
            reranker=reranker,
            config=ServiceConfig(rerank_pool_k=2),
        )
        concept_id = built.concept_ids[built.concepts[0].text]
        assert len(small.items_for_concept_reranked(concept_id)) <= 2
        assert len(small.search_reranked(built.concepts[0].text, 10)) <= 2

    def test_search_rescored_within_bm25_pool(self, built, service):
        text = built.concepts[0].text
        pool = service.search(text, k=service.config.rerank_pool_k)
        reranked = service.search_reranked(text)
        assert {cid for cid, _ in reranked} <= {cid for cid, _ in pool}
        scores = [score for _, score in reranked]
        assert scores == sorted(scores, reverse=True)
        assert len(reranked) <= service.config.search_top_k

    def test_bad_k_rejected(self, built, service):
        concept_id = built.concept_ids[built.concepts[0].text]
        with pytest.raises(ConfigError, match="top_k"):
            service.items_for_concept_reranked(concept_id, 0)
        with pytest.raises(ConfigError, match="k must be positive"):
            service.search_reranked("x", -1)

    def test_without_reranker_raises_config_error(self, built):
        bare = AliCoCoService.from_build(built)
        concept_id = built.concept_ids[built.concepts[0].text]
        with pytest.raises(ConfigError, match="reranker"):
            bare.items_for_concept_reranked(concept_id)
        with pytest.raises(ConfigError, match="reranker"):
            bare.search_reranked("x")

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError, match="rerank_pool_k"):
            ServiceConfig(rerank_pool_k=0)


class TestBatchAndParity:
    def test_model_endpoints_listed_and_batchable(self, built, service):
        for endpoint in ("tag", "items_for_concept_reranked", "search_reranked"):
            assert endpoint in service.endpoints
        assert service.models == (TAGGER_MODEL, RERANKER_MODEL)
        requests = _model_requests(built)
        results = service.batch(requests)
        assert len(results) == len(requests)

    def test_threaded_batch_matches_serial(self, built, service):
        requests = _model_requests(built)
        serial = service.batch(requests)
        parallel = service.batch(requests, workers=4)
        assert parallel == serial

    def test_threaded_hammer_is_deterministic(self, built, service):
        """Concurrent model inference returns exactly the serial answers."""
        requests = _model_requests(built)
        expected = service.batch(requests)
        errors = []
        barrier = threading.Barrier(N_THREADS)

        def hammer():
            try:
                barrier.wait()
                for _ in range(3):
                    assert service.batch(requests) == expected
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = service.stats()
        assert stats.total_errors == 0
        for endpoint in ("tag", "items_for_concept_reranked", "search_reranked"):
            endpoint_stats = stats.endpoint(endpoint)
            observed = endpoint_stats.cache_hits + endpoint_stats.cache_misses
            assert observed == endpoint_stats.calls


class TestSnapshotBundle:
    def test_warm_start_restores_bit_identical_outputs(
        self, built, service, tmp_path
    ):
        path = tmp_path / "net.snapshot.jsonl"
        service.save_snapshot(path)
        restored = AliCoCoService.from_snapshot(
            path,
            tagger=_make_tagger(built, seed=99),
            reranker=_make_reranker(built, seed=99),
        )
        assert restored.models == (TAGGER_MODEL, RERANKER_MODEL)
        for spec in built.concepts[:4]:
            concept_id = built.concept_ids[spec.text]
            assert restored.tag(spec.text) == service.tag(spec.text)
            # Exact float equality: the bundle round-trips float64
            # weights bit-for-bit and inference is deterministic.
            reranked = service.items_for_concept_reranked(concept_id)
            assert restored.items_for_concept_reranked(concept_id) == reranked
            assert restored.search_reranked(spec.text) == service.search_reranked(
                spec.text
            )

    def test_restored_weights_equal_original(self, built, service, tmp_path):
        path = tmp_path / "net.snapshot.jsonl"
        service.save_snapshot(path)
        fresh = _make_reranker(built, seed=123)
        restored = AliCoCoService.from_snapshot(path, reranker=fresh)
        original_state = service._reranker.state_dict()
        for name, array in restored._reranker.state_dict().items():
            np.testing.assert_array_equal(array, original_state[name])

    def test_missing_bundle_is_loud(self, built, tmp_path):
        bare = AliCoCoService.from_build(built)
        path = tmp_path / "bare.snapshot.jsonl"
        bare.save_snapshot(path)
        with pytest.raises(DataError, match="no 'concept-tagger' model bundle"):
            AliCoCoService.from_snapshot(path, tagger=_make_tagger(built))

    def test_unrequested_bundles_are_ignored(self, built, service, tmp_path):
        path = tmp_path / "net.snapshot.jsonl"
        service.save_snapshot(path)
        modelless = AliCoCoService.from_snapshot(path)
        assert modelless.models == ()
        with pytest.raises(ConfigError):
            modelless.tag("anything")

    def test_wrong_architecture_is_rejected(self, built, service, tmp_path):
        path = tmp_path / "net.snapshot.jsonl"
        service.save_snapshot(path)
        wrong = _make_reranker(built, hidden=5)
        with pytest.raises(DataError, match="fingerprint"):
            AliCoCoService.from_snapshot(path, reranker=wrong)

    def test_wrong_kind_is_rejected(self, built, reranker):
        bundle = model_bundle_state(reranker, RERANKER_KIND)
        with pytest.raises(DataError, match="expected 'concept-tagger'"):
            restore_serving_module(
                _make_reranker(built), bundle, TAGGER_KIND, TAGGER_MODEL
            )


class TestInferenceGuards:
    def test_unfitted_model_is_rejected_at_construction(self, built):
        with pytest.raises(NotFittedError):
            AliCoCoService.from_build(built, tagger=_make_tagger(built))
        with pytest.raises(NotFittedError):
            prepare_serving_module(_make_reranker(built), RERANKER_MODEL)

    def test_training_a_live_served_module_is_loud(self, built, service):
        tagger = service._tagger
        tagger.train()
        try:
            with pytest.raises(ConfigError, match="training mode"):
                service.tag("guard check text")
        finally:
            tagger.eval()

    def test_ensure_inference_mode_accepts_eval(self, reranker):
        prepared = prepare_serving_module(reranker, RERANKER_MODEL)
        ensure_inference_mode(prepared, RERANKER_MODEL)


def _retrieval_battery(built, service):
    """search_reranked + items_for_concept_reranked over a few concepts."""
    answers = []
    for spec in built.concepts[:6]:
        concept_id = built.concept_ids[spec.text]
        answers.append(service.search_reranked(spec.text, 5))
        answers.append(service.items_for_concept_reranked(concept_id, 5))
    return answers


class TestRetrieverModes:
    """The pluggable first stage behind the reranked endpoints."""

    @pytest.mark.parametrize(
        "retriever, backend",
        [
            ("dense", "bruteforce"),
            ("dense", "ivf"),
            ("dense", "hnsw"),
            ("hybrid", "ivf"),
        ],
    )
    def test_every_mode_serves_the_reranked_endpoints(
        self, built, reranker, retriever, backend
    ):
        service = AliCoCoService.from_build(
            built,
            reranker=reranker,
            config=ServiceConfig(retriever=retriever, dense_backend=backend),
        )
        for ranked in _retrieval_battery(built, service):
            assert ranked, "a reranked endpoint returned an empty pool"
            for node_id, score in ranked:
                assert service.store.get(node_id) is not None
                assert 0.0 <= score <= 1.0
            scores = [score for _, score in ranked]
            assert scores == sorted(scores, reverse=True)

    def test_hybrid_snapshot_warm_start_is_bit_identical(
        self, tmp_path, built, reranker
    ):
        config = ServiceConfig(retriever="hybrid", dense_backend="ivf")
        fresh = AliCoCoService.from_build(
            built, reranker=reranker, config=config
        )
        path = tmp_path / "hybrid.snapshot.jsonl"
        fresh.save_snapshot(path)
        warm = AliCoCoService.from_snapshot(
            path,
            reranker=_make_reranker(built, seed=99),
            config=config,
        )
        assert _retrieval_battery(built, warm) == _retrieval_battery(
            built, fresh
        )
        # The fitted index state itself must survive the round trip —
        # warm start reuses it instead of re-running k-means.
        for name, index in fresh._dense_indexes.items():
            assert warm._dense_indexes[name].to_state() == index.to_state()

    def test_warm_start_refits_when_backend_config_changes(
        self, tmp_path, built, reranker
    ):
        fresh = AliCoCoService.from_build(
            built,
            reranker=reranker,
            config=ServiceConfig(retriever="dense", dense_backend="ivf"),
        )
        path = tmp_path / "dense.snapshot.jsonl"
        fresh.save_snapshot(path)
        # Restart asking for a different dense backend: the persisted IVF
        # state must not be forced onto it — the service refits instead.
        warm = AliCoCoService.from_snapshot(
            path,
            reranker=_make_reranker(built, seed=99),
            config=ServiceConfig(retriever="dense", dense_backend="bruteforce"),
        )
        for index in warm._dense_indexes.values():
            assert index is None or index.backend == "bruteforce"
        for ranked in _retrieval_battery(built, warm):
            assert ranked

    def test_dense_mode_without_vector_capable_matcher_is_loud(self, built):
        with pytest.raises(ConfigError, match="vector-capable"):
            AliCoCoService.from_build(
                built, config=ServiceConfig(retriever="dense")
            )

    def test_config_validation_rejects_bad_knobs(self):
        with pytest.raises(ConfigError, match="retriever"):
            ServiceConfig(retriever="bogus")
        with pytest.raises(ConfigError, match="dense_backend"):
            ServiceConfig(retriever="dense", dense_backend="faiss")
        with pytest.raises(ConfigError, match="rrf_k"):
            ServiceConfig(retriever="hybrid", rrf_k=0)
        with pytest.raises(ConfigError, match="weights"):
            ServiceConfig(retriever="hybrid", hybrid_weights=(1.0, 2.0, 3.0))
