"""Tests binding the Table 1 pattern registry to the world generators."""

import numpy as np
import pytest

from repro.concepts.patterns import format_table1, PATTERNS, pattern_by_name
from repro.synth import build_lexicon, World


class TestPatternRegistry:
    def test_lookup(self):
        assert pattern_by_name("gift").template.startswith("[class: Time")
        with pytest.raises(KeyError):
            pattern_by_name("teleportation")

    def test_generators_exist_on_world(self):
        world = World(build_lexicon(seed=7), seed=7)
        for pattern in PATTERNS:
            assert hasattr(world, pattern.generator), pattern.generator

    def test_world_emits_every_pattern_name(self):
        world = World(build_lexicon(seed=7), seed=7)
        rng = np.random.default_rng(0)
        emitted = {spec.pattern
                   for spec in world.sample_good_concepts(rng, 150)}
        registered = {pattern.name for pattern in PATTERNS}
        assert emitted <= registered | {"nonsense"}
        # Most patterns show up in a large enough sample.
        assert len(emitted & registered) >= 6

    def test_good_examples_judged_good_by_world(self):
        """The registry's good/bad examples agree with world ground truth
        for the patterns whose parts we can reconstruct."""
        world = World(build_lexicon(seed=7), seed=7)
        from repro.synth.world import ConceptPart
        ok, _ = world.compatible((ConceptPart("outdoor", "Location"),
                                  ConceptPart("barbecue", "Event")))
        assert ok
        bad, _ = world.compatible((ConceptPart("classroom", "Location"),
                                   ConceptPart("barbecue", "Event")))
        assert not bad

    def test_format_table1(self):
        text = format_table1()
        assert "Good Concept" in text
        assert "warm hat for traveling" in text
        assert len(text.splitlines()) == 2 + len(PATTERNS)
