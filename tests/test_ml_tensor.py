"""Unit tests for the autograd Tensor: ops, broadcasting, backward."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.ml.gradcheck import check_gradients
from repro.ml.tensor import Tensor, concat, no_grad, stack


def leaf(data):
    return Tensor(np.asarray(data, dtype=float), requires_grad=True)


class TestForward:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3))
        out = a + b
        np.testing.assert_allclose(out.data, np.ones((2, 3)) + np.arange(3))

    def test_matmul_2d(self):
        a = Tensor(np.arange(6).reshape(2, 3))
        b = Tensor(np.arange(12).reshape(3, 4))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)

    def test_scalar_arithmetic(self):
        a = Tensor([1.0, 2.0])
        np.testing.assert_allclose((2 * a + 1).data, [3.0, 5.0])
        np.testing.assert_allclose((1 - a).data, [0.0, -1.0])
        np.testing.assert_allclose((a / 2).data, [0.5, 1.0])
        np.testing.assert_allclose((2 / a).data, [2.0, 1.0])

    def test_softmax_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 5)))
        probs = x.softmax(axis=1)
        np.testing.assert_allclose(probs.data.sum(axis=1), np.ones(4), atol=1e-12)

    def test_logsumexp_matches_naive(self):
        x = np.array([[1.0, 2.0, 3.0], [-1.0, 0.0, 1.0]])
        out = Tensor(x).logsumexp(axis=1)
        np.testing.assert_allclose(out.data, np.log(np.exp(x).sum(axis=1)))

    def test_logsumexp_extreme_values_stable(self):
        x = Tensor(np.array([1000.0, 1000.0]))
        out = x.logsumexp(axis=0)
        assert np.isfinite(out.item())
        assert out.item() == pytest.approx(1000.0 + np.log(2.0))

    def test_backward_nonscalar_requires_grad_arg(self):
        x = leaf(np.ones(3))
        with pytest.raises(ShapeError):
            (x * 2).backward()

    def test_gather_rows(self):
        table = leaf(np.arange(12.0).reshape(4, 3))
        out = table.gather_rows(np.array([[0, 2], [3, 3]]))
        assert out.shape == (2, 2, 3)
        np.testing.assert_allclose(out.data[1, 0], [9.0, 10.0, 11.0])

    def test_gather_rows_requires_2d(self):
        with pytest.raises(ShapeError):
            leaf(np.arange(3.0)).gather_rows(np.array([0]))


class TestBackward:
    def test_add_mul_chain(self):
        a, b = leaf([1.0, 2.0]), leaf([3.0, 4.0])
        loss = ((a * b) + a).sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, [4.0, 5.0])
        np.testing.assert_allclose(b.grad, [1.0, 2.0])

    def test_broadcast_add_unbroadcasts_grad(self):
        a = leaf(np.zeros((2, 3)))
        b = leaf(np.zeros(3))
        ((a + b) * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full(3, 4.0))

    def test_matmul_grad_shapes(self):
        a = leaf(np.random.default_rng(1).normal(size=(2, 3)))
        b = leaf(np.random.default_rng(2).normal(size=(3, 4)))
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3, 4)

    def test_batched_matmul_with_shared_weight(self):
        x = leaf(np.random.default_rng(3).normal(size=(5, 4, 3)))
        w = leaf(np.random.default_rng(4).normal(size=(3, 2)))
        (x @ w).sum().backward()
        assert w.grad.shape == (3, 2)
        np.testing.assert_allclose(w.grad, x.data.reshape(-1, 3).T @ np.ones((20, 2)))

    def test_grad_accumulates_across_uses(self):
        a = leaf([2.0])
        (a + a + a).sum().backward()
        np.testing.assert_allclose(a.grad, [3.0])

    def test_gather_rows_accumulates_duplicate_ids(self):
        table = leaf(np.zeros((3, 2)))
        out = table.gather_rows(np.array([1, 1, 1]))
        out.sum().backward()
        np.testing.assert_allclose(table.grad[1], [3.0, 3.0])
        np.testing.assert_allclose(table.grad[0], [0.0, 0.0])

    def test_getitem_fancy_index_backward(self):
        x = leaf(np.arange(12.0).reshape(3, 4))
        out = x[np.array([0, 2]), np.array([1, 3])]
        out.sum().backward()
        expected = np.zeros((3, 4))
        expected[0, 1] = 1.0
        expected[2, 3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_max_splits_ties(self):
        x = leaf(np.array([[1.0, 1.0, 0.0]]))
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5, 0.0]])

    def test_no_grad_suppresses_graph(self):
        a = leaf([1.0])
        with no_grad():
            out = a * 2
        assert not out.requires_grad
        assert out._parents == ()


class TestGradCheck:
    """Finite-difference checks for each op family."""

    @pytest.mark.parametrize("op", [
        lambda x: (x * x).sum(),
        lambda x: (x / (x + 3.0)).sum(),
        lambda x: x.exp().sum(),
        lambda x: (x + 2.0).log().sum(),
        lambda x: x.tanh().sum(),
        lambda x: x.sigmoid().sum(),
        lambda x: x.relu().sum(),
        lambda x: (x ** 3).sum(),
        lambda x: x.mean(),
        lambda x: x.logsumexp(axis=0).sum(),
        lambda x: x.softmax(axis=1).max(axis=1).sum(),
        lambda x: x.reshape(6).sum(),
        lambda x: x.transpose().sum(),
    ])
    def test_unary_ops(self, op, rng):
        x = leaf(rng.normal(size=(2, 3)) + 0.1)
        assert check_gradients(lambda: op(x), [x])

    def test_matmul(self, rng):
        a = leaf(rng.normal(size=(2, 3)))
        b = leaf(rng.normal(size=(3, 2)))
        assert check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_vector(self, rng):
        a = leaf(rng.normal(size=(4, 3)))
        v = leaf(rng.normal(size=3))
        assert check_gradients(lambda: (a @ v).sum(), [a, v])

    def test_concat_and_stack(self, rng):
        a = leaf(rng.normal(size=(2, 2)))
        b = leaf(rng.normal(size=(2, 2)))
        assert check_gradients(lambda: concat([a, b], axis=1).sum(), [a, b])
        assert check_gradients(
            lambda: (stack([a, b], axis=0) ** 2).sum(), [a, b])

    def test_slicing(self, rng):
        x = leaf(rng.normal(size=(3, 4)))
        assert check_gradients(lambda: (x[:, 1:3] * 2.0).sum(), [x])

    def test_mixed_slice_array_index(self, rng):
        x = leaf(rng.normal(size=(2, 4, 3)))
        idx = np.array([3, 2, 1, 0])
        assert check_gradients(lambda: (x[:, idx, :] ** 2).sum(), [x])
