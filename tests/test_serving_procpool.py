"""Out-of-process shard workers: RPC framing, parity, crash recovery.

Contract under test: ``ClusterConfig(executor="process")`` answers every
endpoint **bit-identically** to the thread executor (and therefore to a
single ``AliCoCoService``) at 1, 2 and 4 shards — routed and scattered,
reranked and hybrid included — while actually escaping the GIL.  On top
of parity sit the lifecycle guarantees: a killed worker restarts from
its bootstrap snapshot plus the replayed delta log and answers
bit-identically again; past the bounded restart budget the shard
degrades to a typed ``ShardUnavailableError`` while healthy shards keep
serving; and a closed cluster leaves no child processes behind.
"""

import multiprocessing
import pickle

import pytest

from repro.errors import (
    ConfigError,
    DataError,
    NodeNotFoundError,
    OverloadedError,
    RelationError,
    ShardUnavailableError,
)
from repro.kg.ids import ECOMMERCE_PREFIX, PRIMITIVE_PREFIX
from repro.nlp.pos import PosTagger
from repro.nlp.vocab import Vocab
from repro.serving import (
    AliCoCoCluster,
    AliCoCoService,
    ClusterConfig,
    ServiceConfig,
    decode_frame,
    encode_frame,
    shard_sizes,
)
from repro.serving.rpc import (
    MAX_FRAME_BYTES,
    error_envelope,
    raise_remote,
)

from tests.conftest import make_trained_reranker

SHARD_COUNTS = (1, 2, 4)


# ------------------------------------------------------------- RPC framing
class TestRPCFraming:
    def test_roundtrip(self):
        payload = ("search_arm", (3, ("gift", "mother"), 10))
        assert decode_frame(encode_frame(payload)) == payload

    def test_short_frame_is_loud(self):
        with pytest.raises(DataError, match="too short"):
            decode_frame(b"AR")

    def test_bad_magic_is_loud(self):
        frame = bytearray(encode_frame("x"))
        frame[0:2] = b"ZZ"
        with pytest.raises(DataError, match="magic"):
            decode_frame(bytes(frame))

    def test_version_mismatch_is_loud(self):
        frame = bytearray(encode_frame("x"))
        frame[2] = 99
        with pytest.raises(DataError, match="version 99"):
            decode_frame(bytes(frame))

    def test_torn_payload_is_loud(self):
        frame = encode_frame({"a": 1})
        with pytest.raises(DataError, match="payload bytes"):
            decode_frame(frame[:-2])

    def test_absurd_length_is_refused_before_allocation(self):
        import struct

        header = struct.pack(">2sBBI", b"AR", 1, 0, MAX_FRAME_BYTES + 1)
        with pytest.raises(DataError, match="declares"):
            decode_frame(header)

    def test_error_envelope_reraises_original_type(self):
        envelope = error_envelope(NodeNotFoundError("node ec_9 not found"))
        ok, failure = envelope
        assert not ok
        with pytest.raises(NodeNotFoundError, match="ec_9"):
            raise_remote(failure)

    def test_overloaded_reason_survives_the_wire(self):
        envelope = error_envelope(OverloadedError("shed", reason="queue_full"))
        _, failure = pickle.loads(pickle.dumps(envelope))
        with pytest.raises(OverloadedError) as caught:
            raise_remote(failure)
        assert caught.value.reason == "queue_full"

    def test_unknown_error_degrades_to_repro_error(self):
        from repro.errors import ReproError

        _, failure = error_envelope(ValueError("worker-side bug"))
        with pytest.raises(ReproError, match="ValueError: worker-side bug"):
            raise_remote(failure)


# ------------------------------------------------------------ shared models
@pytest.fixture(scope="module")
def built(built_tiny):
    return built_tiny


@pytest.fixture(scope="module")
def reranker(built):
    return make_trained_reranker(built)


@pytest.fixture(scope="module")
def tagger(built):
    from repro.concepts.tagging import ConceptTagger

    sentences = [list(spec.tokens) for spec in built.concepts]
    model = ConceptTagger(
        Vocab.from_corpus(sentences),
        built.lexicon,
        PosTagger(built.lexicon.pos_lexicon()),
        use_fuzzy=False,
        word_dim=8,
        char_dim=4,
        hidden_dim=6,
        seed=1,
    )
    model.fit(built.concepts, epochs=3, lr=0.02, seed=1)
    return model


def _process_cluster(store, n_shards, **kwargs):
    kwargs.setdefault("config", ClusterConfig(n_shards=n_shards, executor="process"))
    return AliCoCoCluster(store, **kwargs)


# ---------------------------------------------------------------- parity
class TestProcessParity:
    """Bit-identity against a single service, all 8 endpoints."""

    @pytest.fixture(scope="class", params=SHARD_COUNTS)
    def pair(self, request, built, reranker, tagger):
        service = AliCoCoService(
            built.store, tagger=tagger, reranker=reranker
        )
        cluster = _process_cluster(
            built.store, request.param, tagger=tagger, reranker=reranker
        )
        yield cluster, service
        cluster.close()

    def test_routed_endpoints(self, pair, built):
        cluster, service = pair
        store = built.store
        concept_ids = [node.id for node in store.nodes(ECOMMERCE_PREFIX)][:8]
        for concept_id in concept_ids:
            assert cluster.items_for_concept(concept_id) == (
                service.items_for_concept(concept_id)
            )
            assert cluster.interpretation(concept_id) == (
                service.interpretation(concept_id)
            )
        for index in range(8):
            item_id = built.item_ids[index]
            assert cluster.concepts_for_item(item_id) == (
                service.concepts_for_item(item_id)
            )
        for node in list(store.nodes(PRIMITIVE_PREFIX))[:6]:
            assert cluster.hypernyms(node.id, True) == (
                service.hypernyms(node.id, True)
            )

    def test_scattered_endpoints(self, pair, built):
        cluster, service = pair
        for spec in built.concepts[:8]:
            assert cluster.search(spec.text) == service.search(spec.text)
            assert cluster.search_reranked(spec.text, 5) == (
                service.search_reranked(spec.text, 5)
            )
        concept_ids = [
            node.id for node in built.store.nodes(ECOMMERCE_PREFIX)
        ][:6]
        for concept_id in concept_ids:
            assert cluster.items_for_concept_reranked(concept_id, 5) == (
                service.items_for_concept_reranked(concept_id, 5)
            )

    def test_tag(self, pair, built):
        cluster, service = pair
        for spec in built.concepts[:6]:
            assert cluster.tag(spec.text) == service.tag(spec.text)

    def test_error_parity_across_the_process_boundary(self, pair):
        cluster, service = pair
        for call, error in (
            (lambda target: target.items_for_concept("ec_999999"),
             NodeNotFoundError),
            (lambda target: target.concepts_for_item("ec_0"), RelationError),
            (lambda target: target.search("gift", k=0), ConfigError),
        ):
            with pytest.raises(error) as served:
                call(service)
            with pytest.raises(error) as clustered:
                call(cluster)
            assert str(clustered.value) == str(served.value)

    def test_stats_report_workers(self, pair):
        cluster, _ = pair
        stats = cluster.stats()
        assert stats.executor == "process"
        assert stats.workers is not None
        assert stats.workers.all_alive
        assert len(stats.workers.workers) == cluster.n_shards
        assert all(worker.pid > 0 for worker in stats.workers.workers)
        # Worker-side shard stats travel back over RPC too.
        assert len(stats.shards) == cluster.n_shards
        table = stats.format_table()
        assert "worker shard0" in table
        assert "ownership imbalance" in table


class TestHybridProcessParity:
    def test_hybrid_retriever_bit_identical(self, built, reranker):
        config = ServiceConfig(retriever="hybrid")
        service = AliCoCoService(
            built.store, config=config, reranker=reranker
        )
        cluster = _process_cluster(
            built.store, 2, service_config=config, reranker=reranker
        )
        try:
            assert cluster.stats().executor == "process"
            for spec in built.concepts[:6]:
                assert cluster.search_reranked(spec.text, 5) == (
                    service.search_reranked(spec.text, 5)
                )
            concept_ids = [
                node.id for node in built.store.nodes(ECOMMERCE_PREFIX)
            ][:5]
            for concept_id in concept_ids:
                assert cluster.items_for_concept_reranked(concept_id, 5) == (
                    service.items_for_concept_reranked(concept_id, 5)
                )
        finally:
            cluster.close()


# ------------------------------------------------------------- generations
def _grow_round(store, tag):
    from repro.kg import Relation, RelationKind

    concept = store.create_ecommerce(f"fresh {tag} worker concept")
    item = store.create_item(f"fresh {tag} worker item title")
    primitive = next(iter(store.nodes(PRIMITIVE_PREFIX)))
    store.add_relation(Relation(RelationKind.INTERPRETED_BY, concept.id,
                                primitive.id, name=primitive.domain))
    store.add_relation(Relation(RelationKind.ITEM_ECOMMERCE, item.id,
                                concept.id, weight=0.9))
    return concept, item


class TestProcessPublish:
    def test_publish_ships_deltas_to_workers(self, built, reranker):
        from repro.kg import GenerationalStore

        source = GenerationalStore(built.store)
        reference = GenerationalStore(built.store)
        cluster = _process_cluster(source, 3, reranker=reranker)
        service = AliCoCoService(reference, reranker=reranker)
        try:
            for round_index in range(2):
                concept, item = _grow_round(source, f"p{round_index}")
                _grow_round(reference, f"p{round_index}")
                assert cluster.publish() == service.publish() == round_index + 1
                query = " ".join(source.get(concept.id).tokens)
                assert cluster.search(query) == service.search(query)
                assert cluster.items_for_concept(concept.id) == (
                    service.items_for_concept(concept.id)
                )
                assert cluster.concepts_for_item(item.id) == (
                    service.concepts_for_item(item.id)
                )
                assert cluster.search_reranked(query, 5) == (
                    service.search_reranked(query, 5)
                )
        finally:
            cluster.close()


# ------------------------------------------------------------ crash paths
def _kill_worker(cluster, shard):
    process = cluster.worker_pool.worker_process(shard)
    process.kill()
    process.join(timeout=10)


class TestCrashRecovery:
    def test_restart_after_kill_is_bit_identical(self, built, reranker):
        service = AliCoCoService(built.store, reranker=reranker)
        cluster = _process_cluster(built.store, 3, reranker=reranker)
        try:
            queries = [spec.text for spec in built.concepts[:4]]
            expected = [service.search_reranked(query, 5) for query in queries]
            assert [
                cluster.search_reranked(query, 5) for query in queries
            ] == expected
            for shard in range(cluster.n_shards):
                _kill_worker(cluster, shard)
            # Cached answers survive the crash; fresh computation drives
            # restarts — disable the cache's help by asking new queries.
            assert [
                cluster.search_reranked(query, 5) for query in queries
            ] == expected
            fresh = built.concepts[4].text
            assert cluster.search_reranked(fresh, 5) == (
                service.search_reranked(fresh, 5)
            )
            stats = cluster.stats()
            assert stats.workers.total_restarts >= 1
            assert stats.workers.all_alive
        finally:
            cluster.close()

    def test_replayed_deltas_survive_a_crash(self, built, reranker):
        from repro.kg import GenerationalStore

        source = GenerationalStore(built.store)
        reference = GenerationalStore(built.store)
        cluster = _process_cluster(source, 2, reranker=reranker)
        service = AliCoCoService(reference, reranker=reranker)
        try:
            concept, item = _grow_round(source, "crash")
            _grow_round(reference, "crash")
            assert cluster.publish() == service.publish() == 1
            for shard in range(cluster.n_shards):
                _kill_worker(cluster, shard)
            # The respawned workers replay the shipped delta over their
            # bootstrap snapshots — the published generation is intact.
            query = " ".join(source.get(concept.id).tokens)
            assert cluster.search(query) == service.search(query)
            assert cluster.items_for_concept(concept.id) == (
                service.items_for_concept(concept.id)
            )
            assert cluster.concepts_for_item(item.id) == (
                service.concepts_for_item(item.id)
            )
        finally:
            cluster.close()

    def test_exhausted_budget_degrades_typed(self, built):
        cluster = _process_cluster(
            built.store,
            2,
            config=ClusterConfig(
                n_shards=2, executor="process", max_worker_restarts=0
            ),
        )
        try:
            victim = 1
            survivor_ids = [
                node.id
                for node in built.store.nodes(ECOMMERCE_PREFIX)
                if cluster._shard_for(node.id) == 0
            ]
            victim_ids = [
                node.id
                for node in built.store.nodes(ECOMMERCE_PREFIX)
                if cluster._shard_for(node.id) == victim
            ]
            assert survivor_ids and victim_ids
            _kill_worker(cluster, victim)
            with pytest.raises(ShardUnavailableError) as caught:
                cluster.items_for_concept(victim_ids[0])
            assert caught.value.shard == victim
            # The lost shard stays typed-unavailable...
            with pytest.raises(ShardUnavailableError):
                cluster.items_for_concept(victim_ids[0])
            assert not cluster.worker_pool.alive(victim)
            # ...while the healthy shard keeps answering routed queries
            # (an empty answer is a legitimate answer — no exception is
            # the contract here).
            for survivor_id in survivor_ids:
                cluster.items_for_concept(survivor_id)
                cluster.interpretation(survivor_id)
            # Scatters touching the dead shard degrade typed, too.
            with pytest.raises(ShardUnavailableError):
                cluster.search("gift basket for mother")
            stats = cluster.stats()
            assert stats.workers is not None
            assert not stats.workers.all_alive
            assert "DOWN" in stats.format_table()
        finally:
            cluster.close()

    def test_ping_and_health(self, built):
        cluster = _process_cluster(built.store, 2)
        try:
            pongs = cluster.worker_pool.ping_all()
            assert [pong[0] for pong in pongs] == ["pong", "pong"]
            assert all(pong[1] > 0 for pong in pongs)
        finally:
            cluster.close()


# ------------------------------------------------------------- snapshots
class TestProcessSnapshot:
    def test_process_cluster_snapshot_roundtrip(
        self, built, reranker, tmp_path
    ):
        config = ServiceConfig(retriever="hybrid")
        cluster = _process_cluster(
            built.store, 2, service_config=config, reranker=reranker
        )
        query = built.concepts[0].text
        try:
            expected = cluster.search_reranked(query, 5)
            path = tmp_path / "proc-cluster.snapshot.jsonl"
            assert cluster.save_snapshot(path) > 0
        finally:
            cluster.close()
        # A snapshot written by a process cluster warm-starts a thread
        # cluster (and vice versa) — one format, two executors.
        fresh = make_trained_reranker(built)
        warm = AliCoCoCluster.from_snapshot(
            path,
            config=ClusterConfig(n_shards=2),
            service_config=config,
            reranker=fresh,
        )
        assert warm.search_reranked(query, 5) == expected
        warm_process = AliCoCoCluster.from_snapshot(
            path,
            config=ClusterConfig(n_shards=2, executor="process"),
            service_config=config,
            reranker=fresh,
        )
        try:
            assert warm_process.search_reranked(query, 5) == expected
        finally:
            warm_process.close()


# ----------------------------------------------------------- housekeeping
class TestHousekeeping:
    def test_ownership_census_matches_shard_sizes(self, built):
        cluster = _process_cluster(built.store, 4)
        try:
            stats = cluster.stats()
            assert list(stats.shard_owned) == shard_sizes(built.store, 4)
            assert sum(stats.shard_owned) > 0
        finally:
            cluster.close()

    def test_close_leaves_no_children(self, built):
        cluster = _process_cluster(built.store, 2)
        assert cluster.worker_pool is not None
        cluster.close()
        assert multiprocessing.active_children() == []
        # Idempotent, and the pool refuses further traffic, typed.
        cluster.close()
        with pytest.raises(ShardUnavailableError, match="closed"):
            cluster.worker_pool.ping(0)

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="executor"):
            ClusterConfig(executor="fibers")
        with pytest.raises(ConfigError, match="max_worker_restarts"):
            ClusterConfig(max_worker_restarts=-1)
