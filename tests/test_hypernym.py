"""Tests for hypernym discovery: patterns, dataset, projection, active."""

import numpy as np
import pytest

from repro.errors import DataError, NotFittedError
from repro.hypernym import (
    ActiveLearner, HearstMiner, ProjectionModel, build_dataset,
    suffix_rule_pairs,
)
from repro.hypernym.dataset import unlabeled_pool
from repro.synth import build_lexicon


@pytest.fixture(scope="module")
def lexicon():
    return build_lexicon(seed=7)


def toy_embedder(dim=8):
    """Deterministic pseudo-embeddings with head-word structure: compound
    phrases are near their heads, so hypernymy is learnable."""
    cache = {}

    def word_vector(word):
        if word not in cache:
            rng = np.random.default_rng(abs(hash(word)) % (2 ** 31))
            cache[word] = rng.normal(size=dim)
        return cache[word]

    def embed(surface):
        words = surface.split()
        head = word_vector(words[-1])
        if len(words) == 1:
            return head
        modifier = np.mean([word_vector(w) for w in words[:-1]], axis=0)
        return 0.75 * head + 0.25 * modifier

    return embed


class TestSuffixRule:
    def test_finds_compound_heads(self):
        pairs = suffix_rule_pairs(["coat", "trench coat", "dress",
                                   "maxi dress", "red thing"])
        assert ("trench coat", "coat") in pairs
        assert ("maxi dress", "dress") in pairs
        assert all(hypo != hyper for hypo, hyper in pairs)

    def test_prefers_longest_suffix(self):
        pairs = suffix_rule_pairs(["coat", "trench coat",
                                   "long trench coat"])
        assert ("long trench coat", "trench coat") in pairs
        assert ("long trench coat", "coat") not in pairs

    def test_lexicon_suffix_recall(self, lexicon):
        surfaces = lexicon.domain_surfaces("Category")
        pairs = set(suffix_rule_pairs(surfaces))
        truth = set(lexicon.hypernym_pairs("Category"))
        suffix_truth = {(a, b) for a, b in truth if a.endswith(b)}
        # The suffix rule recovers every suffix-shaped ground-truth pair,
        # but (by design) cannot find cover-term pairs like coat isA top.
        assert suffix_truth <= pairs
        assert truth - pairs, "cover-term pairs need the learned model"


class TestHearstMiner:
    VOCAB = ["coat", "trench coat", "down coat", "dress", "maxi dress"]

    def test_kind_of_pattern(self):
        miner = HearstMiner(self.VOCAB)
        pairs = miner.mine([["a", "trench", "coat", "is", "a", "kind",
                             "of", "coat"]])
        assert pairs == [("trench coat", "coat")]

    def test_such_as_pattern_with_conjunction(self):
        miner = HearstMiner(self.VOCAB)
        pairs = miner.mine([["coat", "such", "as", "trench", "coat", "and",
                             "down", "coat"]])
        assert ("trench coat", "coat") in pairs
        assert ("down coat", "coat") in pairs

    def test_every_is_a_pattern(self):
        miner = HearstMiner(self.VOCAB)
        pairs = miner.mine([["every", "maxi", "dress", "is", "a", "dress"]])
        assert pairs == [("maxi dress", "dress")]

    def test_out_of_vocab_span_ignored(self):
        miner = HearstMiner(self.VOCAB)
        pairs = miner.mine([["a", "spaceship", "is", "a", "kind", "of",
                             "coat"]])
        assert pairs == []

    def test_mines_from_guide_corpus(self, lexicon):
        from repro.synth import World
        from repro.synth.guides import generate_guides
        world = World(lexicon, seed=7)
        guides = generate_guides(world, [], 300)
        miner = HearstMiner(lexicon.domain_surfaces("Category"))
        pairs = set(miner.mine(guides))
        truth = set(lexicon.hypernym_pairs("Category"))
        assert pairs, "guides should contain Hearst patterns"
        assert pairs <= truth, "every mined pair should be true"


class TestDataset:
    def test_split_and_negatives(self, lexicon):
        rng = np.random.default_rng(0)
        dataset = build_dataset(lexicon, rng, negatives_per_positive=5)
        labels = [y for _, _, y in dataset.train]
        positives = sum(labels)
        negatives = len(labels) - positives
        assert positives > 10
        assert negatives == pytest.approx(5 * positives, rel=0.2)
        assert dataset.test_positives
        assert set(h for _, h in dataset.test_positives) <= \
            set(dataset.candidate_pool)

    def test_no_positive_leak_in_negatives(self, lexicon):
        rng = np.random.default_rng(0)
        dataset = build_dataset(lexicon, rng, negatives_per_positive=5)
        truth = set(lexicon.hypernym_pairs("Category"))
        for hyponym, hypernym, label in dataset.train:
            if label == 0:
                assert (hyponym, hypernym) not in truth

    def test_unknown_domain_raises(self, lexicon):
        with pytest.raises(DataError):
            build_dataset(lexicon, np.random.default_rng(0), domain="Color")

    def test_unlabeled_pool_mix(self, lexicon):
        rng = np.random.default_rng(1)
        pool = unlabeled_pool(lexicon, rng, 300, positive_boost=0.2)
        truth = set(lexicon.hypernym_pairs("Category"))
        positives = sum(1 for pair in pool if pair in truth)
        assert 0 < positives < len(pool)


class TestProjectionModel:
    def test_learns_ranking(self, lexicon):
        rng = np.random.default_rng(0)
        dataset = build_dataset(lexicon, rng, negatives_per_positive=8)
        model = ProjectionModel(toy_embedder(), dim=8, k_layers=3, seed=1)
        model.fit(dataset.train, epochs=15, seed=1)
        metrics = model.evaluate(dataset, max_candidates=60)
        # Far above the random baseline (~1/60).
        assert metrics["map"] > 0.25
        assert 0.0 <= metrics["mrr"] <= 1.0
        assert 0.0 <= metrics["p@1"] <= 1.0

    def test_unfitted_raises(self):
        model = ProjectionModel(toy_embedder(), dim=8)
        with pytest.raises(NotFittedError):
            model.rank_candidates("trench coat", ["coat"])

    def test_empty_training_raises(self):
        model = ProjectionModel(toy_embedder(), dim=8)
        with pytest.raises(DataError):
            model.fit([])

    def test_bad_embedder_shape_raises(self):
        model = ProjectionModel(lambda s: np.zeros(3), dim=8)
        with pytest.raises(DataError):
            model.logits([("a", "b")])

    def test_rank_excludes_self(self, lexicon):
        rng = np.random.default_rng(0)
        dataset = build_dataset(lexicon, rng, negatives_per_positive=4)
        model = ProjectionModel(toy_embedder(), dim=8, seed=1)
        model.fit(dataset.train[:100], epochs=3, seed=1)
        ranked = model.rank_candidates("coat", ["coat", "dress"])
        assert ranked == ["dress"]


class TestActiveLearner:
    def make_learner(self, lexicon, alpha=0.5, k=30):
        rng = np.random.default_rng(0)
        dataset = build_dataset(lexicon, rng, negatives_per_positive=5)
        truth = set(lexicon.hypernym_pairs("Category"))

        def label_fn(a, b):
            return (a, b) in truth

        return ActiveLearner(toy_embedder(), dim=8, label_fn=label_fn,
                             dataset=dataset, k_per_iteration=k,
                             alpha=alpha, patience=2, seed=2, epochs=8,
                             k_layers=3), rng

    def test_unknown_strategy_raises(self, lexicon):
        learner, _ = self.make_learner(lexicon)
        with pytest.raises(DataError):
            learner.run([("a", "b")], "magic")

    def test_empty_pool_raises(self, lexicon):
        learner, _ = self.make_learner(lexicon)
        with pytest.raises(DataError):
            learner.run([], "random")

    def test_runs_and_improves(self, lexicon):
        learner, rng = self.make_learner(lexicon)
        pool = unlabeled_pool(lexicon, rng, 400, positive_boost=0.15)
        result = learner.run(pool, "ucs", max_iterations=3)
        assert result.history
        assert result.labels_used >= 30
        assert result.best_map > 0.0
        # History labels are non-decreasing.
        labels = [n for n, _ in result.history]
        assert labels == sorted(labels)

    def test_labels_to_reach(self, lexicon):
        learner, rng = self.make_learner(lexicon)
        pool = unlabeled_pool(lexicon, rng, 300, positive_boost=0.15)
        result = learner.run(pool, "random", max_iterations=2)
        assert result.labels_to_reach(0.0) == result.history[0][0]
        assert result.labels_to_reach(2.0) is None

    def test_invalid_alpha(self, lexicon):
        rng = np.random.default_rng(0)
        dataset = build_dataset(lexicon, rng)
        with pytest.raises(DataError):
            ActiveLearner(toy_embedder(), 8, lambda a, b: True, dataset,
                          alpha=1.5)
