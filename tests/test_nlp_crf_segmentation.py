"""Tests for the CRF / fuzzy CRF and max-matching segmentation."""

import numpy as np
import pytest

from repro.errors import DataError, ShapeError
from repro.ml import Adam, Tensor
from repro.ml.gradcheck import check_gradients
from repro.ml.module import Parameter
from repro.nlp import LinearChainCRF, MaxMatchSegmenter


class TestCRF:
    def test_nll_positive_and_decreases_with_training(self, rng):
        crf = LinearChainCRF(3, rng)
        emissions = Parameter(rng.normal(size=(4, 3)))
        labels = [0, 1, 2, 1]
        optimizer = Adam(crf.parameters() + [emissions], lr=0.1)
        first = crf.nll(emissions, labels).item()
        assert first > 0
        for _ in range(60):
            optimizer.zero_grad()
            loss = crf.nll(emissions, labels)
            loss.backward()
            optimizer.step()
        assert crf.nll(emissions, labels).item() < first
        assert crf.decode(emissions.data) == labels

    def test_nll_is_proper_negative_log_prob(self, rng):
        """Sum over all label sequences of exp(-nll) must be 1."""
        crf = LinearChainCRF(2, rng)
        emissions = Tensor(rng.normal(size=(3, 2)))
        total = 0.0
        for a in range(2):
            for b in range(2):
                for c in range(2):
                    total += np.exp(-crf.nll(emissions, [a, b, c]).item())
        assert total == pytest.approx(1.0, abs=1e-8)

    def test_fuzzy_nll_leq_strict_nll(self, rng):
        crf = LinearChainCRF(3, rng)
        emissions = Tensor(rng.normal(size=(4, 3)))
        strict = crf.nll(emissions, [0, 1, 2, 0]).item()
        fuzzy = crf.fuzzy_nll(
            emissions, [[0], [1, 2], [2], [0, 1]]).item()
        assert fuzzy <= strict + 1e-9

    def test_fuzzy_with_singleton_sets_equals_nll(self, rng):
        crf = LinearChainCRF(3, rng)
        emissions = Tensor(rng.normal(size=(3, 3)))
        labels = [2, 0, 1]
        strict = crf.nll(emissions, labels).item()
        fuzzy = crf.fuzzy_nll(emissions, [[label] for label in labels]).item()
        assert fuzzy == pytest.approx(strict, abs=1e-8)

    def test_fuzzy_all_labels_allowed_gives_zero_loss(self, rng):
        crf = LinearChainCRF(3, rng)
        emissions = Tensor(rng.normal(size=(2, 3)))
        loss = crf.fuzzy_nll(emissions, [[0, 1, 2], [0, 1, 2]]).item()
        assert loss == pytest.approx(0.0, abs=1e-8)

    def test_gradcheck_nll(self, rng):
        crf = LinearChainCRF(3, rng)
        emissions = Parameter(rng.normal(size=(3, 3)))
        tensors = [emissions, crf.transitions, crf.start_scores, crf.end_scores]
        assert check_gradients(
            lambda: crf.nll(emissions, [0, 2, 1]), tensors, tolerance=1e-3)

    def test_gradcheck_fuzzy(self, rng):
        crf = LinearChainCRF(3, rng)
        emissions = Parameter(rng.normal(size=(3, 3)))
        allowed = [[0, 1], [2], [1, 2]]
        tensors = [emissions, crf.transitions, crf.start_scores, crf.end_scores]
        assert check_gradients(
            lambda: crf.fuzzy_nll(emissions, allowed), tensors, tolerance=1e-3)

    def test_shape_validation(self, rng):
        crf = LinearChainCRF(3, rng)
        with pytest.raises(ShapeError):
            crf.nll(Tensor(np.zeros((2, 4))), [0, 1])
        with pytest.raises(ShapeError):
            crf.nll(Tensor(np.zeros((2, 3))), [0])
        with pytest.raises(DataError):
            crf.decode(np.zeros((0, 3)))
        with pytest.raises(DataError):
            crf.fuzzy_nll(Tensor(np.zeros((1, 3))), [[]])

    def test_decode_follows_transitions(self, rng):
        """With uniform emissions, decoding follows transition preferences."""
        crf = LinearChainCRF(2, rng)
        crf.transitions.data[:] = np.array([[5.0, -5.0], [-5.0, 5.0]])
        crf.start_scores.data[:] = np.array([1.0, 0.0])
        crf.end_scores.data[:] = 0.0
        path = crf.decode(np.zeros((4, 2)))
        assert path == [0, 0, 0, 0]


class TestMaxMatchSegmenter:
    LEXICON = {
        ("outdoor",): {"Location"},
        ("barbecue",): {"Event"},
        ("village",): {"Location", "Style"},
        ("skirt",): {"Category"},
        ("warm", "hat"): {"Category"},
        ("warm",): {"Function"},
        ("hat",): {"Category"},
    }

    def test_prefers_longest_match(self):
        segmenter = MaxMatchSegmenter(self.LEXICON)
        result = segmenter.segment(["warm", "hat"])
        assert len(result.segments) == 1
        assert result.segments[0].length == 2
        assert result.covered == 2

    def test_full_unambiguous_match(self):
        segmenter = MaxMatchSegmenter(self.LEXICON)
        assert segmenter.perfectly_matched(["outdoor", "barbecue"])

    def test_multi_label_phrase_is_ambiguous(self):
        segmenter = MaxMatchSegmenter(self.LEXICON)
        result = segmenter.segment(["village", "skirt"])
        assert result.ambiguous
        assert not segmenter.perfectly_matched(["village", "skirt"])

    def test_unmatched_token_not_perfect(self):
        segmenter = MaxMatchSegmenter(self.LEXICON)
        result = segmenter.segment(["outdoor", "zzz"])
        assert result.covered == 1
        assert not segmenter.perfectly_matched(["outdoor", "zzz"])

    def test_iob_labels(self):
        segmenter = MaxMatchSegmenter(self.LEXICON)
        result = segmenter.segment(["warm", "hat", "zzz", "barbecue"])
        labels = result.iob_labels(4)
        assert labels == ["B-Category", "I-Category", "O", "B-Event"]

    def test_empty_sentence(self):
        segmenter = MaxMatchSegmenter(self.LEXICON)
        result = segmenter.segment([])
        assert result.covered == 0
        assert not result.ambiguous
