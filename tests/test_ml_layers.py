"""Unit + gradient tests for neural layers."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.ml import (
    AdditiveSelfAttention, BiLSTM, Conv1d, Dropout, Embedding, Linear, LSTM, MLP,
)
from repro.ml.gradcheck import check_gradients
from repro.ml.tensor import Tensor


def leaf(rng, shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 3, rng)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 4))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_gradcheck(self, rng):
        layer = Linear(3, 2, rng)
        x = leaf(rng, (4, 3))
        assert check_gradients(lambda: layer(x).sum(),
                               [x, layer.weight, layer.bias])


class TestMLP:
    def test_requires_two_widths(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_unknown_activation(self, rng):
        with pytest.raises(ValueError):
            MLP([4, 2], rng, activation="swish")

    def test_forward_and_grad(self, rng):
        mlp = MLP([3, 5, 1], rng, activation="relu")
        x = leaf(rng, (6, 3))
        assert mlp(x).shape == (6, 1)
        assert check_gradients(lambda: mlp(x).sum(), mlp.parameters())


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_out_of_range_rejected(self, rng):
        emb = Embedding(5, 4, rng)
        with pytest.raises(ShapeError):
            emb(np.array([5]))

    def test_pretrained_and_frozen(self, rng):
        table = rng.normal(size=(6, 3))
        emb = Embedding(6, 3, rng, pretrained=table, frozen=True)
        np.testing.assert_allclose(emb(np.array([2])).data[0], table[2])
        emb(np.array([2])).sum().backward()
        assert emb.weight.grad is None

    def test_pretrained_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            Embedding(6, 3, rng, pretrained=np.zeros((5, 3)))

    def test_gradcheck(self, rng):
        emb = Embedding(7, 3, rng)
        ids = np.array([0, 3, 3, 6])
        assert check_gradients(lambda: (emb(ids) ** 2).sum(), [emb.weight])


class TestRecurrent:
    def test_lstm_shapes(self, rng):
        lstm = LSTM(4, 6, rng)
        out = lstm(Tensor(rng.normal(size=(3, 5, 4))))
        assert out.shape == (3, 5, 6)

    def test_lstm_rejects_bad_shape(self, rng):
        lstm = LSTM(4, 6, rng)
        with pytest.raises(ShapeError):
            lstm(Tensor(np.zeros((3, 5, 7))))

    def test_bilstm_shapes(self, rng):
        bilstm = BiLSTM(4, 3, rng)
        out = bilstm(Tensor(rng.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 6)
        assert bilstm.output_dim == 6

    def test_bilstm_backward_direction_sees_future(self, rng):
        """The backward states at t=0 must depend on the last token."""
        bilstm = BiLSTM(2, 3, rng)
        x = rng.normal(size=(1, 4, 2))
        base = bilstm(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, -1, :] += 10.0
        shifted = bilstm(Tensor(x2)).data
        # Forward half at t=0 is unchanged; backward half must change.
        np.testing.assert_allclose(shifted[0, 0, :3], base[0, 0, :3])
        assert np.abs(shifted[0, 0, 3:] - base[0, 0, 3:]).max() > 1e-6

    def test_lstm_gradcheck(self, rng):
        lstm = LSTM(2, 3, rng)
        x = leaf(rng, (2, 3, 2))
        params = [x] + lstm.parameters()
        assert check_gradients(lambda: (lstm(x) ** 2).sum(), params,
                               tolerance=1e-3)

    def test_bilstm_gradcheck(self, rng):
        bilstm = BiLSTM(2, 2, rng)
        x = leaf(rng, (1, 3, 2))
        assert check_gradients(lambda: (bilstm(x) ** 2).sum(),
                               [x] + bilstm.parameters(), tolerance=1e-3)


class TestConv1d:
    def test_same_padding_shape(self, rng):
        conv = Conv1d(4, 6, 3, rng)
        out = conv(Tensor(rng.normal(size=(2, 7, 4))))
        assert out.shape == (2, 7, 6)

    def test_even_kernel_rejected(self, rng):
        with pytest.raises(ShapeError):
            Conv1d(4, 6, 2, rng)

    def test_matches_manual_convolution(self, rng):
        conv = Conv1d(1, 1, 3, rng)
        x = np.arange(5.0).reshape(1, 5, 1)
        out = conv(Tensor(x)).data[0, :, 0]
        w = conv.weight.data[:, 0]  # [w_left, w_center, w_right]
        expected = []
        padded = np.concatenate([[0.0], x[0, :, 0], [0.0]])
        for t in range(5):
            expected.append(padded[t] * w[0] + padded[t + 1] * w[1]
                            + padded[t + 2] * w[2] + conv.bias.data[0])
        np.testing.assert_allclose(out, expected)

    def test_gradcheck(self, rng):
        conv = Conv1d(2, 3, 3, rng)
        x = leaf(rng, (2, 4, 2))
        assert check_gradients(lambda: (conv(x) ** 2).sum(),
                               [x, conv.weight, conv.bias], tolerance=1e-3)


class TestAttention:
    def test_shape_preserved(self, rng):
        attn = AdditiveSelfAttention(4, 3, rng)
        out = attn(Tensor(rng.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 4)

    def test_rejects_2d(self, rng):
        attn = AdditiveSelfAttention(4, 3, rng)
        with pytest.raises(ShapeError):
            attn(Tensor(np.zeros((5, 4))))

    def test_gradcheck(self, rng):
        attn = AdditiveSelfAttention(2, 2, rng)
        x = leaf(rng, (1, 3, 2))
        assert check_gradients(lambda: (attn(x) ** 2).sum(),
                               [x] + attn.parameters(), tolerance=1e-3)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        drop = Dropout(0.5, rng).eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_training_scales_kept_units(self, rng):
        drop = Dropout(0.5, np.random.default_rng(0))
        x = Tensor(np.ones((1000,)))
        out = drop(x).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 300 < kept.size < 700

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


class TestModuleProtocol:
    def test_named_parameters_recurse(self, rng):
        mlp = MLP([3, 4, 2], rng)
        names = {name for name, _ in mlp.named_parameters()}
        assert "layers.0.weight" in names
        assert "layers.1.bias" in names

    def test_state_dict_roundtrip(self, rng):
        src = MLP([3, 4, 2], rng)
        dst = MLP([3, 4, 2], np.random.default_rng(99))
        dst.load_state_dict(src.state_dict())
        x = Tensor(rng.normal(size=(2, 3)))
        np.testing.assert_allclose(dst(x).data, src(x).data)

    def test_train_eval_toggle(self, rng):
        mlp = MLP([3, 4, 2], rng)
        mlp.eval()
        assert all(not m.training for m in mlp.modules())
        mlp.train()
        assert all(m.training for m in mlp.modules())
