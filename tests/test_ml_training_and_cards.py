"""Tests for training utilities and the knowledge card."""

import numpy as np
import pytest

from repro import build_alicoco, TINY
from repro.errors import DataError, NodeNotFoundError
from repro.ml.training import EarlyStopping, LearningCurve, minibatches


class TestMinibatches:
    def test_covers_all_items_once(self):
        data = list(range(10))
        batches = list(minibatches(data, 3))
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        assert sorted(x for batch in batches for x in batch) == data

    def test_shuffled_when_rng_given(self):
        data = list(range(50))
        rng = np.random.default_rng(0)
        flattened = [x for batch in minibatches(data, 7, rng) for x in batch]
        assert flattened != data
        assert sorted(flattened) == data

    def test_empty_raises(self):
        with pytest.raises(DataError):
            list(minibatches([], 4))

    def test_bad_batch_size_raises(self):
        with pytest.raises(DataError):
            list(minibatches([1], 0))


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2, mode="min")
        assert stopper.update(1.0)
        assert stopper.update(0.5)   # improvement
        assert stopper.update(0.6)   # stale 1
        assert not stopper.update(0.7)  # stale 2 -> stop
        assert stopper.should_stop
        assert stopper.best == 0.5

    def test_max_mode(self):
        stopper = EarlyStopping(patience=1, mode="max")
        assert stopper.update(0.1)
        assert stopper.update(0.2)
        assert not stopper.update(0.15)

    def test_invalid_config(self):
        with pytest.raises(DataError):
            EarlyStopping(mode="sideways")
        with pytest.raises(DataError):
            EarlyStopping(patience=0)


class TestLearningCurve:
    def test_record_and_series(self):
        curve = LearningCurve()
        curve.record(loss=1.0, accuracy=0.5)
        curve.record(loss=0.5, accuracy=0.7)
        assert curve.series("loss") == [1.0, 0.5]
        assert curve.best_epoch("loss") == 1
        assert curve.best_epoch("accuracy", mode="max") == 1

    def test_empty_best_raises(self):
        with pytest.raises(DataError):
            LearningCurve().best_epoch("loss")

    def test_missing_metric_is_a_data_error(self):
        """Regression: a metric absent from one epoch used to leak a bare
        ``KeyError``; now it's a ``DataError`` naming the epoch and the
        metrics that *were* recorded."""
        curve = LearningCurve()
        curve.record(loss=1.0, accuracy=0.5)
        curve.record(loss=0.5)  # accuracy forgotten this epoch
        with pytest.raises(DataError, match="epoch 1") as excinfo:
            curve.series("accuracy")
        assert "loss" in str(excinfo.value)
        with pytest.raises(DataError, match="never recorded|missing"):
            curve.series("f1")


class TestKnowledgeCard:
    @pytest.fixture(scope="class")
    def built(self):
        return build_alicoco(TINY)

    def test_card_structure(self, built):
        from repro.apps import SemanticSearchEngine
        engine = SemanticSearchEngine(built.store)
        spec = next(s for s in built.concepts if s.parts)
        card = engine.knowledge_card(built.concept_ids[spec.text])
        assert card.concept.text == spec.text
        domains = set(card.interpretation_by_domain)
        assert domains == {p.domain for p in spec.parts
                           if (p.surface, p.domain) in built.primitive_ids}
        rendered = card.render()
        assert spec.text in rendered

    def test_card_includes_implied_relations(self, built):
        """A concept interpreting a category with mined commonsense shows
        the implication on its card."""
        from repro.apps import SemanticSearchEngine
        engine = SemanticSearchEngine(built.store)
        # Find a concept whose interpretation has an outgoing mined edge.
        for spec in built.concepts:
            concept_id = built.concept_ids[spec.text]
            card = engine.knowledge_card(concept_id)
            if card.implied:
                primitive, name, probability = card.implied[0]
                assert name in ("suitable_when", "used_for", "used_by")
                assert 0 < probability <= 1
                assert f"implies {primitive.name}" in card.render()
                return
        pytest.skip("no concept with mined implications at tiny scale")

    def test_card_requires_concept_node(self, built):
        from repro.apps import SemanticSearchEngine
        engine = SemanticSearchEngine(built.store)
        item = next(built.store.nodes("item"))
        with pytest.raises(NodeNotFoundError):
            engine.knowledge_card(item.id)
