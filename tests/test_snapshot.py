"""Versioned snapshots: round-trips, header validation, atomicity."""

import json

import numpy as np
import pytest

from repro import build_alicoco, TINY
from repro.errors import DataError, NodeNotFoundError
from repro.kg.serialize import (
    load_snapshot,
    load_store,
    save_snapshot,
    save_store,
    SNAPSHOT_FORMAT,
)
from repro.matching.bm25 import BM25Index
from repro.ml import Linear
from repro.ml.serialize import load_module_state, module_state_record
from repro.serving import AliCoCoService


@pytest.fixture(scope="module")
def built():
    return build_alicoco(TINY)


@pytest.fixture(scope="module")
def snapshot_path(built, tmp_path_factory):
    path = tmp_path_factory.mktemp("snap") / "net.snapshot.jsonl"
    service = AliCoCoService.from_build(built, config_fingerprint=TINY.fingerprint())
    service.save_snapshot(path)
    return path


class TestSnapshotRoundTrip:
    def test_save_load_save_is_byte_identical(self, snapshot_path, tmp_path):
        snapshot = load_snapshot(snapshot_path)
        resaved = tmp_path / "resaved.jsonl"
        save_snapshot(
            snapshot.store,
            resaved,
            config_fingerprint=snapshot.header.config_fingerprint,
            index_states=snapshot.index_states,
        )
        assert snapshot_path.read_bytes() == resaved.read_bytes()

    def test_header_reflects_contents(self, built, snapshot_path):
        header = load_snapshot(snapshot_path).header
        assert header.format_version == SNAPSHOT_FORMAT
        assert header.node_count == len(built.store)
        assert header.relation_count == built.store.stats().relations_total
        assert header.config_fingerprint == TINY.fingerprint()
        assert "bm25-concepts" in header.index_names

    def test_store_survives_snapshot_round_trip(self, built, snapshot_path):
        loaded = load_snapshot(snapshot_path).store
        assert loaded.stats() == built.store.stats()
        loaded_ids = sorted(n.id for n in loaded.nodes())
        assert loaded_ids == sorted(n.id for n in built.store.nodes())
        assert list(loaded.relations()) == list(built.store.relations())

    def test_index_state_rehydrates_identically(self, snapshot_path):
        snapshot = load_snapshot(snapshot_path)
        state = snapshot.index_states["bm25-concepts"]
        index = BM25Index.from_state(state)
        assert index.to_state() == state
        concept = next(snapshot.store.nodes("ec"))
        top = index.top_k(concept.tokens, k=1)
        assert top and top[0][0] == concept.id

    def test_load_store_accepts_snapshot_files(self, built, snapshot_path):
        loaded = load_store(snapshot_path)
        assert loaded.stats() == built.store.stats()

    def test_legacy_headerless_files_still_load(self, built, tmp_path):
        path = tmp_path / "legacy.jsonl"
        save_store(built.store, path)
        assert load_store(path).stats() == built.store.stats()
        with pytest.raises(DataError, match="missing header"):
            load_snapshot(path)


class TestModelRecords:
    """Model bundles riding the snapshot stream (format stays v1)."""

    @staticmethod
    def _module(seed=3):
        return Linear(4, 2, np.random.default_rng(seed))

    def test_model_states_round_trip_bit_identical(self, built, tmp_path):
        module = self._module()
        path = tmp_path / "with_model.jsonl"
        record = module_state_record(module, config={"kind": "demo"})
        save_snapshot(built.store, path, model_states={"demo": record})
        snapshot = load_snapshot(path)
        assert snapshot.header.model_names == ("demo",)
        assert snapshot.model_states["demo"] == record
        other = self._module(seed=9)
        load_module_state(other, snapshot.model_states["demo"])
        np.testing.assert_array_equal(other.weight.data, module.weight.data)
        np.testing.assert_array_equal(other.bias.data, module.bias.data)

    def test_model_less_snapshots_still_load(self, snapshot_path):
        snapshot = load_snapshot(snapshot_path)
        assert snapshot.header.model_names == ()
        assert snapshot.model_states == {}

    def test_pre_bundle_header_still_loads(self, snapshot_path, tmp_path):
        """A header written before model bundles existed (no ``models``
        key) parses; the field defaults to empty."""
        lines = snapshot_path.read_text().splitlines()
        header = json.loads(lines[0])
        del header["models"]
        path = tmp_path / "pre_bundle.jsonl"
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        assert load_snapshot(path).header.model_names == ()

    def test_corrupt_model_record_names_its_line(self, built, tmp_path):
        record = module_state_record(self._module())
        path = tmp_path / "corrupt_model.jsonl"
        save_snapshot(built.store, path, model_states={"demo": record})
        lines = path.read_text().splitlines()
        bad = json.loads(lines[-1])
        del bad["state"]
        line_number = len(lines)
        path.write_text("\n".join(lines[:-1] + [json.dumps(bad)]) + "\n")
        with pytest.raises(DataError, match=f"line {line_number}"):
            load_snapshot(path)

    def test_mismatched_architecture_rejected_on_restore(self, built, tmp_path):
        record = module_state_record(self._module())
        save_snapshot(
            built.store, tmp_path / "m.jsonl", model_states={"demo": record}
        )
        snapshot = load_snapshot(tmp_path / "m.jsonl")
        wider = Linear(4, 3, np.random.default_rng(0))
        with pytest.raises(DataError, match="fingerprint"):
            load_module_state(wider, snapshot.model_states["demo"])


class TestHeaderValidation:
    def test_version_mismatch_rejected_with_line(self, snapshot_path, tmp_path):
        lines = snapshot_path.read_text().splitlines()
        header = json.loads(lines[0])
        header["format"] = SNAPSHOT_FORMAT + 1
        bad = tmp_path / "future.jsonl"
        bad.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(DataError, match=r"line 1: snapshot format"):
            load_snapshot(bad)

    def test_corrupted_header_rejected_with_line(self, snapshot_path, tmp_path):
        lines = snapshot_path.read_text().splitlines()
        header = json.loads(lines[0])
        header["nodes"] = "not-a-count"
        bad = tmp_path / "corrupt.jsonl"
        bad.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(DataError, match=r"line 1: corrupted snapshot"):
            load_snapshot(bad)

    def test_truncated_snapshot_detected_by_counts(self, snapshot_path, tmp_path):
        lines = snapshot_path.read_text().splitlines()
        bad = tmp_path / "truncated.jsonl"
        bad.write_text("\n".join(lines[:-40]) + "\n")
        with pytest.raises((DataError, NodeNotFoundError)):
            load_snapshot(bad)

    def test_header_not_first_rejected(self, snapshot_path, tmp_path):
        lines = snapshot_path.read_text().splitlines()
        bad = tmp_path / "misplaced.jsonl"
        bad.write_text("\n".join([lines[1], lines[0]] + lines[2:]) + "\n")
        # The strict loader fails fast on the missing line-1 header; even
        # the liberal loader rejects a header that is not the first record.
        with pytest.raises(DataError, match="missing header"):
            load_snapshot(bad)
        with pytest.raises(DataError, match="must be the first"):
            load_store(bad)

    def test_malformed_json_keeps_line_numbers(self, snapshot_path, tmp_path):
        lines = snapshot_path.read_text().splitlines()
        lines[2] = "not json"
        bad = tmp_path / "mangled.jsonl"
        bad.write_text("\n".join(lines) + "\n")
        with pytest.raises(DataError, match="line 3"):
            load_snapshot(bad)


class TestAtomicity:
    def test_failed_save_keeps_previous_snapshot(self, built, tmp_path, monkeypatch):
        """A crash mid-write must leave the old snapshot intact and no
        temp files behind."""
        path = tmp_path / "net.jsonl"
        save_snapshot(built.store, path, config_fingerprint="v1")
        before = path.read_bytes()

        import repro.kg.serialize as serialize_module

        original = serialize_module._records

        def exploding_records(store):
            yield from list(original(store))[:10]
            raise RuntimeError("disk on fire")

        monkeypatch.setattr(serialize_module, "_records", exploding_records)
        with pytest.raises(RuntimeError):
            save_snapshot(built.store, path, config_fingerprint="v2")
        assert path.read_bytes() == before
        assert not [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]

    def test_save_store_streams_atomically(self, built, tmp_path, monkeypatch):
        path = tmp_path / "net.jsonl"
        save_store(built.store, path)
        before = path.read_bytes()

        import repro.utils.io as io_module

        def exploding_replace(src, dst):
            raise OSError("power loss at rename")

        monkeypatch.setattr(io_module.os, "replace", exploding_replace)
        with pytest.raises(OSError):
            save_store(built.store, path)
        monkeypatch.undo()
        assert path.read_bytes() == before
        assert not [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]


class TestWarmStartParity:
    def test_warm_service_answers_match_fresh(self, built, snapshot_path):
        fresh = AliCoCoService.from_build(built)
        warm = AliCoCoService.from_snapshot(
            snapshot_path, expected_fingerprint=TINY.fingerprint()
        )
        requests = []
        for spec in built.concepts[:25]:
            concept_id = built.concept_ids[spec.text]
            requests.append(("search", spec.text))
            requests.append(("items_for_concept", concept_id, 5))
            requests.append(("interpretation", concept_id))
        some_primitive = next(iter(built.primitive_ids.values()))
        requests.append(("hypernyms", some_primitive, True))
        item_id = built.item_ids[0]
        requests.append(("concepts_for_item", item_id))
        assert fresh.batch(requests) == warm.batch(requests)

    def test_fingerprint_mismatch_refused(self, snapshot_path):
        with pytest.raises(DataError, match="fingerprint"):
            AliCoCoService.from_snapshot(snapshot_path, expected_fingerprint="deadbeef")

    def test_fingerprints_distinguish_scales(self):
        assert TINY.fingerprint() != TINY.with_seed(8).fingerprint()
        assert TINY.fingerprint() == TINY.fingerprint()
