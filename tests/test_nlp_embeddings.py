"""Tests for SGNS embeddings and Doc2Vec."""

import numpy as np
import pytest

from repro.errors import DataError, NotFittedError
from repro.nlp import Doc2Vec, SkipGramEmbeddings, Vocab


def make_corpus():
    """Two topical clusters: cooking words and clothing words."""
    cooking = ["grill", "charcoal", "barbecue", "skewer"]
    clothing = ["dress", "skirt", "coat", "jacket"]
    rng = np.random.default_rng(0)
    corpus = []
    for _ in range(150):
        group = cooking if rng.random() < 0.5 else clothing
        sentence = list(rng.choice(group, size=3))
        corpus.append(sentence)
    return corpus


class TestSkipGram:
    @pytest.fixture(scope="class")
    def trained(self):
        corpus = make_corpus()
        vocab = Vocab.from_corpus(corpus)
        # subsample=0: every word in this toy corpus is "frequent", and
        # word2vec subsampling would otherwise drop most of the data.
        emb = SkipGramEmbeddings(vocab, dim=12, window=2, negatives=4,
                                 lr=0.08, seed=3, subsample=0.0)
        emb.train(corpus, epochs=4)
        return emb

    def test_unfitted_raises(self):
        vocab = Vocab(["a", "b"])
        with pytest.raises(NotFittedError):
            SkipGramEmbeddings(vocab).vector("a")

    def test_matrix_shape(self, trained):
        assert trained.matrix().shape == (len(trained.vocab), 12)

    def test_within_cluster_similarity_higher(self, trained):
        within = trained.similarity("grill", "charcoal")
        across = trained.similarity("grill", "dress")
        assert within > across

    def test_most_similar_returns_cluster_mates(self, trained):
        neighbours = [w for w, _ in trained.most_similar("dress", top_k=3)]
        clothing = {"skirt", "coat", "jacket"}
        assert len(clothing.intersection(neighbours)) >= 2

    def test_most_similar_excludes_query(self, trained):
        neighbours = [w for w, _ in trained.most_similar("grill", top_k=5)]
        assert "grill" not in neighbours
        assert "<unk>" not in neighbours


class TestDoc2Vec:
    def make_documents(self):
        docs = []
        for _ in range(20):
            docs.append(["grill", "charcoal", "barbecue", "fire", "smoke"])
            docs.append(["dress", "skirt", "fashion", "fabric", "style"])
        return docs

    def test_fit_empty_raises(self):
        with pytest.raises(DataError):
            Doc2Vec().fit([])

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            Doc2Vec().document_vector(0)
        with pytest.raises(NotFittedError):
            Doc2Vec().infer_vector(["a"])

    def test_same_topic_docs_closer(self):
        docs = self.make_documents()
        model = Doc2Vec(dim=10, epochs=15, seed=1).fit(docs)
        bbq_a, bbq_b = model.document_vector(0), model.document_vector(2)
        fashion = model.document_vector(1)
        assert Doc2Vec.cosine(bbq_a, bbq_b) > Doc2Vec.cosine(bbq_a, fashion)

    def test_infer_vector_lands_near_topic(self):
        docs = self.make_documents()
        model = Doc2Vec(dim=10, epochs=15, seed=1).fit(docs)
        inferred = model.infer_vector(["charcoal", "barbecue", "smoke"])
        bbq = model.document_vector(0)
        fashion = model.document_vector(1)
        assert Doc2Vec.cosine(inferred, bbq) > Doc2Vec.cosine(inferred, fashion)

    def test_infer_empty_document_is_finite(self):
        model = Doc2Vec(dim=6, epochs=2, seed=0).fit([["a", "b"], ["c", "d"]])
        vector = model.infer_vector([])
        assert np.all(np.isfinite(vector))
