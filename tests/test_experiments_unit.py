"""Fast unit tests of the experiment runners' pure pieces, plus one
micro-scale end-to-end smoke of the shared experiment world."""

import numpy as np
import pytest

from repro.config import RunScale
from repro.experiments import build_experiment_world
from repro.experiments.active_learning import PAPER as AL_PAPER, StrategyOutcome, _SingleRun
from repro.experiments.common import format_rows
from repro.experiments.fig9_negatives import NegativeSweepResult
from repro.experiments.table4_classification import CONFIGS as T4_CONFIGS, PAPER as T4_PAPER
from repro.experiments.table5_tagging import (
    CONFIGS as T5_CONFIGS, distant_gold, PAPER as T5_PAPER,
)
from repro.experiments.table6_matching import MODELS as T6_MODELS, PAPER as T6_PAPER
from repro.hypernym.active import STRATEGIES
from repro.synth.world import ConceptPart, ConceptSpec

MICRO = RunScale(name="micro", n_items=60, n_queries=60, n_reviews=40,
                 n_guides=20, embedding_dim=8, hidden_dim=8, epochs=1, seed=7)


@pytest.fixture(scope="module")
def micro_world():
    return build_experiment_world(MICRO, n_concepts=40, embedding_epochs=1,
                                  gloss_dim=8)


class TestPaperConstants:
    def test_table4_configs_cover_paper_rows(self):
        assert [name for name, _ in T4_CONFIGS] == list(T4_PAPER)

    def test_table5_configs_cover_paper_rows(self):
        assert [name for name, _ in T5_CONFIGS] == list(T5_PAPER)

    def test_table6_models_cover_paper_rows(self):
        assert list(T6_MODELS) == list(T6_PAPER)

    def test_al_paper_covers_strategies(self):
        assert set(AL_PAPER) == set(STRATEGIES)

    def test_paper_orderings_encoded(self):
        """The paper constants themselves carry the shapes we assert."""
        values = [T4_PAPER[name] for name, _ in T4_CONFIGS]
        assert values == sorted(values)
        f1s = [T5_PAPER[name][2] for name, _ in T5_CONFIGS]
        assert f1s == sorted(f1s)
        assert AL_PAPER["ucs"]["map"] == max(v["map"] for v in AL_PAPER.values())


class TestHelpers:
    def test_format_rows_alignment(self):
        text = format_rows("title", ("a", "bb"), [(1, 2), (33, 4)],
                           paper_note="note")
        lines = text.splitlines()
        assert lines[0] == "title"
        assert "note" in lines[1]
        assert len(lines) == 6  # title, note, header, rule, 2 rows

    def test_negative_sweep_best_n(self):
        result = NegativeSweepResult(points=[(1, 0.1), (10, 0.5), (40, 0.3)])
        assert result.best_n() == 10

    def test_strategy_outcome_reduction(self):
        outcome = StrategyOutcome("ucs", labels_used=70.0, best_map=0.5,
                                  runs=[_SingleRun(100, 70, 0.5)])
        assert outcome.reduction_vs_pool == pytest.approx(0.3)
        assert StrategyOutcome("x", 0, 0).reduction_vs_pool == 0.0


class TestDistantGold:
    def test_unambiguous_spec_untouched(self, micro_world):
        spec = ConceptSpec("outdoor barbecue",
                           (ConceptPart("outdoor", "Location"),
                            ConceptPart("barbecue", "Event")),
                           "location-event", good=True)
        assert distant_gold(micro_world, spec) is spec

    def test_ambiguous_sense_replaced(self, micro_world):
        spec = ConceptSpec("village winter skirt",
                           (ConceptPart("village", "Style"),
                            ConceptPart("winter", "Time"),
                            ConceptPart("skirt", "Category")),
                           "style-season-category", good=True)
        distant = distant_gold(micro_world, spec)
        assert distant is not spec
        assert distant.parts[0].domain == "Location"  # alphabetically first
        assert distant.parts[1].domain == "Time"


class TestMicroWorld:
    def test_world_components_present(self, micro_world):
        assert micro_world.corpus.items
        assert micro_world.concepts
        assert len(micro_world.vocab) > 50
        assert micro_world.gloss_kb.has("barbecue")

    def test_gloss_vector_cached_and_stable(self, micro_world):
        first = micro_world.gloss_vector("warm")
        second = micro_world.gloss_vector("warm")
        assert first is second
        assert micro_world.gloss_vector("zzz-not-a-word") is None

    def test_phrase_vector_shape(self, micro_world):
        vector = micro_world.phrase_vector("trench coat")
        assert vector.shape == (MICRO.embedding_dim,)
        assert np.all(np.isfinite(vector))

    def test_coverage_runs_at_micro_scale(self, micro_world):
        from repro.experiments import coverage
        result = coverage.run(micro_world)
        assert result.alicoco.query_coverage > result.cpv.query_coverage
        assert "AliCoCo" in coverage.format_report(result)

    def test_scaling_study_near_linear(self):
        from repro.experiments import scaling
        result = scaling.run(MICRO, item_counts=(40, 80, 160), n_concepts=30)
        relations = [p.item_relations for p in result.points]
        assert relations == sorted(relations)
        assert all(p.linked_fraction == 1.0 for p in result.points)
        report = scaling.format_report(result)
        assert "Scaling" in report

    def test_concept_sources_ablation_runs(self, micro_world):
        from repro.experiments.ablations import (
            format_concept_sources, run_concept_sources,
        )
        result = run_concept_sources(micro_world, mined_top_k=50)
        assert 0.0 <= result.mining_only <= result.both <= 1.0
        assert result.both >= result.generation_only
        assert "coverage" in format_concept_sources(result)
