"""Tests for the applications layer and the end-to-end build pipeline."""

import numpy as np
import pytest

from repro import build_alicoco, TINY
from repro.apps import (
    CognitiveRecommender, CoverageEvaluator, ItemCFRecommender,
    recommendation_reason, SemanticSearchEngine,
)
from repro.apps.coverage import alicoco_vocabulary, cpv_vocabulary
from repro.errors import DataError
from repro.kg.ids import ITEM_PREFIX
from repro.kg.query import concepts_for_item, items_for_concept


@pytest.fixture(scope="module")
def built():
    return build_alicoco(TINY)


class TestBuild:
    def test_all_layers_populated(self, built):
        stats = built.store.stats()
        assert stats.classes > 20
        assert stats.primitive_concepts > 300
        assert stats.ecommerce_concepts >= 40
        assert stats.items == TINY.n_items

    def test_every_item_linked(self, built):
        """The paper: 98% of items are linked to AliCoCo; every synthetic
        item at least carries its category tag."""
        stats = built.store.stats()
        assert stats.linked_item_fraction == 1.0
        assert stats.avg_primitive_per_item >= 1.0

    def test_interpretation_links_point_to_right_sense(self, built):
        for spec in built.concepts[:20]:
            concept_id = built.concept_ids[spec.text]
            primitives = built.store.targets(
                concept_id, __import__("repro.kg.relations",
                                       fromlist=["RelationKind"]
                                       ).RelationKind.INTERPRETED_BY)
            domains = {p.domain for p in primitives}
            expected = {part.domain for part in spec.parts
                        if (part.surface, part.domain) in built.primitive_ids}
            assert domains == expected

    def test_item_concept_links_respect_ground_truth(self, built):
        from repro.synth.items import item_matches_concept
        specs_by_text = {spec.text: spec for spec in built.concepts}
        checked = 0
        for item in built.corpus.items[:30]:
            node_id = built.item_ids[item.index]
            for concept in concepts_for_item(built.store, node_id):
                assert item_matches_concept(built.world, item,
                                            specs_by_text[concept.text])
                checked += 1
        assert checked > 0

    def test_concept_isa_superset_semantics(self, built):
        from repro.kg.relations import RelationKind
        relations = list(built.store.relations(RelationKind.ISA_ECOMMERCE))
        specs = {spec.text: spec for spec in built.concepts}
        for relation in relations:
            narrow = built.store.get(relation.source).text
            broad = built.store.get(relation.target).text
            narrow_parts = {(p.surface, p.domain) for p in specs[narrow].parts}
            broad_parts = {(p.surface, p.domain) for p in specs[broad].parts}
            assert broad_parts < narrow_parts

    def test_deterministic(self):
        first = build_alicoco(TINY)
        second = build_alicoco(TINY)
        assert first.store.stats() == second.store.stats()


class TestSearch:
    def test_concept_card_triggered_by_exact_query(self, built):
        engine = SemanticSearchEngine(built.store)
        spec = built.concepts[0]
        result = engine.search(spec.text)
        assert result.concept_card is not None
        assert result.concept_card.text == spec.text

    def test_card_shows_associated_items(self, built):
        engine = SemanticSearchEngine(built.store)
        for spec in built.concepts:
            concept_id = built.concept_ids[spec.text]
            if items_for_concept(built.store, concept_id):
                result = engine.search(spec.text)
                assert result.card_items
                break

    def test_problem_query_triggers_card_by_containment(self, built):
        engine = SemanticSearchEngine(built.store)
        spec = built.concepts[0]
        result = engine.search(f"what do i need for {spec.text}")
        assert result.concept_card is not None
        assert result.concept_card.text == spec.text

    def test_isa_expansion_bridges_vocabulary_gap(self, built):
        """Query 'top' retrieves jacket/coat titles only through isA
        knowledge (Section 8.1.1: 'jacket is a kind of top')."""
        from repro.synth.lexicon import COVER_TERMS
        with_isa = SemanticSearchEngine(built.store, use_isa_expansion=True)
        without = SemanticSearchEngine(built.store, use_isa_expansion=False)
        target = None
        cover = None
        for term, hyponyms in COVER_TERMS.items():
            for item in built.corpus.items:
                if item.head in hyponyms and term not in item.title.split():
                    target, cover = item, term
                    break
            if target is not None:
                break
        assert target is not None
        node = built.store.get(built.item_ids[target.index])
        assert with_isa.relevance(cover, node) > without.relevance(cover, node)
        assert without.relevance(cover, node) == 0.0

    def test_no_card_for_plain_category_query(self, built):
        engine = SemanticSearchEngine(built.store)
        result = engine.search("zzz-nonexistent-query")
        assert result.concept_card is None
        assert result.items == []


class TestRecommenders:
    def make_sessions(self, built):
        """Sessions of items sharing a concept (co-purchase behaviour)."""
        rng = np.random.default_rng(4)
        sessions = []
        for spec in built.concepts:
            concept_id = built.concept_ids[spec.text]
            items = items_for_concept(built.store, concept_id)
            if len(items) < 2:
                continue
            for _ in range(3):
                size = min(len(items), 3)
                picked = rng.choice(len(items), size=size, replace=False)
                sessions.append([items[i].id for i in picked])
        return sessions

    def test_item_cf_recommends_cooccurring(self, built):
        sessions = self.make_sessions(built)
        recommender = ItemCFRecommender(sessions)
        seed_session = sessions[0]
        recommendations = recommender.recommend([seed_session[0]], top_k=5)
        assert recommendations
        assert seed_session[0] not in recommendations

    def test_item_cf_empty_sessions_raise(self):
        with pytest.raises(DataError):
            ItemCFRecommender([])

    def test_cognitive_recommender_returns_cards(self, built):
        recommender = CognitiveRecommender(built.store)
        # Seed the history from a concept with a rich enough item set.
        history = None
        for spec in built.concepts:
            concept_id = built.concept_ids[spec.text]
            items = items_for_concept(built.store, concept_id)
            if len(items) >= 4:
                history = [items[0].id]
                break
        assert history is not None
        cards = recommender.recommend_cards(history, top_k=2)
        assert cards
        for card in cards:
            assert card.items
            for item in card.items:
                assert item.id not in history

    def test_reason_prefers_shared_concept(self, built):
        sessions = self.make_sessions(built)
        history = sessions[0][:1]
        target = sessions[0][1]
        reason = recommendation_reason(built.store, target, history)
        assert reason.startswith("because you are preparing for:")

    def test_reason_fallbacks(self, built):
        lonely = None
        for node in built.store.nodes(ITEM_PREFIX):
            if not concepts_for_item(built.store, node.id):
                lonely = node
                break
        if lonely is not None:
            reason = recommendation_reason(built.store, lonely.id, [])
            assert reason == "similar to items you have viewed"


class TestCoverage:
    def test_alicoco_beats_cpv(self, built):
        queries = built.corpus.queries
        cpv = CoverageEvaluator(cpv_vocabulary(built.lexicon), "CPV")
        full = CoverageEvaluator(
            alicoco_vocabulary(built.lexicon,
                               [s.text for s in built.concepts]),
            "AliCoCo")
        cpv_report = cpv.evaluate(queries)
        full_report = full.evaluate(queries)
        assert full_report.query_coverage > cpv_report.query_coverage + 0.2
        assert full_report.token_coverage > cpv_report.token_coverage

    def test_family_breakdown(self, built):
        cpv = CoverageEvaluator(cpv_vocabulary(built.lexicon), "CPV")
        report = cpv.evaluate(built.corpus.queries)
        # CPV understands product queries far better than scenario ones.
        assert report.by_family["product"] > report.by_family["scenario"]

    def test_empty_queries_raise(self, built):
        evaluator = CoverageEvaluator(set(), "empty")
        with pytest.raises(DataError):
            evaluator.evaluate([])
