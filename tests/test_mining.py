"""Tests for vocabulary mining: distant supervision, BiLSTM-CRF, pipeline."""

import numpy as np
import pytest

from repro.errors import DataError, NotFittedError
from repro.mining import (
    BiLSTMCRFMiner, DistantSupervisionBuilder, MiningPipeline, TaggedSentence,
)
from repro.mining.bilstm_crf import LabelSet
from repro.nlp.vocab import Vocab
from repro.synth import build_lexicon


@pytest.fixture(scope="module")
def lexicon():
    return build_lexicon(seed=7)


class TestDistantSupervision:
    def test_tags_known_concepts(self, lexicon):
        builder = DistantSupervisionBuilder(lexicon)
        kept, stats = builder.build([["red", "trench", "coat"]])
        assert stats.kept == 1
        sentence = kept[0]
        assert sentence.labels == ("B-Color", "B-Category", "I-Category")

    def test_drops_ambiguous_sentences(self, lexicon):
        builder = DistantSupervisionBuilder(lexicon)
        # "village" is Location+Style -> ambiguous -> dropped.
        kept, stats = builder.build([["village", "skirt"]])
        assert stats.kept == 0
        assert stats.dropped_ambiguous == 1

    def test_known_surface_restriction(self, lexicon):
        builder = DistantSupervisionBuilder(lexicon, known_surfaces={"coat"})
        kept, _ = builder.build([["red", "coat"]])
        assert kept[0].labels == ("O", "B-Category")

    def test_full_coverage_mode(self, lexicon):
        builder = DistantSupervisionBuilder(lexicon, require_full_coverage=True)
        kept, stats = builder.build([["zzz", "coat"], ["red", "coat"]])
        assert stats.kept == 1
        assert kept[0].tokens == ("red", "coat")

    def test_sentences_without_matches_dropped(self, lexicon):
        builder = DistantSupervisionBuilder(lexicon)
        _, stats = builder.build([["zzz", "qqq"]])
        assert stats.kept == 0
        assert stats.dropped_incomplete == 1


class TestLabelSet:
    def test_outside_is_zero(self):
        labels = LabelSet(["B-Color", "I-Color", "O"])
        assert labels.id("O") == 0
        assert len(labels) == 3

    def test_unknown_label_raises(self):
        labels = LabelSet(["B-Color"])
        with pytest.raises(DataError):
            labels.id("B-Brand")


class TestMiner:
    def make_data(self):
        sentences = [
            TaggedSentence(("red", "dress"), ("B-Color", "B-Category")),
            TaggedSentence(("blue", "coat"), ("B-Color", "B-Category")),
            TaggedSentence(("warm", "hat"), ("B-Function", "B-Category")),
            TaggedSentence(("trench", "coat"), ("B-Category", "I-Category")),
            TaggedSentence(("red", "trench", "coat"),
                           ("B-Color", "B-Category", "I-Category")),
            TaggedSentence(("warm", "coat"), ("B-Function", "B-Category")),
            TaggedSentence(("blue", "hat"), ("B-Color", "B-Category")),
        ] * 4
        vocab = Vocab.from_corpus([list(s.tokens) for s in sentences])
        return sentences, vocab

    def test_learns_training_data(self):
        sentences, vocab = self.make_data()
        label_set = LabelSet.from_data(sentences)
        miner = BiLSTMCRFMiner(vocab, label_set, embedding_dim=12,
                               hidden_dim=12, seed=1)
        history = miner.fit(sentences, epochs=6, lr=0.02)
        assert history[-1] < history[0]
        assert miner.predict(("red", "dress")) == ["B-Color", "B-Category"]

    def test_generalises_to_new_combination(self):
        sentences, vocab = self.make_data()
        label_set = LabelSet.from_data(sentences)
        miner = BiLSTMCRFMiner(vocab, label_set, embedding_dim=12,
                               hidden_dim=12, seed=1)
        miner.fit(sentences, epochs=8, lr=0.02)
        # "blue dress" never occurs in training but both words do.
        assert miner.predict(("blue", "dress")) == ["B-Color", "B-Category"]

    def test_unfitted_predict_raises(self):
        sentences, vocab = self.make_data()
        miner = BiLSTMCRFMiner(vocab, LabelSet.from_data(sentences))
        with pytest.raises(NotFittedError):
            miner.predict(("red", "dress"))

    def test_empty_fit_raises(self):
        _, vocab = self.make_data()
        miner = BiLSTMCRFMiner(vocab, LabelSet(["O"]))
        with pytest.raises(DataError):
            miner.fit([])

    def test_extract_spans_joins_bi(self):
        sentences, vocab = self.make_data()
        label_set = LabelSet.from_data(sentences)
        miner = BiLSTMCRFMiner(vocab, label_set, embedding_dim=12,
                               hidden_dim=12, seed=1)
        miner.fit(sentences, epochs=8, lr=0.02)
        spans = miner.extract_spans(("red", "trench", "coat"))
        assert ("trench coat", "Category") in spans

    def test_predict_empty_sentence(self):
        sentences, vocab = self.make_data()
        label_set = LabelSet.from_data(sentences)
        miner = BiLSTMCRFMiner(vocab, label_set, embedding_dim=8,
                               hidden_dim=8, seed=1)
        miner.fit(sentences[:4], epochs=1)
        assert miner.predict(()) == []


class TestPipeline:
    def test_discovers_held_out_concepts(self, lexicon):
        pipeline = MiningPipeline(lexicon, held_out_fraction=0.3, seed=3)
        # Corpus mentioning held-out surfaces in contexts the miner can learn.
        rng = np.random.default_rng(0)
        colors = ["red", "blue", "green", "black"]
        categories = [e.surface for e in lexicon.domain_entries("Category")
                      if " " not in e.surface]
        sentences = []
        for _ in range(400):
            color = colors[int(rng.integers(len(colors)))]
            category = categories[int(rng.integers(len(categories)))]
            sentences.append([color, category])
        rounds = pipeline.run(sentences, rounds=1, epochs=3,
                              embedding_dim=12, hidden_dim=12)
        assert rounds[0].candidates, "model should propose unseen spans"
        assert rounds[0].accepted, "some candidates should be verified true"
        assert rounds[0].known_after > len(pipeline.known) - len(rounds[0].accepted)

    def test_acceptance_rate_bounded(self, lexicon):
        pipeline = MiningPipeline(lexicon, held_out_fraction=0.2, seed=3)
        sentences = [["red", "coat"], ["blue", "dress"]] * 30
        rounds = pipeline.run(sentences, rounds=1, epochs=2,
                              embedding_dim=8, hidden_dim=8)
        assert 0.0 <= rounds[0].acceptance_rate <= 1.0

    def test_bad_fraction_rejected(self, lexicon):
        with pytest.raises(DataError):
            MiningPipeline(lexicon, held_out_fraction=1.5)
