"""Tests for the io helpers plus failure-injection across the stack."""

import numpy as np
import pytest

from repro import build_alicoco, TINY
from repro.errors import BudgetExhaustedError, DataError
from repro.kg.serialize import load_store, save_store
from repro.utils.io import atomic_write_text, read_jsonl, write_jsonl


class TestIoHelpers:
    def test_atomic_write_roundtrip(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"
        atomic_write_text(path, "replaced")
        assert path.read_text() == "replaced"
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert not leftovers

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "data.jsonl"
        records = [{"a": 1}, {"b": [1, 2]}, {"c": "x"}]
        assert write_jsonl(path, records) == 3
        loaded = [record for _, record in read_jsonl(path)]
        assert loaded == records

    def test_write_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_jsonl(path, []) == 0
        assert list(read_jsonl(path)) == []

    def test_malformed_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(DataError, match="line 2"):
            list(read_jsonl(path))

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(DataError, match="JSON object"):
            list(read_jsonl(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "sparse.jsonl"
        path.write_text('{"a": 1}\n\n\n{"b": 2}\n')
        assert [r for _, r in read_jsonl(path)] == [{"a": 1}, {"b": 2}]


class TestStoreSerializationFailures:
    def test_full_build_roundtrip(self, tmp_path):
        built = build_alicoco(TINY)
        path = tmp_path / "net.jsonl"
        lines = save_store(built.store, path)
        assert lines == len(built.store) + built.store.stats().relations_total
        loaded = load_store(path)
        assert loaded.stats() == built.store.stats()

    def test_unknown_relation_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"record": "relation", "kind": "TELEPORTS_TO", '
            '"source": "a", "target": "b"}\n')
        with pytest.raises(DataError, match="unknown relation kind"):
            load_store(path)

    def test_bad_node_fields_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "node", "type": "class", "id": "cls_0", '
                        '"name": "X", "domain": "D", "extra_field": 1}\n')
        with pytest.raises(DataError, match="bad node record"):
            load_store(path)

    def test_truncated_file_is_detected(self, tmp_path):
        """A relation referencing a node cut off by truncation fails loudly
        instead of producing a silently broken store."""
        built = build_alicoco(TINY)
        path = tmp_path / "net.jsonl"
        save_store(built.store, path)
        lines = path.read_text().splitlines()
        # Drop all nodes, keep a relation: endpoints now dangle.
        relation_lines = [line for line in lines
                          if '"record": "relation"' in line]
        path.write_text(relation_lines[0] + "\n")
        from repro.errors import NodeNotFoundError
        with pytest.raises(NodeNotFoundError):
            load_store(path)


class TestOracleBudgetFailures:
    def test_budget_exhaustion_mid_experiment(self):
        """An annotation budget that runs out surfaces as a typed error the
        caller can catch — no silent mislabels."""
        from repro.synth import build_lexicon, Oracle, World
        world = World(build_lexicon(seed=7), seed=7)
        oracle = Oracle(world, budget=5)
        pairs = world.lexicon.hypernym_pairs("Category")[:10]
        labelled = []
        with pytest.raises(BudgetExhaustedError):
            for hyponym, hypernym in pairs:
                labelled.append(oracle.label_hypernym(hyponym, hypernym))
        assert len(labelled) == 5
        assert oracle.labels_used == 5

    def test_budget_spans_question_types(self):
        from repro.synth import build_lexicon, Oracle, World
        world = World(build_lexicon(seed=7), seed=7)
        rng = np.random.default_rng(0)
        spec = world.sample_good_concepts(rng, 1)[0]
        oracle = Oracle(world, budget=2)
        oracle.label_concept(spec)
        oracle.label_tagging(spec)
        with pytest.raises(BudgetExhaustedError):
            oracle.label_concept(spec)


class TestTrainingFailureModes:
    def test_crf_rejects_inconsistent_shapes_not_crashes(self, rng):
        from repro.errors import ShapeError
        from repro.ml.tensor import Tensor
        from repro.nlp.crf import LinearChainCRF
        crf = LinearChainCRF(3, rng)
        with pytest.raises(ShapeError):
            crf.fuzzy_nll(Tensor(np.zeros((2, 3))), [[0]])

    def test_miner_survives_degenerate_single_label_data(self):
        from repro.mining import BiLSTMCRFMiner, TaggedSentence
        from repro.mining.bilstm_crf import LabelSet
        from repro.nlp.vocab import Vocab
        data = [TaggedSentence(("x",), ("O",))] * 4
        vocab = Vocab.from_corpus([["x"]])
        miner = BiLSTMCRFMiner(vocab, LabelSet.from_data(data),
                               embedding_dim=4, hidden_dim=4, seed=0)
        history = miner.fit(data, epochs=2)
        assert all(np.isfinite(history))
        assert miner.predict(("x",)) == ["O"]

    def test_matcher_with_all_negative_training_stays_finite(self):
        """Degenerate click logs (nobody clicked) must not NaN the model."""
        from repro.matching import DSSMMatcher, train_matcher
        from repro.matching.base import matching_vocab
        from repro.matching.dataset import MatchingExample
        from repro.synth import build_lexicon, World
        from repro.synth.items import generate_items
        world = World(build_lexicon(seed=7), seed=7)
        items = generate_items(world, 20)
        specs = world.sample_good_concepts(np.random.default_rng(0), 5)
        examples = [MatchingExample(spec, item, 0)
                    for spec in specs for item in items[:4]]
        vocab = matching_vocab(examples)
        model = DSSMMatcher(vocab, dim=8, seed=0)
        history = train_matcher(model, examples, epochs=2, seed=0)
        assert all(np.isfinite(history))
        scores = model.score_pairs(examples[:3])
        assert np.all(np.isfinite(scores))
