"""Tests for the matching subsystem: dataset, baselines, knowledge model."""

import numpy as np
import pytest

from repro.errors import DataError, NotFittedError
from repro.concepts.classifier import lexicon_ner_lookup
from repro.matching import (
    BM25Matcher, build_matching_dataset, DSSMMatcher, evaluate_matcher,
    KnowledgeMatcher, MatchPyramidMatcher, RE2Matcher, train_matcher,
)
from repro.matching.base import matching_vocab
from repro.nlp.pos import PosTagger
from repro.synth import build_lexicon, World
from repro.synth.clicklog import simulate_clicks
from repro.synth.items import generate_items, item_matches_concept


@pytest.fixture(scope="module")
def setup():
    lexicon = build_lexicon(seed=7)
    world = World(lexicon, seed=7)
    items = generate_items(world, 250)
    rng = np.random.default_rng(9)
    concepts = world.sample_good_concepts(rng, 60)
    clicks = simulate_clicks(world, concepts, items,
                             impressions_per_concept=25)
    dataset = build_matching_dataset(world, concepts, items, clicks,
                                     np.random.default_rng(10),
                                     test_concepts=12,
                                     candidates_per_test_concept=20,
                                     extra_random_negatives=120)
    vocab = matching_vocab(dataset.train + dataset.test)
    pos = PosTagger(lexicon.pos_lexicon())
    ner_lookup, num_ner = lexicon_ner_lookup(lexicon)
    return {"world": world, "lexicon": lexicon, "dataset": dataset,
            "vocab": vocab, "pos": pos, "ner": ner_lookup,
            "num_ner": num_ner}


class TestDataset:
    def test_train_test_disjoint_concepts(self, setup):
        dataset = setup["dataset"]
        train_texts = {e.concept.text for e in dataset.train}
        test_texts = {e.concept.text for e in dataset.test}
        assert not train_texts & test_texts

    def test_test_set_has_both_labels(self, setup):
        labels = {e.label for e in setup["dataset"].test}
        assert labels == {0, 1}

    def test_test_grouping_consistent(self, setup):
        dataset = setup["dataset"]
        grouped = sum(len(v) for v in dataset.test_by_concept.values())
        assert grouped == len(dataset.test)

    def test_train_labels_mostly_correct(self, setup):
        """Click noise exists but the majority of labels match ground truth."""
        world, dataset = setup["world"], setup["dataset"]
        agree = total = 0
        for example in dataset.train:
            truth = item_matches_concept(world, example.item, example.concept)
            agree += int(truth == bool(example.label))
            total += 1
        assert agree / total > 0.7

    def test_requires_clicks(self, setup):
        with pytest.raises(DataError):
            build_matching_dataset(setup["world"], [], [], [],
                                   np.random.default_rng(0))


class TestBM25:
    def test_fit_and_score(self, setup):
        model = BM25Matcher().fit(setup["dataset"].train)
        scores = model.score_pairs(setup["dataset"].test[:5])
        assert scores.shape == (5,)
        assert np.all(scores >= 0)

    def test_unfitted_raises(self, setup):
        with pytest.raises(NotFittedError):
            BM25Matcher().score(["a"], ["a"])

    def test_exact_overlap_scores_higher(self, setup):
        model = BM25Matcher().fit(setup["dataset"].train)
        example = setup["dataset"].test[0]
        overlap = model.score(example.item.title_tokens,
                              example.item.title_tokens)
        none = model.score(["zzz"], example.item.title_tokens)
        assert overlap > none == 0.0

    def test_beats_random_auc(self, setup):
        model = BM25Matcher().fit(setup["dataset"].train)
        metrics = evaluate_matcher(model, setup["dataset"])
        assert metrics["auc"] > 0.5

    def test_doc_cache_bounded_by_fit_set(self, setup):
        # Regression: score() used to memoise every unseen title forever,
        # a memory leak under serving-style traffic.
        model = BM25Matcher().fit(setup["dataset"].train)
        fit_cache_size = len(model._doc_cache)
        for index in range(200):
            model.score(["query"], [f"unseen-title-{index}", "tokens"])
        assert len(model._doc_cache) == fit_cache_size

    def test_unseen_title_scores_like_fit_title_path(self, setup):
        # The uncached path must score identically to the cached one.
        model = BM25Matcher().fit(setup["dataset"].train)
        example = setup["dataset"].train[0]
        tokens = list(example.item.title_tokens)
        cached = model.score(tokens, tokens)
        model._doc_cache.pop(tuple(tokens))
        assert model.score(tokens, tokens) == cached


def _neural_smoke(model, setup, epochs=4):
    dataset = setup["dataset"]
    history = train_matcher(model, dataset.train, epochs=epochs,
                            lr=0.01, seed=4)
    assert history[-1] < history[0]
    metrics = evaluate_matcher(model, dataset, threshold=0.5)
    assert 0.0 <= metrics["auc"] <= 1.0
    assert metrics["auc"] > 0.5, "should beat random after training"
    return metrics


class TestNeuralMatchers:
    def test_dssm(self, setup):
        model = DSSMMatcher(setup["vocab"], dim=12, hidden=12, seed=1)
        _neural_smoke(model, setup)

    def test_match_pyramid(self, setup):
        model = MatchPyramidMatcher(setup["vocab"], dim=12, seed=1)
        _neural_smoke(model, setup)

    def test_re2(self, setup):
        model = RE2Matcher(setup["vocab"], dim=12, hidden=12, seed=1)
        _neural_smoke(model, setup)

    def test_knowledge_model_without_knowledge(self, setup):
        model = KnowledgeMatcher(setup["vocab"], setup["pos"], setup["ner"],
                                 setup["num_ner"], dim=12, conv_dim=12,
                                 seed=1)
        _neural_smoke(model, setup)

    def test_knowledge_model_with_knowledge(self, setup):
        def lookup(word):
            rng = np.random.default_rng(abs(hash(word)) % 2 ** 31)
            return rng.normal(size=8)

        model = KnowledgeMatcher(setup["vocab"], setup["pos"], setup["ner"],
                                 setup["num_ner"], knowledge_lookup=lookup,
                                 knowledge_dim=8, dim=12, conv_dim=12, seed=1)
        _neural_smoke(model, setup)

    def test_unfitted_raises(self, setup):
        model = DSSMMatcher(setup["vocab"], dim=8, seed=1)
        with pytest.raises(NotFittedError):
            model.score_pairs(setup["dataset"].test[:1])

    def test_train_empty_raises(self, setup):
        model = DSSMMatcher(setup["vocab"], dim=8, seed=1)
        with pytest.raises(DataError):
            train_matcher(model, [])


class TestTrainerUtilities:
    def test_early_stopping_truncates_epochs(self, setup):
        model = DSSMMatcher(setup["vocab"], dim=8, seed=1)
        history = train_matcher(model, setup["dataset"].train[:80],
                                epochs=30, lr=0.0,  # lr=0: loss never improves
                                seed=4, early_stopping_patience=2)
        assert len(history) < 30

    def test_calibrate_threshold_beats_fixed_on_train(self, setup):
        from repro.matching.trainer import calibrate_threshold
        from repro.utils.metrics import f1_score
        import numpy as np
        model = BM25Matcher().fit(setup["dataset"].train)
        examples = setup["dataset"].test
        cut = calibrate_threshold(model, examples)
        scores = np.asarray(model.score_pairs(examples))
        labels = [e.label for e in examples]
        calibrated = f1_score(labels, (scores >= cut).astype(int))
        fixed = f1_score(labels, (scores >= 0.5).astype(int))
        assert calibrated >= fixed

    def test_calibrate_empty_raises(self, setup):
        from repro.matching.trainer import calibrate_threshold
        from repro.errors import DataError
        model = BM25Matcher().fit(setup["dataset"].train)
        with pytest.raises(DataError):
            calibrate_threshold(model, [])


class TestEvaluate:
    def test_metrics_keys(self, setup):
        model = BM25Matcher().fit(setup["dataset"].train)
        metrics = evaluate_matcher(model, setup["dataset"])
        assert set(metrics) == {"auc", "f1", "p@10"}
        for value in metrics.values():
            assert 0.0 <= value <= 1.0

    def test_empty_test_raises(self, setup):
        from repro.matching.dataset import MatchingDataset
        model = BM25Matcher().fit(setup["dataset"].train)
        with pytest.raises(DataError):
            evaluate_matcher(model, MatchingDataset())
