"""The pluggable retrieval package: kernels, fusion, state, and wiring.

Pins the contracts the hybrid first stage is built on: ANN backends agree
with the brute-force oracle when told to look everywhere, RRF fusion is
deterministic and edge-case safe, every fitted index round-trips through
JSON state bit-identically (the snapshot warm-start path), and the
matching/serving facades gate, dispatch, and refit correctly.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigError, DataError, NotFittedError
from repro.matching import (
    BM25CandidateGenerator,
    CandidateGenerator,
    DSSMMatcher,
    train_matcher,
    retrieval_recall,
)
from repro.matching.base import matching_vocab
from repro.matching.dataset import build_matching_dataset
from repro.retrieval import (
    BM25Retriever,
    BruteForceDense,
    DENSE_BACKENDS,
    HNSWLiteIndex,
    HybridQuery,
    HybridRetriever,
    IVFIndex,
    dense_index_from_state,
    make_dense_index,
    retriever_from_state,
    rrf_fuse,
)
from repro.retrieval.dense import top_k_positions
from repro.synth.clicklog import simulate_clicks
from repro.synth.items import generate_items
from repro.synth.lexicon import build_lexicon
from repro.synth.world import World


@pytest.fixture(scope="module")
def corpus():
    """Clustered vectors: the regime ANN indexes are built for."""
    rng = np.random.default_rng(7)
    centers = rng.normal(size=(12, 24))
    vectors = (centers[rng.integers(12, size=400)]
               + 0.25 * rng.normal(size=(400, 24)))
    queries = (centers[rng.integers(12, size=25)]
               + 0.25 * rng.normal(size=(25, 24))).astype(np.float32)
    return list(range(400)), vectors, queries


def _ranking(pairs):
    return [doc_id for doc_id, _ in pairs]


# --------------------------------------------------------------- kernels
class TestDenseKernels:
    def test_bruteforce_matches_exhaustive_argsort(self, corpus):
        ids, vectors, queries = corpus
        index = BruteForceDense().fit(ids, vectors)
        normed = vectors / np.linalg.norm(vectors, axis=1, keepdims=True)
        for query in queries[:5]:
            unit = query / np.linalg.norm(query)
            scores = (normed @ unit).astype(np.float32)
            expected = np.lexsort((np.arange(len(ids)), -scores))[:10]
            got = _ranking(index.retrieve(query, 10))
            assert got == [ids[position] for position in expected]

    @pytest.mark.parametrize("backend", ["ivf", "hnsw"])
    def test_ann_parity_with_oracle_at_full_effort(self, corpus, backend):
        """With the knobs maxed (probe every cell / beam over everything)
        an ANN index must reproduce the oracle's ranking exactly; scores
        agree to float32-blocking tolerance (sub-matrix matmuls round
        differently at the ~1e-7 ULP level, never enough to cross a
        ranking tie, which both sides break by fit position)."""
        ids, vectors, queries = corpus
        oracle = BruteForceDense().fit(ids, vectors)
        if backend == "ivf":
            ann = IVFIndex(n_lists=20, nprobe=20).fit(ids, vectors)
        else:
            ann = HNSWLiteIndex(m=16, ef_construction=120,
                                ef_search=400).fit(ids, vectors)
        for query in queries:
            expected = oracle.retrieve(query, 15)
            got = ann.retrieve(query, 15)
            assert _ranking(got) == _ranking(expected)
            np.testing.assert_allclose(
                [score for _, score in got],
                [score for _, score in expected],
                atol=1e-5,
            )

    def test_ivf_scans_sublinearly(self, corpus):
        ids, vectors, queries = corpus
        index = IVFIndex(nprobe=2).fit(ids, vectors)
        for query in queries:
            index.retrieve(query, 10)
        stats = index.stats()
        assert stats.queries == len(queries)
        assert 0.0 < stats.scan_fraction < 0.5

    def test_hnsw_scans_sublinearly(self, corpus):
        ids, vectors, queries = corpus
        index = HNSWLiteIndex(m=8, ef_construction=40, ef_search=20)
        index.fit(ids, vectors)
        for query in queries:
            index.retrieve(query, 10)
        assert 0.0 < index.stats().scan_fraction < 1.0

    def test_top_k_positions_breaks_ties_by_position(self):
        scores = np.asarray([0.5, 0.9, 0.9, 0.1, 0.9], dtype=np.float32)
        positions = np.arange(5)
        best = top_k_positions(scores, positions, 3)
        assert positions[best].tolist() == [1, 2, 4]
        # Large-n argpartition path must agree with the small-n sort path.
        rng = np.random.default_rng(0)
        big = rng.choice(np.linspace(0, 1, 50), size=2000).astype(np.float32)
        arange = np.arange(2000)
        fast = top_k_positions(big, arange, 40)
        exact = np.lexsort((arange, -big))[:40]
        assert fast.tolist() == exact.tolist()

    def test_fit_validations(self):
        with pytest.raises(DataError):
            BruteForceDense(metric="euclid")
        with pytest.raises(DataError):
            BruteForceDense().fit([1, 2], [np.ones(3)])
        with pytest.raises(DataError):
            BruteForceDense().fit([], [])
        with pytest.raises(DataError):
            IVFIndex(nprobe=0)
        with pytest.raises(DataError):
            HNSWLiteIndex(m=0)
        with pytest.raises(NotFittedError):
            IVFIndex().retrieve(np.ones(4))
        index = BruteForceDense().fit([1], [np.ones(4)])
        with pytest.raises(DataError):
            index.retrieve(np.ones(3))  # dim mismatch

    def test_registry_dispatch(self):
        assert set(DENSE_BACKENDS) == {"bruteforce", "ivf", "hnsw"}
        assert isinstance(make_dense_index("ivf", nprobe=3), IVFIndex)
        with pytest.raises(DataError):
            make_dense_index("faiss")


# ------------------------------------------------------------------- RRF
class TestRRF:
    def test_formula(self):
        fused = dict(rrf_fuse([[("a", 9.0), ("b", 5.0)], [("b", 0.2)]], k=60))
        assert fused["a"] == pytest.approx(1 / 61)
        assert fused["b"] == pytest.approx(1 / 62 + 1 / 61)

    def test_empty_arm_passes_other_through(self):
        ranked = rrf_fuse([[], [("x", 1.0), ("y", 0.5)]])
        assert _ranking(ranked) == ["x", "y"]
        assert rrf_fuse([[], []]) == []

    def test_duplicate_id_counts_once_at_best_rank(self):
        ranked = dict(rrf_fuse([[("a", 2.0), ("a", 1.0), ("b", 0.5)]], k=60))
        assert ranked["a"] == pytest.approx(1 / 61)
        assert ranked["b"] == pytest.approx(1 / 62)  # rank 2, not 3

    def test_ties_break_by_first_appearance(self):
        # Two docs with identical fused mass: arm order decides.
        ranked = rrf_fuse([[("late", 1.0)], [("early", 1.0)]])
        assert _ranking(ranked) == ["late", "early"]

    def test_weights_scale_arms(self):
        heavy = rrf_fuse([[("d", 1.0)], [("l", 1.0)]], weights=[3.0, 1.0])
        assert _ranking(heavy)[0] == "d"
        with pytest.raises(ConfigError):
            rrf_fuse([[("a", 1.0)]], weights=[1.0, 2.0])
        with pytest.raises(ConfigError):
            rrf_fuse([[("a", 1.0)]], k=0)


# ----------------------------------------------------------------- hybrid
class TestHybridRetriever:
    @pytest.fixture()
    def fitted(self, corpus):
        ids, vectors, _ = corpus
        tokens = [("tok%d" % (i % 7), "doc%d" % i) for i in ids]
        hybrid = HybridRetriever(dense=BruteForceDense())
        return hybrid.fit(ids, list(zip(vectors, tokens))), vectors

    def test_fuses_both_arms(self, fitted):
        hybrid, vectors = fitted
        query = HybridQuery(tokens=("doc3", "tok3"), vector=vectors[3])
        assert _ranking(hybrid.retrieve(query, 5))[0] == 3

    def test_missing_arm_sits_out(self, fitted):
        hybrid, vectors = fitted
        dense_only = hybrid.retrieve(HybridQuery(vector=vectors[8]), 5)
        lexical_only = hybrid.retrieve(HybridQuery(tokens=("doc8",)), 5)
        assert _ranking(dense_only)[0] == 8
        assert _ranking(lexical_only)[0] == 8
        with pytest.raises(DataError):
            hybrid.retrieve(HybridQuery(), 5)

    def test_stats_combine(self, fitted):
        hybrid, vectors = fitted
        hybrid.retrieve(HybridQuery(tokens=("doc1",), vector=vectors[1]), 3)
        stats = hybrid.stats()
        assert stats.backend == "hybrid"
        assert stats.queries == 1
        assert stats.candidates_scored > 0


# ------------------------------------------------------------------ state
class TestStateRoundTrips:
    def _fit(self, backend, ids, vectors):
        if backend == "bruteforce":
            return BruteForceDense().fit(ids, vectors)
        if backend == "ivf":
            return IVFIndex(n_lists=10, nprobe=4).fit(ids, vectors)
        return HNSWLiteIndex(m=6, ef_construction=30,
                             ef_search=24).fit(ids, vectors)

    @pytest.mark.parametrize("backend", ["bruteforce", "ivf", "hnsw"])
    def test_warm_start_is_bit_identical(self, corpus, backend):
        ids, vectors, queries = corpus
        fresh = self._fit(backend, ids, vectors)
        # Through actual JSON, as a snapshot would store it.
        state = json.loads(json.dumps(fresh.to_state()))
        warm = dense_index_from_state(state)
        for query in queries:
            assert warm.retrieve(query, 10) == fresh.retrieve(query, 10)

    def test_lexical_and_hybrid_round_trip(self, corpus):
        ids, vectors, _ = corpus
        token_lists = [("tok%d" % (i % 5), "doc%d" % i) for i in ids]
        lexical = BM25Retriever().fit(ids, token_lists)
        state = json.loads(json.dumps(lexical.to_state()))
        warm = retriever_from_state(state)
        assert warm.retrieve(("doc7", "tok2"), 5) == \
            lexical.retrieve(("doc7", "tok2"), 5)

        hybrid = HybridRetriever(dense=IVFIndex(n_lists=8, nprobe=8))
        hybrid.fit(ids, list(zip(vectors, token_lists)))
        state = json.loads(json.dumps(hybrid.to_state()))
        warm = retriever_from_state(state)
        query = HybridQuery(tokens=("doc7",), vector=vectors[7])
        assert warm.retrieve(query, 5) == hybrid.retrieve(query, 5)

    def test_wrong_backend_tag_rejected(self, corpus):
        ids, vectors, _ = corpus
        state = BruteForceDense().fit(ids, vectors).to_state()
        with pytest.raises(DataError):
            IVFIndex.from_state(state)
        state["backend"] = "unheard-of"
        with pytest.raises(DataError):
            dense_index_from_state(state)

    @pytest.mark.parametrize("mangle", [
        lambda s: s.pop("matrix"),
        lambda s: s["matrix"].update(data="!!not-base64!!"),
        lambda s: s.update(ids=s["ids"][:-1]),
    ])
    def test_malformed_dense_state_rejected(self, corpus, mangle):
        ids, vectors, _ = corpus
        state = BruteForceDense().fit(ids, vectors).to_state()
        mangle(state)
        with pytest.raises(DataError):
            BruteForceDense.from_state(state)

    def test_malformed_ivf_and_hnsw_states_rejected(self, corpus):
        ids, vectors, _ = corpus
        ivf_state = IVFIndex(n_lists=6).fit(ids, vectors).to_state()
        ivf_state["assignments"][0] = 99  # out of centroid range
        with pytest.raises(DataError):
            IVFIndex.from_state(ivf_state)
        hnsw_state = HNSWLiteIndex(m=4).fit(ids, vectors).to_state()
        hnsw_state["entry"] = len(ids) + 5
        with pytest.raises(DataError):
            HNSWLiteIndex.from_state(hnsw_state)


# ---------------------------------------------------------------- facades
@pytest.fixture(scope="module")
def matching_world():
    rng = np.random.default_rng(9)
    lexicon = build_lexicon(seed=9)
    world = World(lexicon, seed=9)
    concepts = world.sample_good_concepts(rng, 30)
    items = generate_items(world, 90)
    clicks = simulate_clicks(world, concepts, items, impressions_per_concept=8)
    dataset = build_matching_dataset(world, concepts, items, clicks, rng,
                                     test_concepts=10)
    matcher = DSSMMatcher(matching_vocab(dataset.train), dim=8, hidden=8,
                          seed=0)
    train_matcher(matcher, dataset.train, epochs=2, lr=0.05, seed=0)
    return concepts, items, dataset, matcher


class TestCandidateGenerators:
    def test_refit_replaces_catalog_wholesale(self, matching_world):
        """Regression: a smaller refit must not serve items (or postings)
        left over from the previous, larger catalog."""
        concepts, items, _, _ = matching_world
        generator = BM25CandidateGenerator().fit(items)
        generator.fit(items[:4])
        survivors = {item.index for item in items[:4]}
        for concept in concepts:
            got = {item.index
                   for item, _ in generator.candidates(concept.tokens, 100)}
            assert got <= survivors

    def test_facade_bm25_matches_legacy_generator(self, matching_world):
        concepts, items, _, _ = matching_world
        legacy = BM25CandidateGenerator().fit(items)
        facade = CandidateGenerator("bm25").fit(items)
        for concept in concepts[:10]:
            expected = [(item.index, score)
                        for item, score in legacy.candidates(concept.tokens, 10)]
            got = [(item.index, score)
                   for item, score in facade.candidates(concept.tokens, 10)]
            assert got == expected

    def test_dense_mode_ranks_by_matcher_cosine(self, matching_world):
        """The dense first stage is faithful to the matcher it serves:
        brute-force retrieval over doc vectors orders candidates exactly
        as the matcher's own query/doc cosine does."""
        concepts, items, _, matcher = matching_world
        generator = CandidateGenerator("dense", matcher=matcher).fit(items)
        for concept in concepts[:5]:
            query = matcher.query_vector(concept.tokens)
            query = query / np.linalg.norm(query)
            cosines = []
            for item in items:
                doc = matcher.doc_vector(item.title_tokens)
                cosines.append(
                    (float(query @ (doc / np.linalg.norm(doc))), item.index)
                )
            expected = [index for _, index in
                        sorted(cosines, key=lambda pair: -pair[0])[:5]]
            got = [item.index for item, _ in
                   generator.candidates(concept.tokens, 5)]
            assert got == expected

    def test_recall_is_defined_for_every_mode(self, matching_world):
        _, items, dataset, matcher = matching_world
        for generator in (
            CandidateGenerator("bm25").fit(items),
            CandidateGenerator("dense", matcher=matcher).fit(items),
            CandidateGenerator("hybrid", matcher=matcher,
                               dense_backend="ivf").fit(items),
        ):
            recall = retrieval_recall(generator, dataset, k=30)
            assert 0.0 <= recall <= 1.0

    def test_capability_gating(self, matching_world):
        _, items, _, matcher = matching_world
        with pytest.raises(ConfigError):
            CandidateGenerator("ann")
        with pytest.raises(ConfigError):
            CandidateGenerator("dense")  # no matcher
        with pytest.raises(ConfigError):
            CandidateGenerator("hybrid", matcher=object())  # not dense-capable
        with pytest.raises(DataError):
            CandidateGenerator("bm25").fit([])
        generator = CandidateGenerator("dense", matcher=matcher,
                                       dense_backend="ivf", nprobe=2)
        assert generator.fit(items).stats().extra["nprobe"] == 2

    def test_matcher_vector_capability_flags(self, matching_world):
        _, _, _, matcher = matching_world
        assert matcher.dense_vectors is True
        query = matcher.query_vector(("red", "dress"))
        doc = matcher.doc_vector(("red", "dress"))
        assert query.shape == doc.shape
        # The encoding shortcut must agree with a fresh encode.
        encoding = matcher.encode_doc(("red", "dress"))
        np.testing.assert_array_equal(
            matcher.doc_vector(("red", "dress"), encoding=encoding), doc
        )
