"""Evolvable generations: copy-on-write deltas over a frozen base.

The paper's net is rebuilt offline and served frozen; between rebuilds
the catalog still moves.  :class:`~repro.kg.generations.GenerationalStore`
lets the serving tier absorb that drift without unfreezing anything:
writes land in an open delta, ``seal()``/``swap()`` publishes the next
numbered generation, and readers always see base + published deltas
through the unchanged store/query API.

These tests pin the three contracts the design stands on:

- **overlay reads == flattened reads**: every read API over the overlay
  must agree with a monolithic ``AliCoCoStore`` holding the same nodes
  in the same insertion order (``flatten`` is the oracle);
- **generation 0 is bit-identical**: a service over a zero-delta
  generational store answers all eight endpoints exactly like a service
  over the frozen base — including reranked tie-breaks;
- **publish is atomic and exact**: the incrementally-extended BM25 index
  equals a refit bit-for-bit, caches are generation-keyed instead of
  cleared, and snapshots round-trip the full generation history.
"""

import pytest

from repro.concepts import ConceptTagger
from repro.errors import (
    ConfigError,
    DataError,
    DuplicateNodeError,
    FrozenStoreError,
    NodeNotFoundError,
    RelationError,
)
from repro.kg import (
    AliCoCoStore,
    GenerationalStore,
    Item,
    Relation,
    RelationKind,
    flatten,
)
from repro.kg.serialize import (
    generational_store_from_snapshot,
    load_generations,
    load_snapshot,
    load_store,
    save_generations,
)
from repro.nlp.pos import PosTagger
from repro.nlp.vocab import Vocab
from repro.retrieval import BruteForceDense, HNSWLiteIndex, IVFIndex
from repro.retrieval.lexical import BM25Retriever
from repro.serving import (
    AliCoCoService,
    CacheCounters,
    LRUCache,
    ServiceConfig,
    fit_concept_index,
)

from tests.conftest import make_trained_reranker


@pytest.fixture(scope="module")
def reranker(built_tiny):
    return make_trained_reranker(built_tiny)


@pytest.fixture(scope="module")
def tagger(built_tiny):
    sentences = [list(spec.tokens) for spec in built_tiny.concepts]
    model = ConceptTagger(
        Vocab.from_corpus(sentences),
        built_tiny.lexicon,
        PosTagger(built_tiny.lexicon.pos_lexicon()),
        use_fuzzy=False,
        word_dim=8,
        char_dim=4,
        hidden_dim=6,
        seed=1,
    )
    model.fit(built_tiny.concepts, epochs=3, lr=0.02, seed=1)
    return model


def _grow(store: GenerationalStore, tag: str) -> tuple:
    """One writer round: a concept, an item, and the linking relation."""
    concept = store.create_ecommerce(f"fresh {tag} concept")
    item = store.create_item(f"fresh {tag} item title")
    store.add_relation(
        Relation(
            kind=RelationKind.ITEM_ECOMMERCE,
            source=item.id,
            target=concept.id,
            weight=0.9,
        )
    )
    return concept, item


# ----------------------------------------------------------- store semantics
class TestGenerationalStore:
    def test_generation_zero_reads_pass_through(self, built_tiny):
        base = built_tiny.store
        store = GenerationalStore(base)
        assert store.generation_id == 0
        assert len(store) == len(base)
        assert store.stats() == base.stats()
        node = next(base.nodes("ec"))
        assert store.get(node.id) == node
        assert store.count_nodes("item") == base.count_nodes("item")

    def test_store_is_frozen_for_the_serving_tier(self, built_tiny):
        store = GenerationalStore(built_tiny.store)
        assert store.frozen is True
        assert store.freeze() is store  # idempotent, returns self

    def test_writes_stay_invisible_until_publish(self, built_tiny):
        base = built_tiny.store
        store = GenerationalStore(base)
        concept, item = _grow(store, "pending")
        # Open-delta writes are tracked but not readable: the store's
        # read API always answers from the *published* view, so readers
        # can never observe a half-written generation.
        assert store.open_counts == (2, 1)
        assert concept.id not in store
        with pytest.raises(NodeNotFoundError):
            store.get(concept.id)
        with pytest.raises(NodeNotFoundError):
            base.get(concept.id)
        generation = store.publish()
        assert generation == 1
        assert store.open_counts == (0, 0)
        assert store.get(concept.id).text == "fresh pending concept"
        assert [
            node.id for node in store.targets(item.id, RelationKind.ITEM_ECOMMERCE)
        ] == [concept.id]

    def test_id_allocation_never_reuses_base_ids(self, built_tiny):
        store = GenerationalStore(built_tiny.store)
        taken = {node.id for node in built_tiny.store.nodes()}
        created = [store.create_ecommerce(f"alloc probe {i}") for i in range(3)]
        assert len({c.id for c in created}) == 3
        assert not taken & {c.id for c in created}

    def test_duplicate_and_dangling_writes_rejected(self, built_tiny):
        store = GenerationalStore(built_tiny.store)
        existing = next(built_tiny.store.nodes("item"))
        with pytest.raises(DuplicateNodeError):
            store.add_node(Item(id=existing.id, title="imposter"))
        concept, item = _grow(store, "dup")
        with pytest.raises(DuplicateNodeError):
            store.add_node(Item(id=item.id, title="imposter"))
        with pytest.raises(NodeNotFoundError):
            store.add_relation(
                Relation(
                    kind=RelationKind.ITEM_ECOMMERCE,
                    source="item_999999999",
                    target=concept.id,
                )
            )
        with pytest.raises(RelationError):  # endpoint in the wrong layer
            store.add_relation(
                Relation(
                    kind=RelationKind.ITEM_ECOMMERCE,
                    source=concept.id,
                    target=concept.id,
                )
            )
        # Duplicate triples are ignored, matching AliCoCoStore semantics.
        first = store.add_relation(
            Relation(
                kind=RelationKind.ITEM_ECOMMERCE,
                source=item.id,
                target=concept.id,
                weight=0.4,
            )
        )
        assert first.weight == 0.9  # the original edge, not the retry

    def test_sealed_segments_are_immutable(self, built_tiny):
        store = GenerationalStore(built_tiny.store)
        _grow(store, "sealed")
        store.publish()
        (segment,) = store.published_segments
        assert segment.sealed
        with pytest.raises(FrozenStoreError):
            segment._add_node(Item(id="item_999999998", title="late"))

    def test_empty_publish_is_a_noop(self, built_tiny):
        store = GenerationalStore(built_tiny.store)
        assert store.seal() is None
        assert store.publish() == 0
        _grow(store, "real")
        assert store.publish() == 1
        assert store.publish() == 1  # nothing new staged

    def test_generations_are_monotonic(self, built_tiny):
        store = GenerationalStore(built_tiny.store)
        for expected in (1, 2, 3):
            _grow(store, f"round-{expected}")
            assert store.publish() == expected
        assert [segment.sealed for segment in store.published_segments] == [True] * 3


# ------------------------------------------------- overlay vs flatten oracle
class TestOverlayReads:
    @pytest.fixture(scope="class")
    def grown(self, built_tiny):
        """Two published generations plus open writes, and the oracle."""
        store = GenerationalStore(built_tiny.store)
        _grow(store, "g1")
        store.publish()
        _grow(store, "g2a")
        _grow(store, "g2b")
        store.publish()
        oracle = flatten(store)
        return store, oracle

    def test_flatten_is_a_plain_store(self, grown):
        store, oracle = grown
        assert isinstance(oracle, AliCoCoStore)
        assert len(oracle) == len(store)

    def test_every_read_api_matches_the_oracle(self, grown):
        store, oracle = grown
        assert store.stats() == oracle.stats()
        for layer in ("cls", "pc", "ec", "item"):
            assert [n.id for n in store.nodes(layer)] == [
                n.id for n in oracle.nodes(layer)
            ]
            assert store.count_nodes(layer) == oracle.count_nodes(layer)
        assert [n.id for n in store.nodes()] == [n.id for n in oracle.nodes()]
        for kind in RelationKind:
            assert list(store.relations(kind)) == list(oracle.relations(kind))
            assert store.count_relations(kind) == oracle.count_relations(kind)

    def test_point_reads_match_the_oracle(self, grown):
        store, oracle = grown
        for node in oracle.nodes("ec"):
            assert store.get(node.id) == node
            assert node.id in store
            assert store.in_relations(
                node.id, RelationKind.ITEM_ECOMMERCE
            ) == oracle.in_relations(node.id, RelationKind.ITEM_ECOMMERCE)
            assert store.targets(
                node.id, RelationKind.INTERPRETED_BY
            ) == oracle.targets(node.id, RelationKind.INTERPRETED_BY)
        assert store.find_by_name("ec", "fresh g2a concept") == oracle.find_by_name(
            "ec", "fresh g2a concept"
        )

    def test_domain_queries_match_the_oracle(self, grown):
        store, oracle = grown
        domains = {node.domain for node in oracle.nodes("cls")}
        for domain in domains:
            assert store.classes_in_domain(domain) == oracle.classes_in_domain(domain)
            assert store.primitives_in_domain(domain) == (
                oracle.primitives_in_domain(domain)
            )

    def test_flatten_rejects_foreign_types(self):
        with pytest.raises(ConfigError):
            flatten(object())


# ------------------------------------------- zero-delta serving bit-identity
class TestZeroDeltaServingParity:
    """A generational service with no deltas answers exactly like frozen."""

    @pytest.fixture(scope="class", params=["bm25", "hybrid"])
    def services(self, request, built_tiny, tagger, reranker):
        config = ServiceConfig(seed=0, retriever=request.param)
        frozen = AliCoCoService(
            built_tiny.store, config=config, tagger=tagger, reranker=reranker
        )
        generational = AliCoCoService(
            GenerationalStore(built_tiny.store),
            config=config,
            tagger=tagger,
            reranker=reranker,
        )
        return frozen, generational

    def test_all_eight_endpoints_bit_identical(self, services, built_tiny):
        frozen, generational = services
        assert generational.generation_id == 0
        requests = []
        for spec in built_tiny.concepts[:6]:
            concept_id = built_tiny.concept_ids[spec.text]
            requests += [
                ("search", spec.text),
                ("items_for_concept", concept_id, 5),
                ("interpretation", concept_id),
                ("tag", spec.text),
                ("items_for_concept_reranked", concept_id, 5),
                ("search_reranked", spec.text, 5),
            ]
        for index in range(4):
            requests.append(("concepts_for_item", built_tiny.item_ids[index]))
        for primitive_id in list(built_tiny.primitive_ids.values())[:4]:
            requests.append(("hypernyms", primitive_id, True))
        assert generational.batch(requests) == frozen.batch(requests)


# ------------------------------------------------------------- publish flow
class TestPublishServing:
    def test_publish_serves_new_nodes_and_keeps_old_answers(self, built_tiny):
        store = GenerationalStore(built_tiny.store)
        service = AliCoCoService(store, config=ServiceConfig(seed=0))
        spec = built_tiny.concepts[0]
        before = service.search(spec.text)
        concept, item = _grow(store, "served")
        assert service.search("fresh served concept") == ()  # pinned at gen 0
        generation = service.publish()
        assert generation == 1
        assert service.generation_id == 1
        hits = service.search("fresh served concept")
        assert hits and hits[0][0] == concept.id
        items = service.items_for_concept(concept.id, 5)
        assert [entry[0] for entry in items] == [item.id]
        # Graph answers for old keys are untouched; BM25 *scores* for old
        # queries legitimately shift (idf/avgdl are corpus statistics),
        # but exactly as a refit over the flattened store would shift them.
        old_id = built_tiny.concept_ids[spec.text]
        assert service.items_for_concept(old_id, 5) == tuple(
            (r.source, r.weight)
            for r in sorted(
                built_tiny.store.in_relations(old_id, RelationKind.ITEM_ECOMMERCE),
                key=lambda r: -r.weight,
            )[:5]
        )
        refit = AliCoCoService(flatten(store), config=ServiceConfig(seed=0))
        assert service.search(spec.text) == refit.search(spec.text)
        assert before[0][0] == service.search(spec.text)[0][0]

    def test_publish_requires_a_generational_store(self, built_tiny):
        service = AliCoCoService(built_tiny.store)
        with pytest.raises(ConfigError):
            service.publish()

    def test_swap_keys_the_cache_instead_of_clearing_it(self, built_tiny):
        store = GenerationalStore(built_tiny.store)
        service = AliCoCoService(store, config=ServiceConfig(seed=0))
        spec = built_tiny.concepts[0]
        service.search(spec.text)
        service.search(spec.text)
        assert service._cache.counters().hits == 1
        populated = len(service._cache)
        _grow(store, "cache-key")
        service.publish()
        # The old generation's entries are still in the cache (retired
        # keys age out by LRU, they are never torched)...
        assert len(service._cache) == populated
        # ...and the new generation starts with a fresh stats window.
        service.search(spec.text)  # miss: new generation, new key
        windows = service.stats().cache_generations
        assert [label for label, *_ in windows] == ["gen-0", "gen-1"]
        assert windows[1][2] >= 1  # misses in the gen-1 window

    def test_incremental_bm25_equals_refit_bit_for_bit(self, built_tiny):
        store = GenerationalStore(built_tiny.store)
        service = AliCoCoService(store, config=ServiceConfig(seed=0))
        for round_tag in ("inc-a", "inc-b"):
            _grow(store, round_tag)
            service.publish()
        refit = fit_concept_index(flatten(store))
        assert service._search_index.to_state() == refit.to_state()

    def test_noop_publish_keeps_the_generation_bundle(self, built_tiny):
        store = GenerationalStore(built_tiny.store)
        service = AliCoCoService(store, config=ServiceConfig(seed=0))
        bundle = service._gen
        assert service.publish() == 0
        assert service._gen is bundle


# -------------------------------------------------------- snapshot round trip
class TestGenerationSnapshots:
    @pytest.fixture()
    def grown(self, built_tiny):
        store = GenerationalStore(built_tiny.store)
        _grow(store, "snap-1")
        store.publish()
        _grow(store, "snap-2")
        store.publish()
        return store

    def test_round_trip_restores_generation_history(self, grown, tmp_path):
        path = tmp_path / "net.gen.jsonl"
        save_generations(grown, path)
        restored = load_generations(path)
        assert isinstance(restored, GenerationalStore)
        assert restored.generation_id == 2
        assert len(restored.published_segments) == 2
        assert restored.stats() == grown.stats()
        assert [n.id for n in restored.nodes()] == [n.id for n in grown.nodes()]
        # The restored store keeps evolving from where it left off.
        _grow(restored, "snap-3")
        assert restored.publish() == 3

    def test_open_writes_never_ride_a_snapshot(self, grown, tmp_path):
        _grow(grown, "snap-open")  # staged but unpublished
        path = tmp_path / "net.gen.jsonl"
        save_generations(grown, path)
        restored = load_generations(path)
        assert restored.generation_id == 2
        assert not restored.find_by_name("ec", "fresh snap-open concept")

    def test_load_store_flattens_the_deltas(self, grown, tmp_path):
        path = tmp_path / "net.gen.jsonl"
        save_generations(grown, path)
        flat = load_store(path)
        assert isinstance(flat, AliCoCoStore)
        assert flat.stats() == grown.stats()

    def test_save_generations_rejects_plain_stores(self, built_tiny, tmp_path):
        with pytest.raises(ConfigError):
            save_generations(built_tiny.store, tmp_path / "bad.jsonl")

    def test_corrupt_generation_numbering_is_loud(self, grown, tmp_path):
        path = tmp_path / "net.gen.jsonl"
        save_generations(grown, path)
        text = path.read_text(encoding="utf-8")
        assert '"generation": 2' in text
        path.write_text(
            text.replace('"generation": 2', '"generation": 7'), encoding="utf-8"
        )
        snapshot = load_snapshot(path)
        with pytest.raises(DataError):
            generational_store_from_snapshot(snapshot)

    def test_service_snapshot_round_trip_keeps_generations(self, built_tiny, tmp_path):
        store = GenerationalStore(built_tiny.store)
        service = AliCoCoService(store, config=ServiceConfig(seed=0))
        concept, _ = _grow(store, "svc-snap")
        service.publish()
        path = tmp_path / "svc.gen.jsonl"
        service.save_snapshot(path)
        warm = AliCoCoService.from_snapshot(path)
        assert warm.generation_id == 1
        assert warm.search("fresh svc-snap concept") == service.search(
            "fresh svc-snap concept"
        )
        assert warm.items_for_concept(concept.id, 5) == service.items_for_concept(
            concept.id, 5
        )


# ------------------------------------------------------------- cache counters
class TestCacheCounters:
    def test_snapshot_is_consistent(self):
        cache = LRUCache(capacity=4)
        for key in range(6):
            cache.get(key)
            cache.put(key, key)
        cache.get(5)
        counters = cache.counters()
        assert isinstance(counters, CacheCounters)
        assert counters.hits == 1
        assert counters.misses == 6
        assert counters.evictions == 2
        assert counters.lookups == counters.hits + counters.misses

    def test_clear_keeps_counters_by_default(self):
        cache = LRUCache(capacity=4)
        cache.get("k")
        cache.put("k", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.counters().misses == 1
        cache.clear(reset_counters=True)
        assert cache.counters() == CacheCounters()

    def test_generation_windows_partition_the_totals(self):
        cache = LRUCache(capacity=8)
        cache.get("a")
        cache.put("a", 1)
        cache.begin_generation("gen-1")
        cache.get("a")
        cache.get("b")
        windows = cache.generation_counters()
        assert [label for label, _ in windows] == ["gen-0", "gen-1"]
        total = cache.counters()
        assert sum(w.hits for _, w in windows) == total.hits
        assert sum(w.misses for _, w in windows) == total.misses


# ------------------------------------------------------- retriever add units
class TestRetrieverAdd:
    def test_default_add_is_a_loud_config_error(self):
        from repro.retrieval.base import BaseRetriever, RetrieverStats

        class Static(BaseRetriever):
            backend = "static"

            def fit(self, ids, data):
                return self

            def retrieve(self, query, top_k=10):
                return []

            def stats(self):
                return RetrieverStats(backend="static", size=0, dim=0)

            def to_state(self):
                return {}

        assert Static.supports_add is False
        with pytest.raises(ConfigError):
            Static().add([1], [None])

    def test_bruteforce_add_equals_refit(self):
        import numpy as np

        rng = np.random.default_rng(0)
        vectors = [rng.normal(size=6) for _ in range(12)]
        grown = BruteForceDense().fit(list(range(8)), vectors[:8])
        grown.add(list(range(8, 12)), vectors[8:])
        refit = BruteForceDense().fit(list(range(12)), vectors)
        query = rng.normal(size=6)
        assert grown.retrieve(query, 12) == refit.retrieve(query, 12)

    def test_ivf_add_merges_into_nearest_centroid(self):
        import numpy as np

        rng = np.random.default_rng(1)
        vectors = [rng.normal(size=6) for _ in range(20)]
        index = IVFIndex(n_lists=3, nprobe=3, seed=0).fit(
            list(range(16)), vectors[:16]
        )
        index.add([16, 17, 18, 19], vectors[16:])
        assert index.stats().extra["added_since_fit"] == 4
        assert index.stats().size == 20
        hits = index.retrieve(vectors[17], 5)
        assert hits[0][0] == 17  # the added vector is its own best match

    def test_hnsw_add_inserts_natively(self):
        import numpy as np

        rng = np.random.default_rng(2)
        vectors = [rng.normal(size=6) for _ in range(20)]
        index = HNSWLiteIndex(seed=0).fit(list(range(16)), vectors[:16])
        index.add([16, 17, 18, 19], vectors[16:])
        assert index.stats().size == 20
        hits = index.retrieve(vectors[18], 5)
        assert hits[0][0] == 18

    def test_bm25_retriever_add_extends_the_postings(self):
        docs = [("alpha", "beta"), ("beta", "gamma"), ("delta",), ("alpha", "delta")]
        grown = BM25Retriever().fit(["d0", "d1"], docs[:2])
        grown.add(["d2", "d3"], docs[2:])
        refit = BM25Retriever().fit(["d0", "d1", "d2", "d3"], docs)
        assert grown.retrieve(("alpha", "delta"), 4) == refit.retrieve(
            ("alpha", "delta"), 4
        )


# ---------------------------------------------------------------- compaction
class TestCompaction:
    """Folding the segment chain is invisible to every reader."""

    def _grown(self, built_tiny, **kwargs):
        store = GenerationalStore(built_tiny.store, **kwargs)
        for tag in ("c1", "c2", "c3"):
            _grow(store, tag)
            store.publish()
        return store

    def _assert_reads_match(self, store, oracle):
        assert store.stats() == oracle.stats()
        assert [n.id for n in store.nodes()] == [n.id for n in oracle.nodes()]
        for kind in RelationKind:
            assert list(store.relations(kind)) == list(oracle.relations(kind))
        for node in oracle.nodes("ec"):
            assert store.get(node.id) == node
            assert store.in_relations(
                node.id, RelationKind.ITEM_ECOMMERCE
            ) == oracle.in_relations(node.id, RelationKind.ITEM_ECOMMERCE)
        assert store.find_by_name("ec", "fresh c2 concept") == oracle.find_by_name(
            "ec", "fresh c2 concept"
        )

    def test_compact_is_bit_identical_and_keeps_the_generation(self, built_tiny):
        store = self._grown(built_tiny)
        oracle = flatten(store)
        assert len(store.published_segments) == 3
        assert store.compact() == 3
        assert store.generation_id == 3  # a representation change, not a publish
        assert store.base_generation == 3
        assert store.published_segments == ()
        self._assert_reads_match(store, oracle)

    def test_compact_on_a_zero_segment_store_is_a_noop(self, built_tiny):
        store = GenerationalStore(built_tiny.store)
        assert store.compact() == 0
        assert store.base_generation == 0

    def test_pinned_readers_survive_compaction(self, built_tiny):
        store = self._grown(built_tiny)
        view = store.current()
        expected = [n.id for n in view.nodes("ec")]
        store.compact()
        assert [n.id for n in view.nodes("ec")] == expected
        assert view.get(expected[-1]).id == expected[-1]

    def test_open_and_staged_writes_survive_compaction(self, built_tiny):
        store = self._grown(built_tiny)
        _grow(store, "staged")
        store.seal()
        concept, _ = _grow(store, "open")
        store.compact()
        assert not store.find_by_name("ec", "fresh staged concept")
        assert store.publish() == 4
        assert store.find_by_name("ec", "fresh staged concept")
        assert store.get(concept.id) == concept

    def test_auto_compaction_bounds_the_chain(self, built_tiny):
        store = GenerationalStore(built_tiny.store, compact_after_segments=2)
        twin = GenerationalStore(built_tiny.store)
        for round_index in range(5):
            _grow(store, f"auto-{round_index}")
            _grow(twin, f"auto-{round_index}")
            assert store.publish() == twin.publish()
            assert len(store.published_segments) <= 2
        assert store.base_generation > 0
        self._assert_reads_match(store, flatten(twin))

    def test_snapshot_round_trip_after_compaction(self, built_tiny, tmp_path):
        store = self._grown(built_tiny)
        store.compact()
        path = tmp_path / "compacted.gen.jsonl"
        save_generations(store, path)
        restored = load_generations(path)
        assert restored.generation_id == 3
        assert restored.base_generation == 3
        assert restored.stats() == store.stats()
        assert [n.id for n in restored.nodes()] == [n.id for n in store.nodes()]
        _grow(restored, "after-compact")
        assert restored.publish() == 4

    def test_all_eight_endpoints_bit_identical_across_compaction(
        self, built_tiny, tagger, reranker, tmp_path
    ):
        config = ServiceConfig(seed=0)
        store = self._grown(built_tiny)
        service = AliCoCoService(
            store, config=config, tagger=tagger, reranker=reranker
        )
        requests = []
        for spec in built_tiny.concepts[:4]:
            concept_id = built_tiny.concept_ids[spec.text]
            requests += [
                ("search", spec.text),
                ("items_for_concept", concept_id, 5),
                ("interpretation", concept_id),
                ("tag", spec.text),
                ("items_for_concept_reranked", concept_id, 5),
                ("search_reranked", spec.text, 5),
            ]
        requests.append(("search", "fresh c2 concept"))
        for index in range(3):
            requests.append(("concepts_for_item", built_tiny.item_ids[index]))
        for primitive_id in list(built_tiny.primitive_ids.values())[:3]:
            requests.append(("hypernyms", primitive_id, True))
        before = service.batch(requests)
        assert store.compact() == 3
        assert service.generation_id == 3
        assert service.batch(requests) == before
        # ...and the compacted net snapshots and warm-starts identically.
        path = tmp_path / "compact.svc.jsonl"
        service.save_snapshot(path)
        warm = AliCoCoService.from_snapshot(
            path, config=config, tagger=tagger, reranker=reranker
        )
        assert warm.generation_id == 3
        assert warm.batch(requests) == before


# ------------------------------------------------------------- empty segments
class TestEmptySegments:
    """Empty deltas never lengthen the chain or mint no-op generations."""

    def test_seal_on_an_empty_delta_returns_none(self, built_tiny):
        store = GenerationalStore(built_tiny.store)
        assert store.seal() is None
        assert store.publish() == 0
        assert store.published_segments == ()

    def test_hand_staged_empty_segment_is_dropped(self, built_tiny):
        from repro.kg.generations import DeltaSegment

        store = GenerationalStore(built_tiny.store)
        store._staged.append(DeltaSegment())
        assert store.swap() == 0
        assert store.published_segments == ()

    def test_empty_segments_dropped_alongside_real_ones(self, built_tiny):
        from repro.kg.generations import DeltaSegment

        store = GenerationalStore(built_tiny.store)
        store._staged.append(DeltaSegment())
        _grow(store, "real")
        store.seal()
        store._staged.append(DeltaSegment())
        assert store.swap() == 1
        assert len(store.published_segments) == 1
        assert store.find_by_name("ec", "fresh real concept")
