"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, deterministically seeded generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def built_tiny():
    """One TINY build shared by the serving-tier test modules."""
    from repro import TINY, build_alicoco

    return build_alicoco(TINY)


def make_trained_reranker(built, *, seed=1, epochs=2):
    """A small trained DSSM matcher over a build's graph adjacency."""
    from repro.kg.relations import RelationKind
    from repro.matching import DSSMMatcher, train_matcher
    from repro.matching.base import matching_vocab
    from repro.matching.dataset import pair_from_texts

    store = built.store
    pairs = []
    for spec in built.concepts[:8]:
        concept_id = built.concept_ids[spec.text]
        linked = {
            relation.source
            for relation in store.in_relations(
                concept_id, RelationKind.ITEM_ECOMMERCE
            )
        }
        for index in range(6):
            item_id = built.item_ids[index]
            title_tokens = store.get(item_id).title.split()
            pairs.append(
                pair_from_texts(
                    spec.tokens, title_tokens, label=int(item_id in linked)
                )
            )
    model = DSSMMatcher(matching_vocab(pairs), dim=8, hidden=8, seed=seed)
    train_matcher(model, pairs, epochs=epochs, lr=0.05, seed=0)
    return model


@pytest.fixture(scope="session")
def trained_reranker(built_tiny):
    """A trained reranker shared by the cluster/concurrency suites."""
    return make_trained_reranker(built_tiny)
