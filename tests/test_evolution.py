"""The background evolution loop: mine -> classify -> link -> match -> publish.

Contracts under test:

- **determinism**: two drivers with the same seed over identical stores
  stage identical concepts and relations, cycle for cycle — the
  background thread runs exactly ``run_cycle()``, so scripted tests
  predict what the thread builds;
- **end-to-end visibility**: a mined concept is searchable, interpreted
  and item-linked through the serving API after a publish, without a
  restart;
- **publish policy**: the size trigger ships a full delta immediately,
  the interval trigger ships a stale trickle, and nothing publishes
  below both thresholds until ``drain()``;
- **degradation**: a failing stage retries with backoff and then wedges
  the driver; serving continues on the last good generation, and
  ``resume()`` restarts a wedged loop;
- **atomicity under load**: readers hammering a service while the driver
  publishes only ever observe whole generations.
"""

import threading
import time

import pytest

from repro.errors import ConfigError, DataError
from repro.kg import GenerationalStore
from repro.kg.ids import ECOMMERCE_PREFIX
from repro.pipeline import (
    EVOLUTION_STAGES,
    EvolutionConfig,
    EvolutionDriver,
    EvolutionState,
    classifier_stage,
)
from repro.serving import AliCoCoService, ServiceConfig
from repro.utils.rng import spawn_rng

FAST = dict(n_queries=10, n_guides=6, n_good=3, n_bad=2, cycle_interval=0.0)


def _driver(built, target=None, **overrides):
    """A driver (and its service) over a fresh generational twin."""
    stage_kwargs = {
        key: overrides.pop(key)
        for key in ("mine", "classify", "link", "match", "clock")
        if key in overrides
    }
    store = GenerationalStore(built.store)
    service = AliCoCoService(store, config=ServiceConfig(seed=0))
    config = EvolutionConfig(**{**FAST, **overrides})
    driver = EvolutionDriver.from_build(
        built, target if target is not None else service, config=config,
        **stage_kwargs)
    return store, service, driver


def _fresh_spec(built):
    """A good world concept whose text is not yet in the built store."""
    known = {node.text for node in built.store.nodes(ECOMMERCE_PREFIX)}
    for spec in built.world.sample_good_concepts(spawn_rng(123, "fresh"), 20):
        if spec.text not in known:
            return spec
    raise AssertionError("pattern space exhausted")  # pragma: no cover


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestConfigValidation:
    @pytest.mark.parametrize("bad", [
        dict(n_good=0), dict(n_queries=0), dict(publish_min_nodes=0),
        dict(max_retries=0), dict(n_bad=-1), dict(backoff_base=-0.1),
        dict(cycle_interval=-1.0), dict(match_items=-1),
    ])
    def test_bad_knobs_are_loud(self, bad):
        with pytest.raises(ConfigError):
            EvolutionConfig(**bad)

    def test_classifier_stage_threshold_bounds(self):
        with pytest.raises(ConfigError):
            classifier_stage(object(), threshold=1.5)

    def test_frozen_targets_are_rejected(self, built_tiny):
        with pytest.raises(ConfigError, match="GenerationalStore"):
            EvolutionDriver.from_build(
                built_tiny, AliCoCoService(built_tiny.store))
        with pytest.raises(ConfigError, match="GenerationalStore"):
            EvolutionDriver.from_build(built_tiny, built_tiny.store)


class TestRunCycle:
    def test_twin_drivers_build_identical_stores(self, built_tiny):
        reports = []
        stores = []
        for _ in range(2):
            store, _, driver = _driver(built_tiny, seed=17,
                                       publish_min_nodes=1)
            reports.append([driver.run_cycle() for _ in range(3)])
            stores.append(store)
        assert reports[0] == reports[1]
        left, right = stores
        assert [(n.id, n.text) for n in left.nodes(ECOMMERCE_PREFIX)] == [
            (n.id, n.text) for n in right.nodes(ECOMMERCE_PREFIX)
        ]
        assert list(left.relations()) == list(right.relations())

    def test_mined_concept_is_served_end_to_end(self, built_tiny):
        store, service, driver = _driver(built_tiny, seed=17,
                                         publish_min_nodes=1)
        before = len(store)
        report = driver.run_cycle()
        assert report.accepted > 0
        assert report.published_generation == 1
        assert service.generation_id == 1
        new = list(store.nodes(ECOMMERCE_PREFIX))[-report.accepted:]
        for node in new:
            hits = service.search(node.text, k=3)
            assert hits and hits[0][0] == node.id  # searchable, no restart
            assert service.interpretation(node.id)  # linked to primitives
            service.items_for_concept(node.id)  # matched (possibly empty)
        assert len(store) == before + report.accepted

    def test_bad_candidates_are_rejected_not_staged(self, built_tiny):
        _, _, driver = _driver(built_tiny, seed=17)
        report = driver.run_cycle()
        assert report.rejected > 0
        stats = driver.stats()
        assert stats.concepts_rejected == report.rejected
        # Only accepted concepts (and their relations) were staged.
        assert stats.open_nodes == report.accepted

    def test_reject_everything_classifier_stages_nothing(self, built_tiny):
        store, _, driver = _driver(built_tiny, seed=17)
        driver._classify = lambda spec: False
        report = driver.run_cycle()
        assert report.accepted == 0
        assert report.rejected == report.candidates
        assert store.open_counts == (0, 0)

    def test_duplicates_are_skipped_staged_and_published(self, built_tiny):
        spec = _fresh_spec(built_tiny)
        # Staged but unpublished: the second cycle must not re-create it.
        _, _, driver = _driver(built_tiny, publish_min_nodes=100,
                               publish_max_interval=1e9,
                               mine=lambda batch: [spec])
        assert driver.run_cycle().accepted == 1
        assert driver.run_cycle().duplicates == 1
        # Published: find_by_name sees it.
        _, _, driver = _driver(built_tiny, publish_min_nodes=1,
                               mine=lambda batch: [spec])
        assert driver.run_cycle().published_generation == 1
        assert driver.run_cycle().duplicates == 1

    def test_classifier_stage_wraps_predict_proba(self, built_tiny):
        spec = _fresh_spec(built_tiny)

        class Stub:
            def predict_proba(self, texts):
                return [0.9 if texts[0] == spec.text else 0.1]

        accept = classifier_stage(Stub(), threshold=0.5)
        assert accept(spec) is True
        assert accept(built_tiny.concepts[0]) is False


class TestPublishPolicy:
    def test_size_trigger_ships_immediately(self, built_tiny):
        clock = [0.0]
        _, service, driver = _driver(built_tiny, seed=17, publish_min_nodes=1,
                                     publish_max_interval=1e9,
                                     clock=lambda: clock[0])
        report = driver.run_cycle()
        assert report.published_generation == 1
        assert service.generation_id == 1

    def test_interval_trigger_ships_a_stale_trickle(self, built_tiny):
        clock = [0.0]
        store, _, driver = _driver(built_tiny, seed=17, publish_min_nodes=100,
                                   publish_max_interval=10.0,
                                   clock=lambda: clock[0])
        assert driver.run_cycle().published_generation is None
        assert store.open_counts[0] > 0  # trickle held open
        clock[0] = 11.0
        assert driver.run_cycle().published_generation == 1
        assert store.open_counts == (0, 0)

    def test_nothing_ships_below_both_thresholds_until_drain(self, built_tiny):
        clock = [0.0]
        store, service, driver = _driver(built_tiny, seed=17,
                                         publish_min_nodes=100,
                                         publish_max_interval=1e9,
                                         clock=lambda: clock[0])
        for _ in range(3):
            assert driver.run_cycle().published_generation is None
        assert service.generation_id == 0
        assert driver.stats().publishes == 0
        assert driver.drain() == 1  # inline flush: driver never started
        assert service.generation_id == 1
        assert store.open_counts == (0, 0)
        assert driver.state is EvolutionState.STOPPED


class TestLifecycle:
    def test_background_loop_publishes_and_drains(self, built_tiny):
        store, service, driver = _driver(built_tiny, seed=29,
                                         publish_min_nodes=2)
        driver.start()
        assert driver.state is EvolutionState.RUNNING
        with pytest.raises(ConfigError, match="already"):
            driver.start()
        assert _wait_for(lambda: driver.stats().publishes >= 2)
        driver.pause()
        assert driver.state is EvolutionState.PAUSED
        time.sleep(0.1)  # the in-flight cycle may still finish
        paused_cycles = driver.stats().cycles
        time.sleep(0.1)
        assert driver.stats().cycles == paused_cycles  # loop really held
        driver.resume()
        assert _wait_for(lambda: driver.stats().cycles > paused_cycles)
        generation = driver.drain()
        assert driver.state is EvolutionState.STOPPED
        assert generation == service.generation_id == store.generation_id
        assert store.open_counts == (0, 0)

    def test_invalid_transitions_are_loud(self, built_tiny):
        _, _, driver = _driver(built_tiny)
        with pytest.raises(ConfigError, match="pause"):
            driver.pause()
        with pytest.raises(ConfigError, match="resume"):
            driver.resume()

    def test_stop_abandons_nothing(self, built_tiny):
        store, _, driver = _driver(built_tiny, seed=17, publish_min_nodes=100,
                                   publish_max_interval=1e9)
        driver.run_cycle()
        driver.stop()  # no final publish...
        assert store.open_counts[0] > 0
        assert driver.drain() == 1  # ...but the work is still shippable


class TestDegradation:
    def test_failing_stage_backs_off_then_wedges(self, built_tiny):
        _, service, driver = _driver(built_tiny, seed=17, max_retries=3,
                                     backoff_base=0.0, publish_min_nodes=1)
        healthy = service.search(built_tiny.concepts[0].text)
        generation = service.generation_id

        def broken(batch):
            raise DataError("miner fell over")

        driver._mine = broken
        driver.start()
        assert _wait_for(lambda: driver.state is EvolutionState.WEDGED)
        stats = driver.stats()
        assert stats.consecutive_failures == 3
        assert stats.failures == 3
        assert "DataError" in stats.last_error
        # Degraded, not down: the last good generation keeps serving.
        assert service.generation_id == generation
        assert service.search(built_tiny.concepts[0].text) == healthy

    def test_resume_restarts_a_wedged_loop(self, built_tiny):
        _, service, driver = _driver(built_tiny, seed=17, max_retries=2,
                                     backoff_base=0.0, publish_min_nodes=1)
        default_mine = driver._mine
        calls = []

        def flaky(batch):
            calls.append(batch.cycle_index)
            if len(calls) <= 2:
                raise DataError("transient")
            return default_mine(batch)

        driver._mine = flaky
        driver.start()
        assert _wait_for(lambda: driver.state is EvolutionState.WEDGED)
        driver.resume()
        assert driver.stats().consecutive_failures == 0
        assert _wait_for(lambda: driver.stats().publishes >= 1)
        driver.drain()
        assert service.generation_id >= 1

    def test_transient_failures_recover_without_wedging(self, built_tiny):
        _, _, driver = _driver(built_tiny, seed=17, max_retries=5,
                               backoff_base=0.0, publish_min_nodes=1)
        default_mine = driver._mine
        calls = []

        def flaky(batch):
            calls.append(batch.cycle_index)
            if len(calls) == 1:
                raise DataError("one bad batch")
            return default_mine(batch)

        driver._mine = flaky
        driver.start()
        assert _wait_for(lambda: driver.stats().publishes >= 1)
        driver.drain()
        stats = driver.stats()
        assert stats.failures == 1
        assert stats.consecutive_failures == 0
        assert stats.state is EvolutionState.STOPPED


class TestStageLatency:
    def test_every_stage_is_metered(self, built_tiny):
        _, _, driver = _driver(built_tiny, seed=17, publish_min_nodes=1)
        report = driver.run_cycle()
        assert report.accepted > 0 and report.published_generation == 1
        stats = driver.stats()
        by_stage = {entry.stage: entry for entry in stats.stage_latency}
        assert tuple(by_stage) == EVOLUTION_STAGES
        assert by_stage["mine"].calls == 1
        assert by_stage["classify"].calls == report.candidates
        assert by_stage["link"].calls == report.accepted
        assert by_stage["match"].calls == report.accepted
        assert by_stage["publish"].calls == 1
        for entry in stats.stage_latency:
            assert entry.p50_ms >= 0.0
            assert entry.p50_ms <= entry.p95_ms <= entry.p99_ms

    def test_skipped_publish_checks_do_not_record(self, built_tiny):
        _, _, driver = _driver(built_tiny, seed=17,
                               publish_min_nodes=10_000,
                               publish_max_interval=10_000.0)
        driver.run_cycle()
        stats = driver.stats()
        by_stage = {entry.stage: entry for entry in stats.stage_latency}
        assert by_stage["publish"].calls == 0

    def test_format_table_reports_stages_and_wedge(self, built_tiny):
        _, _, driver = _driver(built_tiny, seed=17, publish_min_nodes=1)
        driver.run_cycle()
        stats = driver.stats()
        assert not stats.wedged
        table = stats.format_table()
        for stage in EVOLUTION_STAGES:
            assert f"stage {stage}" in table
        assert "wedge: clear (0/" in table
        assert "serving generation 1" in table

    def test_format_table_surfaces_a_wedged_loop(self, built_tiny):
        _, _, driver = _driver(built_tiny, seed=17, max_retries=2,
                               backoff_base=0.0, publish_min_nodes=1)

        def broken(batch):
            raise DataError("miner fell over")

        driver._mine = broken
        driver.start()
        assert _wait_for(lambda: driver.state is EvolutionState.WEDGED)
        stats = driver.stats()
        assert stats.wedged
        table = stats.format_table()
        assert "wedge: WEDGED after 2 consecutive failures (budget 2)" in table
        assert "DataError: miner fell over" in table


class TestPipelineUnderLoad:
    """Readers never observe a torn generation while the driver publishes."""

    N_THREADS = 4

    def test_every_answer_is_a_whole_generation(self, built_tiny):
        overrides = dict(seed=41, publish_min_nodes=1, cycle_interval=0.02)
        # Reference: the same driver run synchronously predicts every
        # generation's answers (cycles are seeded by cycle index), so
        # first discover which concepts the later generations mint...
        probe_store, reference, twin = _driver(built_tiny, **overrides)
        max_generation = 12
        while reference.generation_id < max_generation:
            twin.run_cycle()
        probes = [(node.text, node.id)
                  for node in probe_store.nodes(ECOMMERCE_PREFIX)][-3:]

        def observe(service):
            results = []
            for text, concept_id in probes:
                results.append(service.search(text, k=3))
                try:
                    results.append(service.items_for_concept(concept_id, 5))
                except Exception:
                    results.append("absent")
            return tuple(results)

        # ...then re-run it, recording every generation's answers.
        answers = {}
        _, reference, twin = _driver(built_tiny, **overrides)
        answers[0] = observe(reference)
        while reference.generation_id < max_generation:
            twin.run_cycle()
            answers[reference.generation_id] = observe(reference)

        store, service, driver = _driver(built_tiny, **overrides)
        errors = []
        stop = threading.Event()
        barrier = threading.Barrier(self.N_THREADS + 1)

        def hammer():
            try:
                barrier.wait()
                while not stop.is_set():
                    observed = observe(service)
                    for index, value in enumerate(observed):
                        allowed = {answer[index]
                                   for answer in answers.values()}
                        assert value in allowed, (index, value)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer)
                   for _ in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        driver.start()
        barrier.wait()
        assert _wait_for(lambda: service.generation_id >= 4)
        stop.set()
        driver.stop()
        for thread in threads:
            thread.join(5.0)
        assert not errors, errors[0]
        assert service.generation_id <= max_generation


class TestClusterTarget:
    """The driver advances a sharded cluster in parity with one service."""

    def test_cluster_and_service_evolve_identically(self, built_tiny):
        from repro.serving import AliCoCoCluster, ClusterConfig

        _, service, service_driver = _driver(built_tiny, seed=53,
                                             publish_min_nodes=1)
        cluster_store = GenerationalStore(built_tiny.store)
        cluster = AliCoCoCluster(cluster_store,
                                 config=ClusterConfig(n_shards=3))
        cluster_driver = EvolutionDriver.from_build(
            built_tiny, cluster,
            config=EvolutionConfig(**FAST, seed=53, publish_min_nodes=1))
        for _ in range(3):
            left = service_driver.run_cycle()
            right = cluster_driver.run_cycle()
            assert left == right
        assert service_driver.drain() == cluster_driver.drain()
        assert cluster.generation_id == service.generation_id
        store = service_driver._store
        for node in list(store.nodes(ECOMMERCE_PREFIX))[-6:]:
            assert cluster.search(node.text) == service.search(node.text)
            assert cluster.items_for_concept(node.id) == (
                service.items_for_concept(node.id)
            )
            assert cluster.interpretation(node.id) == (
                service.interpretation(node.id)
            )
