"""Tests for the graph store, queries, stats and serialization."""

import pytest

from repro.errors import (
    DuplicateNodeError, NodeNotFoundError, RelationError, TaxonomyError,
)
from repro.kg import (
    AliCoCoStore, ECommerceConcept, Relation, RelationKind,
)
from repro.kg import query as kgq
from repro.kg.ids import layer_of
from repro.kg.serialize import load_store, save_store


@pytest.fixture
def store():
    store = AliCoCoStore()
    category = store.create_class("Category", domain="Category")
    clothing = store.create_class("Clothing", domain="Category",
                                  parent_id=category.id)
    dress_class = store.create_class("Dress", domain="Category",
                                     parent_id=clothing.id)
    dress = store.create_primitive("dress", dress_class.id)
    maxi = store.create_primitive("maxi dress", dress_class.id)
    store.add_relation(Relation(RelationKind.ISA_PRIMITIVE, maxi.id, dress.id))
    concept = store.create_ecommerce("summer dress for women")
    store.add_relation(Relation(RelationKind.INTERPRETED_BY, concept.id,
                                dress.id))
    item = store.create_item("floral maxi dress", properties={"Color": "red"})
    store.add_relation(Relation(RelationKind.ITEM_PRIMITIVE, item.id, maxi.id))
    store.add_relation(Relation(RelationKind.ITEM_ECOMMERCE, item.id,
                                concept.id, weight=0.9))
    return store


class TestStoreBasics:
    def test_ids_have_layer_prefixes(self, store):
        for node in store.nodes():
            assert layer_of(node.id) in ("cls", "pc", "ec", "item")

    def test_duplicate_node_rejected(self, store):
        node = next(store.nodes("pc"))
        with pytest.raises(DuplicateNodeError):
            store.add_node(node)

    def test_missing_node_raises(self, store):
        with pytest.raises(NodeNotFoundError):
            store.get("pc_9999")

    def test_relation_endpoint_validation(self, store):
        item = next(store.nodes("item"))
        concept = next(store.nodes("ec"))
        with pytest.raises(RelationError):
            # ITEM_PRIMITIVE must target a primitive, not an ec concept.
            store.add_relation(Relation(RelationKind.ITEM_PRIMITIVE,
                                        item.id, concept.id))

    def test_relation_missing_endpoint(self, store):
        item = next(store.nodes("item"))
        with pytest.raises(NodeNotFoundError):
            store.add_relation(Relation(RelationKind.ITEM_PRIMITIVE,
                                        item.id, "pc_404"))

    def test_duplicate_relation_ignored(self, store):
        before = store.count_relations(RelationKind.ISA_PRIMITIVE)
        maxi = store.find_by_name("pc", "maxi dress")[0]
        dress = store.find_by_name("pc", "dress")[0]
        store.add_relation(Relation(RelationKind.ISA_PRIMITIVE, maxi.id,
                                    dress.id))
        assert store.count_relations(RelationKind.ISA_PRIMITIVE) == before

    def test_duplicate_relation_returns_stored_edge(self, store):
        # Regression: a duplicate insert must hand back the edge that is
        # actually in the net, not the discarded new object.
        item = next(store.nodes("item"))
        concept = next(store.nodes("ec"))
        stored = store.add_relation(Relation(
            RelationKind.ITEM_ECOMMERCE, item.id, concept.id, weight=0.1))
        assert stored.weight == 0.9  # the original edge from the fixture
        assert stored in store.out_relations(item.id,
                                             RelationKind.ITEM_ECOMMERCE)

    def test_counters_match_scans(self, store):
        # The O(1) counters must agree with a full scan after mutations.
        for layer in ("cls", "pc", "ec", "item"):
            assert store.count_nodes(layer) == \
                sum(1 for n in store.nodes() if layer_of(n.id) == layer)
        for kind in RelationKind:
            assert store.count_relations(kind) == \
                sum(1 for r in store.relations() if r.kind == kind)

    def test_domain_indexes_match_scans(self, store):
        classes = store.classes_in_domain("Category")
        assert {c.id for c in classes} == \
            {n.id for n in store.nodes("cls") if n.domain == "Category"}
        primitives = store.primitives_in_domain("Category")
        assert {p.id for p in primitives} == \
            {n.id for n in store.nodes("pc") if n.domain == "Category"}
        assert store.classes_in_domain("NoSuchDomain") == []
        assert store.primitives_in_domain("NoSuchDomain") == []

    def test_same_name_different_ids(self, store):
        cls = store.find_by_name("cls", "Dress")[0]
        first = store.create_primitive("village", cls.id)
        second = store.create_primitive("village", cls.id)
        assert first.id != second.id
        assert len(store.find_by_name("pc", "village")) == 2

    def test_create_primitive_unknown_class(self, store):
        with pytest.raises(NodeNotFoundError):
            store.create_primitive("thing", "cls_404")


class TestQueries:
    def test_class_path(self, store):
        dress_class = store.find_by_name("cls", "Dress")[0]
        path = kgq.class_path(store, dress_class.id)
        assert [c.name for c in path] == ["Category", "Clothing", "Dress"]

    def test_class_path_cycle_detected(self):
        store = AliCoCoStore()
        store.create_class("A", domain="Category")
        # Manually create a cyclic node (bypassing create_class validation).
        from repro.kg.nodes import ClassNode
        b = ClassNode("cls_99", "B", "Category", parent_id="cls_100")
        c = ClassNode("cls_100", "C", "Category", parent_id="cls_99")
        store.add_node(b)
        store.add_node(c)
        with pytest.raises(TaxonomyError):
            kgq.class_path(store, "cls_99")

    def test_hypernyms_and_hyponyms(self, store):
        maxi = store.find_by_name("pc", "maxi dress")[0]
        dress = store.find_by_name("pc", "dress")[0]
        assert [n.id for n in kgq.hypernyms(store, maxi.id)] == [dress.id]
        assert [n.id for n in kgq.hyponyms(store, dress.id)] == [maxi.id]
        assert kgq.is_a(store, maxi.id, dress.id)
        assert not kgq.is_a(store, dress.id, maxi.id)

    def test_transitive_hypernyms(self, store):
        cls = store.find_by_name("cls", "Dress")[0]
        dress = store.find_by_name("pc", "dress")[0]
        garment = store.create_primitive("garment", cls.id)
        store.add_relation(Relation(RelationKind.ISA_PRIMITIVE, dress.id,
                                    garment.id))
        maxi = store.find_by_name("pc", "maxi dress")[0]
        closure = kgq.hypernyms(store, maxi.id, transitive=True)
        assert {n.name for n in closure} == {"dress", "garment"}

    def test_items_for_concept_sorted_by_weight(self, store):
        concept = next(store.nodes("ec"))
        other = store.create_item("plain dress")
        store.add_relation(Relation(RelationKind.ITEM_ECOMMERCE, other.id,
                                    concept.id, weight=0.2))
        items = kgq.items_for_concept(store, concept.id)
        assert items[0].title == "floral maxi dress"
        assert kgq.items_for_concept(store, concept.id, top_k=1) == items[:1]

    def test_interpretation(self, store):
        concept = next(store.nodes("ec"))
        names = [p.name for p in kgq.interpretation(store, concept.id)]
        assert names == ["dress"]

    def test_concepts_for_item(self, store):
        item = next(store.nodes("item"))
        concepts = kgq.concepts_for_item(store, item.id)
        assert concepts[0].text == "summer dress for women"


class TestStats:
    def test_counts(self, store):
        stats = store.stats()
        assert stats.primitive_concepts == 2
        assert stats.ecommerce_concepts == 1
        assert stats.items == 1
        assert stats.isa_primitive == 1
        assert stats.item_primitive == 1
        assert stats.item_ecommerce == 1
        assert stats.ecommerce_primitive == 1
        assert stats.linked_item_fraction == 1.0

    def test_averages(self, store):
        stats = store.stats()
        assert stats.avg_primitive_per_item == 1.0
        assert stats.avg_items_per_ecommerce == 1.0

    def test_summary_mentions_layers(self, store):
        text = store.stats().summary()
        assert "Primitive concepts" in text
        assert "E-commerce" in text


class TestSerialization:
    def test_roundtrip(self, store, tmp_path):
        path = tmp_path / "net.jsonl"
        save_store(store, path)
        loaded = load_store(path)
        assert len(loaded) == len(store)
        assert loaded.stats() == store.stats()
        concept = next(loaded.nodes("ec"))
        assert isinstance(concept, ECommerceConcept)
        assert concept.tokens == ("summer", "dress", "for", "women")

    def test_roundtrip_preserves_weights(self, store, tmp_path):
        path = tmp_path / "net.jsonl"
        save_store(store, path)
        loaded = load_store(path)
        weights = [r.weight for r in loaded.relations(RelationKind.ITEM_ECOMMERCE)]
        assert weights == [0.9]
