"""Concurrency: the serving layer under threads, and batch fan-out.

The paper's net serves heavy concurrent traffic (Section 7); these tests
hammer one shared :class:`AliCoCoService` from many threads and assert
the invariants the locks exist for — zero exceptions on valid traffic,
``hits + misses == lookups`` on every counter, and thread-pool batch
execution byte-identical to serial execution.

They also pin down the autograd-mode contract the model endpoints stand
on: ``no_grad`` windows are per-thread (a :mod:`contextvars` variable,
not a module global), so one thread leaving its window can never
re-enable graph recording inside another thread's window, and a thread
recording gradients is never silenced by a neighbour's inference.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import build_alicoco, TINY
from repro.errors import ConfigError
from repro.ml import Tensor, is_grad_enabled, no_grad
from repro.serving import AliCoCoService, BatchResult, LRUCache, ServiceConfig
from repro.utils.timing import LatencyReservoir

N_THREADS = 8
PASSES_PER_THREAD = 12


@pytest.fixture(scope="module")
def built():
    return build_alicoco(TINY)


def _mixed_requests(built):
    """A battery touching every endpoint with valid arguments."""
    requests = []
    for spec in built.concepts[:6]:
        concept_id = built.concept_ids[spec.text]
        requests.append(("search", spec.text))
        requests.append(("items_for_concept", concept_id, 5))
        requests.append(("interpretation", concept_id))
    for index in range(4):
        requests.append(("concepts_for_item", built.item_ids[index]))
    for primitive_id in list(built.primitive_ids.values())[:4]:
        requests.append(("hypernyms", primitive_id, True))
    return requests


class TestThreadedHammer:
    def test_mixed_endpoints_under_contention(self, built):
        """8 threads x mixed endpoints: no exceptions, consistent counters."""
        service = AliCoCoService.from_build(
            built, config=ServiceConfig(cache_capacity=64)
        )
        requests = _mixed_requests(built)
        expected = service.batch(requests)  # single-threaded reference
        errors = []
        barrier = threading.Barrier(N_THREADS)

        def hammer():
            try:
                barrier.wait()  # maximise overlap
                for _ in range(PASSES_PER_THREAD):
                    assert service.batch(requests) == expected
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        # Counter consistency: every lookup is exactly one hit or miss.
        cache = service._cache
        assert cache.hits + cache.misses == cache.lookups
        total_requests = (N_THREADS * PASSES_PER_THREAD + 1) * len(requests)
        stats = service.stats()
        assert stats.total_calls == total_requests
        assert stats.total_errors == 0
        for endpoint_stats in stats.endpoints:
            assert (
                endpoint_stats.cache_hits + endpoint_stats.cache_misses
                == endpoint_stats.calls
            )
        # Per-endpoint calls sum to the cache's lookups (cache enabled
        # for every endpoint, one lookup per call).
        assert cache.lookups == total_requests

    def test_error_traffic_is_counted_not_lost(self, built):
        """Concurrent invalid queries raise in their thread and are metered."""
        service = AliCoCoService.from_build(built)

        def bad_query(_):
            with pytest.raises(Exception):
                service.items_for_concept("ec_999999999")

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            list(pool.map(bad_query, range(32)))
        stats = service.stats().endpoint("items_for_concept")
        assert stats.errors == (("NodeNotFoundError", 32),)
        assert stats.calls == 0  # failures never count as answers


class TestBatchWorkers:
    def test_parallel_matches_serial_raise_mode(self, built):
        service = AliCoCoService.from_build(built)
        requests = _mixed_requests(built)
        serial = service.batch(requests)
        parallel = service.batch(requests, workers=4)
        assert parallel == serial

    def test_parallel_matches_serial_envelope_mode(self, built):
        service = AliCoCoService.from_build(built)
        spec = built.concepts[0]
        concept_id = built.concept_ids[spec.text]
        requests = _mixed_requests(built) + [
            ("items_for_concept", "ec_999999999"),  # NodeNotFoundError
            ("search", spec.text),
            ("teleport", concept_id),  # unknown endpoint
            ("items_for_concept", concept_id, -3),  # ConfigError
        ]
        serial = service.batch(requests, on_error="envelope")
        parallel = service.batch(requests, on_error="envelope", workers=4)
        assert parallel == serial
        assert all(isinstance(result, BatchResult) for result in parallel)

    def test_workers_meter_like_serial(self, built):
        """Fan-out metering is identical to serial: same hit/miss totals."""
        requests = _mixed_requests(built)
        serial_service = AliCoCoService.from_build(built)
        parallel_service = AliCoCoService.from_build(built)
        for _ in range(3):
            serial_service.batch(requests)
            parallel_service.batch(requests, workers=4)
        for endpoint in serial_service.endpoints:
            serial_stats = serial_service.stats().endpoint(endpoint)
            parallel_stats = parallel_service.stats().endpoint(endpoint)
            assert serial_stats.calls == parallel_stats.calls
            assert serial_stats.cache_hits == parallel_stats.cache_hits
            assert serial_stats.cache_misses == parallel_stats.cache_misses

    def test_bad_workers_rejected(self, built):
        service = AliCoCoService.from_build(built)
        with pytest.raises(ConfigError, match="workers"):
            service.batch([("search", "x")], workers=0)


class TestNoGradThreadIsolation:
    """The race the contextvar fixed, reproduced deterministically.

    The old implementation kept grad mode in a module-global flag: thread
    A's ``finally`` (restore ``True``) fired while thread B was still
    inside its own ``no_grad`` window, so B's "inference" silently
    recorded a graph — tape pollution, unbounded memory, and
    ``.backward()`` reachable from a prediction.  These tests force that
    exact interleaving with events (no timing luck involved): they fail
    against the global flag and pass with per-thread state.
    """

    def test_exiting_one_window_leaves_anothers_intact(self):
        a_entered = threading.Event()
        b_entered = threading.Event()
        a_exited = threading.Event()
        observed = {}

        def thread_a():
            with no_grad():
                a_entered.set()
                assert b_entered.wait(5)
            a_exited.set()  # old global flag: this restored True for B too

        def thread_b():
            assert a_entered.wait(5)
            with no_grad():
                b_entered.set()
                assert a_exited.wait(5)
                # A has exited; B is still inside its own window.
                observed["enabled"] = is_grad_enabled()
                x = Tensor(np.ones(3), requires_grad=True)
                y = (x * 2.0).sum()
                observed["requires_grad"] = y.requires_grad
                observed["parents"] = y._parents

        threads = [
            threading.Thread(target=thread_a),
            threading.Thread(target=thread_b),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert observed["enabled"] is False
        assert observed["requires_grad"] is False
        assert observed["parents"] == ()

    def test_inference_window_never_silences_a_training_thread(self):
        """The mirror-image leak: A's window must not disable B's tape."""
        a_entered = threading.Event()
        b_done = threading.Event()
        observed = {}

        def thread_a():
            with no_grad():
                a_entered.set()
                assert b_done.wait(5)

        def thread_b():
            assert a_entered.wait(5)
            # A sits inside no_grad; this thread never opened a window.
            x = Tensor(np.ones(3), requires_grad=True)
            loss = (x * 3.0).sum()
            observed["requires_grad"] = loss.requires_grad
            loss.backward()
            observed["grad"] = None if x.grad is None else x.grad.copy()
            b_done.set()

        threads = [
            threading.Thread(target=thread_a),
            threading.Thread(target=thread_b),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert observed["requires_grad"] is True
        np.testing.assert_array_equal(observed["grad"], np.full(3, 3.0))

    def test_training_and_inference_interleaved_hammer(self):
        """Half the threads train, half infer; no tape leaks either way."""
        base = np.arange(6, dtype=float)
        with no_grad():
            expected = float((Tensor(base, requires_grad=True) ** 2).sum().item())
        errors = []
        barrier = threading.Barrier(N_THREADS)

        def infer():
            try:
                barrier.wait()
                for _ in range(200):
                    with no_grad():
                        x = Tensor(base, requires_grad=True)
                        y = (x**2).sum()
                        assert y.requires_grad is False
                        assert y._parents == ()
                        assert float(y.item()) == expected
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def train():
            try:
                barrier.wait()
                for _ in range(200):
                    x = Tensor(base.copy(), requires_grad=True)
                    loss = (x**2).sum()
                    assert loss.requires_grad is True
                    loss.backward()
                    np.testing.assert_array_equal(x.grad, 2.0 * base)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=infer if i % 2 else train)
            for i in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestClusterCoalescingHammer:
    """The micro-batcher under real contention (ISSUE 7's hammer).

    N threads submit overlapping rerank requests through an
    ``AliCoCoCluster`` with the result caches off, so every request
    reaches the coalescer.  The answers must be bit-identical to serial
    single-service execution (coalescing shares results, it never
    changes them), the coalescer's ledger must balance (every request is
    exactly one flight or one join), and the doc-encoding caches must
    keep their ``hits + misses == lookups`` invariant under the shared
    scoring traffic.
    """

    @pytest.fixture(scope="class")
    def cluster(self, built_tiny, trained_reranker):
        from repro.serving import AliCoCoCluster, ClusterConfig

        return AliCoCoCluster(
            built_tiny.store,
            # Caches off: every request must reach the coalescer, not
            # the result cache.  Admission wide open: this test is about
            # coalescing correctness, not shedding.
            config=ClusterConfig(
                n_shards=2,
                cache_capacity=0,
                max_inflight=N_THREADS,
                max_queue_depth=64,
                max_queue_wait_ms=10_000,
            ),
            service_config=ServiceConfig(cache_capacity=0),
            reranker=trained_reranker,
        )

    def _rerank_requests(self, built):
        requests = []
        for spec in built.concepts[:4]:
            concept_id = built.concept_ids[spec.text]
            requests.append(("items_for_concept_reranked", concept_id, 5))
            requests.append(("search_reranked", spec.text, 5))
        return requests

    def test_overlapping_rerank_requests_bit_identical_to_serial(
        self, built_tiny, trained_reranker, cluster
    ):
        service = AliCoCoService(
            built_tiny.store,
            config=ServiceConfig(cache_capacity=0),
            reranker=trained_reranker,
        )
        requests = self._rerank_requests(built_tiny)
        expected = [service.batch([request])[0] for request in requests]
        errors = []
        barrier = threading.Barrier(N_THREADS)

        def hammer():
            try:
                barrier.wait()  # maximise request overlap
                for _ in range(4):
                    for request, want in zip(requests, expected):
                        assert cluster.batch([request])[0] == want
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        stats = cluster.stats()
        total = N_THREADS * 4 * len(requests)
        coalescer = stats.coalescer
        # Ledger balance: every request was exactly one flight or join.
        assert coalescer.requests == coalescer.flights + coalescer.joined
        assert coalescer.requests == total
        assert 1 <= coalescer.flights <= total
        assert coalescer.max_batch >= 1
        # No request was shed and none hung: all answered.
        assert stats.admission.shed == ()
        assert stats.admission.admitted == coalescer.flights
        rerank_calls = sum(
            stats.endpoint(name).calls
            for name in ("items_for_concept_reranked", "search_reranked")
        )
        assert rerank_calls == total

    def test_doc_cache_invariants_hold_after_the_hammer(self, cluster):
        """Runs after the hammer (class-scoped cluster): counters settled."""
        for service in cluster.services:
            doc_cache = service._doc_cache
            assert doc_cache is not None
            assert doc_cache.hits + doc_cache.misses == doc_cache.lookups
            stats = service.stats()
            assert stats.doc_cache_hits + stats.doc_cache_misses == doc_cache.lookups
            for endpoint_stats in stats.endpoints:
                assert (
                    endpoint_stats.cache_hits + endpoint_stats.cache_misses
                    == endpoint_stats.calls
                )


class TestStructureThreadSafety:
    def test_lru_cache_counters_consistent_under_contention(self):
        cache = LRUCache(capacity=32)
        lookups_per_thread = 2000

        def churn(seed):
            for index in range(lookups_per_thread):
                key = (seed + index) % 64
                if cache.get(key) is None:
                    cache.put(key, key)

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            list(pool.map(churn, range(N_THREADS)))
        assert cache.hits + cache.misses == N_THREADS * lookups_per_thread
        assert cache.lookups == N_THREADS * lookups_per_thread
        assert len(cache) <= 32

    def test_counters_snapshots_are_never_torn(self):
        """``counters()`` under an 8-thread hammer: every snapshot whole.

        The bug this pins down: reading ``hits``/``misses``/``evictions``
        as three separate property loads lets a writer slip between the
        loads, so the triple never co-existed.  ``counters()`` snapshots
        all three under the cache lock; concurrent snapshots must be
        internally consistent (``hits + misses == lookups``) and
        monotonic, and the final totals must be exact.
        """
        cache = LRUCache(capacity=16)
        lookups_per_thread = 4000
        writers = N_THREADS - 2
        stop = threading.Event()
        errors = []

        def churn(seed):
            try:
                for index in range(lookups_per_thread):
                    key = (seed * 31 + index) % 48
                    if cache.get(key) is None:
                        cache.put(key, key)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def snapshot():
            try:
                last = cache.counters()
                while not stop.is_set():
                    now = cache.counters()
                    assert now.hits + now.misses == now.lookups
                    assert now.hits >= last.hits
                    assert now.misses >= last.misses
                    assert now.evictions >= last.evictions
                    last = now
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        readers = [threading.Thread(target=snapshot) for _ in range(2)]
        for thread in readers:
            thread.start()
        with ThreadPoolExecutor(max_workers=writers) as pool:
            list(pool.map(churn, range(writers)))
        stop.set()
        for thread in readers:
            thread.join()
        assert errors == []
        final = cache.counters()
        assert final.lookups == writers * lookups_per_thread
        assert final.hits + final.misses == final.lookups

    def test_reservoir_never_loses_observations(self):
        reservoir = LatencyReservoir(capacity=16, seed=0)
        records_per_thread = 5000

        def record(_):
            for value in range(records_per_thread):
                reservoir.record(float(value))

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            list(pool.map(record, range(N_THREADS)))
        assert reservoir.count == N_THREADS * records_per_thread
        assert len(reservoir._samples) == 16
        assert reservoir.quantile(0.5) >= 0.0


class TestSwapUnderLoad:
    """Generation swaps under concurrent reads: atomic, never mixed.

    Readers hammer a service over a :class:`GenerationalStore` while the
    main thread publishes a new generation mid-flight.  Every observed
    answer must equal the generation-0 answer or the generation-1 answer
    *exactly* — a third value would mean a request saw a mixed state
    (say, the new document in the index but old corpus statistics, or a
    node readable through one API and missing through another).
    """

    def _expected_answers(self, built, probes, grow):
        """Reference answers from an identical store taken through grow."""
        from repro.kg import GenerationalStore

        reference = GenerationalStore(built.store)
        service = AliCoCoService(reference, config=ServiceConfig(seed=0))
        answers = {0: self._observe(service, probes)}
        grow(reference)
        service.publish()
        answers[1] = self._observe(service, probes)
        return answers

    @staticmethod
    def _observe(service, probes):
        from repro.errors import NodeNotFoundError

        results = []
        for endpoint, *args in probes:
            try:
                results.append(getattr(service, endpoint)(*args))
            except NodeNotFoundError:
                results.append("absent")
        return tuple(results)

    def test_no_request_observes_a_mixed_generation(self, built):
        from repro.kg import GenerationalStore
        from repro.kg.relations import Relation, RelationKind

        def grow(store):
            concept = store.create_ecommerce("fresh swap concept")
            item = store.create_item("fresh swap item title")
            store.add_relation(
                Relation(
                    kind=RelationKind.ITEM_ECOMMERCE,
                    source=item.id,
                    target=concept.id,
                    weight=0.9,
                )
            )
            return concept

        # Ids allocate deterministically, so a reference store taken
        # through the same writes predicts both generations' answers.
        probe_concept = GenerationalStore(built.store).create_ecommerce("x").id
        old_spec = built.concepts[0]
        probes = [
            ("search", "fresh swap concept"),  # () -> hit
            ("search", old_spec.text),  # scores shift with corpus stats
            ("items_for_concept", probe_concept, 5),  # absent -> present
        ]
        answers = self._expected_answers(built, probes, grow)
        assert answers[0] != answers[1]

        store = GenerationalStore(built.store)
        service = AliCoCoService(store, config=ServiceConfig(seed=0))
        errors = []
        stop = threading.Event()
        barrier = threading.Barrier(N_THREADS + 1)

        def hammer():
            try:
                barrier.wait()
                while not stop.is_set():
                    for index, observed in enumerate(self._observe(service, probes)):
                        allowed = (answers[0][index], answers[1][index])
                        assert observed in allowed, (index, observed)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(N_THREADS)]
        for thread in threads:
            thread.start()
        barrier.wait()
        grow(store)
        generation = service.publish()
        # Let readers run a little against the published generation too.
        stop.wait(timeout=0.05)
        stop.set()
        for thread in threads:
            thread.join()
        assert errors == []
        assert generation == 1
        assert self._observe(service, probes) == answers[1]
        cache = service._cache
        counters = cache.counters()
        assert counters.hits + counters.misses == counters.lookups
        windows = dict(cache.generation_counters())
        assert set(windows) == {"gen-0", "gen-1"}
