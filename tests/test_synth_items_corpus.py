"""Tests for item generation, corpus, click logs, glosses and the oracle."""

import numpy as np
import pytest

from repro.config import TINY
from repro.errors import BudgetExhaustedError
from repro.synth import (
    build_corpus, build_gloss_kb, build_lexicon, Oracle, World,
)
from repro.synth.clicklog import simulate_clicks
from repro.synth.items import (
    audience_affinity, generate_items, item_matches_concept,
)
from repro.synth.world import ConceptPart, ConceptSpec


@pytest.fixture(scope="module")
def world():
    return World(build_lexicon(seed=7), seed=7)


@pytest.fixture(scope="module")
def items(world):
    return generate_items(world, 200)


@pytest.fixture(scope="module")
def concepts(world):
    return world.sample_good_concepts(np.random.default_rng(0), 40)


class TestItems:
    def test_count_and_determinism(self, world, items):
        assert len(items) == 200
        again = generate_items(world, 200)
        assert [i.title for i in again] == [i.title for i in items]

    def test_titles_contain_category(self, items):
        for item in items:
            for token in item.category.split():
                assert token in item.title_tokens

    def test_attributes_consistent(self, world, items):
        for item in items:
            assert item.leaf_class == world.category_class(item.category)
            assert item.head == world.category_head(item.category)
            for season in item.seasons:
                assert season in ("winter", "summer", "spring", "autumn")

    def test_provided_functions_are_implicit(self, items):
        """Provider functions must not leak into the title (semantic drift)."""
        blankets = [i for i in items if i.head == "blanket"]
        assert blankets, "catalog should include blankets at n=200"
        for item in blankets:
            assert "warm" in item.provided_functions
            if "warm" not in item.functions:
                assert "warm" not in item.title_tokens

    def test_primitive_surfaces_tagged(self, items):
        item = items[0]
        tags = dict()
        for surface, domain in item.primitive_surfaces():
            tags.setdefault(domain, []).append(surface)
        assert item.category in tags["Category"]


class TestItemConceptMatching:
    def test_event_concept_matches_kit(self, world, items):
        spec = ConceptSpec("outdoor barbecue",
                           (ConceptPart("outdoor", "Location"),
                            ConceptPart("barbecue", "Event")),
                           "location-event", good=True)
        matched = [i for i in items if item_matches_concept(world, i, spec)]
        assert matched
        heads = {i.head for i in matched}
        assert heads <= {"grill", "charcoal", "skewers", "tongs",
                         "grill-brush", "apron", "beef", "butter"}

    def test_semantic_drift_charcoal_matches_outdoor_barbecue(self, world, items):
        """Charcoal belongs to 'outdoor barbecue' although its item has no
        'outdoor' scene requirement satisfied at item level."""
        spec = ConceptSpec("outdoor barbecue",
                           (ConceptPart("outdoor", "Location"),
                            ConceptPart("barbecue", "Event")),
                           "location-event", good=True)
        big_catalog = generate_items(world, 800, seed=99)
        charcoal = [i for i in big_catalog if i.head == "charcoal"]
        assert charcoal
        for item in charcoal:
            assert "outdoor" not in item.title_tokens
            assert item_matches_concept(world, item, spec)

    def test_keep_warm_matches_providers_without_text_overlap(self, world, items):
        spec = ConceptSpec("keep warm for kids",
                           (ConceptPart("warm", "Function"),
                            ConceptPart("kids", "Audience")),
                           "keep-function-audience", good=True)
        matched = [i for i in items if item_matches_concept(world, i, spec)]
        for item in matched:
            assert "kids" in item.audiences
            assert "warm" in item.functions or "warm" in item.provided_functions

    def test_bad_concept_matches_nothing(self, world, items):
        spec = ConceptSpec("hens lay eggs", (), "nonsense", good=False,
                           defect="nonsense")
        assert not any(item_matches_concept(world, i, spec) for i in items)

    def test_audience_affinity_includes_class_defaults(self, items):
        pet_items = [i for i in items if i.leaf_class == "PetGear"]
        if pet_items:
            assert "pets" in audience_affinity(pet_items[0])


class TestCorpus:
    def test_build_corpus_shapes(self, world, concepts):
        corpus = build_corpus(world, concepts, TINY)
        assert len(corpus.items) == TINY.n_items
        assert len(corpus.queries) == TINY.n_queries
        assert len(corpus.reviews) == TINY.n_reviews
        assert len(corpus.guides) == TINY.n_guides
        sentences = corpus.sentences()
        assert len(sentences) == (TINY.n_items + TINY.n_queries
                                  + TINY.n_reviews + TINY.n_guides)
        assert all(isinstance(s, list) and s for s in sentences)

    def test_query_families(self, world, concepts):
        from repro.synth.queries import NOVEL_TERMS
        corpus = build_corpus(world, concepts, TINY)
        families = {q.family for q in corpus.queries}
        assert families == {"product", "scenario", "problem"}
        novel_seen = 0
        for query in corpus.queries:
            if query.family in ("scenario", "problem"):
                if query.concept_text:
                    continue
                # No concept text -> must be an emerging-trend query.
                assert any(term in query.text for term in NOVEL_TERMS)
                novel_seen += 1
        assert novel_seen > 0

    def test_guides_contain_hearst_patterns(self, world, concepts):
        corpus = build_corpus(world, concepts, TINY)
        joined = [" ".join(s) for s in corpus.guides]
        assert any("is a kind of" in s or "such as" in s for s in joined)


class TestClickLog:
    def test_clicks_concentrate_on_relevant(self, world, items, concepts):
        events = simulate_clicks(world, concepts, items,
                                 impressions_per_concept=40)
        assert events
        relevant_clicks = irrelevant_clicks = 0
        relevant_total = irrelevant_total = 0
        for event in events:
            spec = concepts[event.concept_index]
            is_relevant = item_matches_concept(world, items[event.item_index],
                                               spec)
            if is_relevant:
                relevant_total += 1
                relevant_clicks += event.clicked
            else:
                irrelevant_total += 1
                irrelevant_clicks += event.clicked
        assert relevant_total and irrelevant_total
        assert (relevant_clicks / relevant_total) > \
            5 * (irrelevant_clicks / max(1, irrelevant_total))

    def test_bad_concepts_get_no_impressions(self, world, items):
        bad = ConceptSpec("hens lay eggs", (), "nonsense", good=False,
                          defect="nonsense")
        events = simulate_clicks(world, [bad], items)
        assert events == []


class TestGlosses:
    def test_every_surface_has_gloss(self, world):
        kb = build_gloss_kb(world)
        for surface in world.lexicon.surfaces():
            assert kb.has(surface)
            assert kb.gloss(surface)

    def test_mid_autumn_gloss_mentions_moon_cakes(self, world):
        """The paper's Section 7.6 case study, planted."""
        kb = build_gloss_kb(world)
        assert "moon-cakes" in kb.gloss("mid-autumn-festival")

    def test_sexy_gloss_mentions_audience_restriction(self, world):
        kb = build_gloss_kb(world)
        gloss = kb.gloss("sexy")
        assert "baby" in gloss and "never" in gloss

    def test_ambiguous_surface_gloss_covers_both_senses(self, world):
        kb = build_gloss_kb(world)
        gloss = " ".join(kb.gloss("village"))
        assert "place" in gloss and "style" in gloss


class TestOracle:
    def test_hypernym_labels(self, world):
        oracle = Oracle(world)
        assert oracle.label_hypernym("trench coat", "coat")
        assert not oracle.label_hypernym("coat", "trench coat")
        assert not oracle.label_hypernym("trench coat", "dress")
        assert oracle.labels_used == 3

    def test_budget_enforced(self, world):
        oracle = Oracle(world, budget=2)
        oracle.label_hypernym("trench coat", "coat")
        oracle.label_hypernym("maxi dress", "dress")
        with pytest.raises(BudgetExhaustedError):
            oracle.label_hypernym("down coat", "coat")

    def test_concept_and_match_labels(self, world, items, concepts):
        oracle = Oracle(world)
        spec = concepts[0]
        assert oracle.label_concept(spec)
        labels = oracle.label_tagging(spec)
        assert len(labels) == len(spec.tokens)
        result = oracle.label_match(items[0], spec)
        assert isinstance(result, bool)
