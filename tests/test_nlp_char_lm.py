"""Tests for the character-level LM and its use in the criteria checker."""

import pytest

from repro.errors import DataError, NotFittedError
from repro.nlp import CharTrigramModel
from repro.synth import build_lexicon


@pytest.fixture(scope="module")
def model():
    lexicon = build_lexicon(seed=7)
    words = {word for surface in lexicon.surfaces()
             for word in surface.split()}
    return CharTrigramModel().fit(words)


class TestCharTrigramModel:
    def test_fit_empty_raises(self):
        with pytest.raises(DataError):
            CharTrigramModel().fit([])
        with pytest.raises(DataError):
            CharTrigramModel().fit([""])

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            CharTrigramModel().log_probability("coat")

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CharTrigramModel(k=0)

    def test_real_word_beats_typo(self, model):
        assert model.perplexity("barbecue") < model.perplexity("brabecue")
        assert model.perplexity("coat") < model.perplexity("xqzv")

    def test_novel_but_wordlike_is_plausible(self, model):
        """A new brand-like word scores far better than keyboard mash."""
        assert model.perplexity("velora") < model.perplexity("qqqxz")

    def test_most_suspicious_finds_typo(self, model):
        suspect, _ = model.most_suspicious(["outdoor", "brabecue"])
        assert suspect == "brabecue"

    def test_sequence_perplexity_bounds(self, model):
        clean = model.sequence_perplexity(["outdoor", "barbecue"])
        dirty = model.sequence_perplexity(["outdoor", "brabecue"])
        assert clean < dirty

    def test_empty_scoring_raises(self, model):
        with pytest.raises(DataError):
            model.perplexity("")
        with pytest.raises(DataError):
            model.sequence_perplexity([])


class TestCriteriaWithCharLM:
    def test_char_lm_admits_unknown_brands(self, model):
        from repro.concepts import CriteriaChecker
        from repro.nlp.ngram_lm import BidirectionalLanguageModel
        lm = BidirectionalLanguageModel().fit([["warm", "coat"]] * 3)
        checker = CriteriaChecker(
            commerce_vocabulary={"coat"}, known_words={"warm", "coat"},
            language_model=lm, audience_words=set(),
            perplexity_threshold=1e9, char_model=model,
            char_perplexity_threshold=16.0)
        # "velora coat" has an unknown-but-wordlike brand: correct.
        assert checker.check("velora coat").correct
        # A keyboard-mash token stays incorrect.
        assert not checker.check("qqqxz coat").correct
