"""Tests for graph validation, networkx export and monitoring."""

import pytest

from repro import build_alicoco, TINY
from repro.errors import DataError
from repro.kg import AliCoCoStore, Relation, RelationKind
from repro.kg.graphview import connectivity_summary, to_networkx
from repro.kg.validate import validate_store


@pytest.fixture(scope="module")
def built():
    return build_alicoco(TINY)


class TestValidation:
    def test_built_net_is_healthy(self, built):
        report = validate_store(built.store)
        assert report.ok, report.problems

    def test_detects_bad_weight(self, built):
        store = AliCoCoStore()
        category = store.create_class("Category", domain="Category")
        first = store.create_primitive("a", category.id)
        second = store.create_primitive("b", category.id)
        store.add_relation(Relation(RelationKind.ISA_PRIMITIVE, first.id,
                                    second.id, weight=3.0))
        report = validate_store(store)
        assert not report.ok
        assert any("weight" in p for p in report.problems)

    def test_detects_isa_cycle(self):
        store = AliCoCoStore()
        category = store.create_class("Category", domain="Category")
        first = store.create_primitive("a", category.id)
        second = store.create_primitive("b", category.id)
        store.add_relation(Relation(RelationKind.ISA_PRIMITIVE, first.id,
                                    second.id))
        store.add_relation(Relation(RelationKind.ISA_PRIMITIVE, second.id,
                                    first.id))
        report = validate_store(store)
        assert any("cycle" in p for p in report.problems)

    def test_detects_domain_mismatch(self):
        from repro.kg.nodes import PrimitiveConcept
        store = AliCoCoStore()
        category = store.create_class("Category", domain="Category")
        store.add_node(PrimitiveConcept("pc_99", "x", category.id, "Color"))
        report = validate_store(store)
        assert any("domain" in p for p in report.problems)


class TestGraphView:
    def test_export_preserves_counts(self, built):
        graph = to_networkx(built.store)
        assert graph.number_of_nodes() == len(built.store)
        assert graph.number_of_edges() == \
            built.store.stats().relations_total

    def test_kind_filter(self, built):
        graph = to_networkx(built.store, kinds=(RelationKind.ISA_PRIMITIVE,))
        kinds = {data["kind"] for _, _, data in graph.edges(data=True)}
        assert kinds == {"ISA_PRIMITIVE"}

    def test_layers_attached(self, built):
        graph = to_networkx(built.store)
        layers = {data["layer"] for _, data in graph.nodes(data=True)}
        assert layers == {"cls", "pc", "ec", "item"}

    def test_connectivity_summary(self, built):
        summary = connectivity_summary(built.store)
        assert summary["nodes"] > 0
        assert summary["item_link_rate"] == 1.0
        assert summary["connected_components"] >= 1


class TestMonitoring:
    def make_monitor(self, built):
        from repro.apps.coverage import alicoco_vocabulary, CoverageEvaluator
        from repro.apps.monitoring import CoverageMonitor
        vocabulary = alicoco_vocabulary(
            built.lexicon, [s.text for s in built.concepts])
        return CoverageMonitor(CoverageEvaluator(vocabulary, "AliCoCo"))

    def test_daily_loop_detects_trends(self, built):
        from repro.synth.queries import generate_queries, NOVEL_TERMS
        monitor = self.make_monitor(built)
        for day in range(5):
            queries = generate_queries(built.world, built.concepts, 80,
                                       seed=100 + day, novelty_rate=0.3)
            report = monitor.observe_day(queries)
            assert report.day == day
        assert 0.5 < monitor.average_coverage() < 1.0
        trends = monitor.top_trends(10)
        assert any(term in NOVEL_TERMS for term in trends)

    def test_empty_day_raises(self, built):
        monitor = self.make_monitor(built)
        with pytest.raises(DataError):
            monitor.observe_day([])

    def test_average_requires_history(self, built):
        monitor = self.make_monitor(built)
        with pytest.raises(DataError):
            monitor.average_coverage()
