"""Tests for the extension features: implicit relation mining (the paper's
future work), question answering, and the CLI."""

import pytest

from repro import build_alicoco, TINY
from repro.apps.qa import ConceptQA
from repro.errors import DataError
from repro.kg.relations import RelationKind
from repro.mining.implicit import ImplicitRelationMiner
from repro.synth import build_lexicon, World
from repro.synth.items import generate_items


@pytest.fixture(scope="module")
def built():
    return build_alicoco(TINY)


@pytest.fixture(scope="module")
def items():
    world = World(build_lexicon(seed=7), seed=7)
    return generate_items(world, 800, seed=1)


class TestImplicitMining:
    def test_empty_catalog_raises(self):
        with pytest.raises(DataError):
            ImplicitRelationMiner().mine([])

    def test_invalid_probability_raises(self):
        with pytest.raises(DataError):
            ImplicitRelationMiner(min_probability=0.0)

    def test_swimsuit_implies_summer(self, items):
        """The paper's example shape: a seasonal category implies its
        season even though the word never appears."""
        miner = ImplicitRelationMiner(min_probability=0.5, min_support=2)
        relations = miner.mine(items)
        seasonal = {(r.source, r.target) for r in relations
                    if r.name == "suitable_when"}
        assert ("swimsuit", "summer") in seasonal
        assert ("coat", "summer") not in seasonal

    def test_event_relations_mined(self, items):
        miner = ImplicitRelationMiner(min_probability=0.5, min_support=2)
        relations = miner.mine(items)
        events = {(r.source, r.target) for r in relations
                  if r.name == "used_for"}
        assert ("grill", "barbecue") in events

    def test_probabilities_and_support(self, items):
        relations = ImplicitRelationMiner(min_probability=0.6,
                                          min_support=3).mine(items)
        assert relations
        for relation in relations:
            assert 0.6 <= relation.probability <= 1.0
            assert relation.support >= 3

    def test_implied_concepts_inference(self, items):
        """'swimsuit for kids' implies summer without the word summer."""
        miner = ImplicitRelationMiner(min_probability=0.5, min_support=2)
        relations = miner.mine(items)
        implied = miner.implied_concepts(relations, ["swimsuit", "for", "kids"])
        targets = {(r.name, r.target) for r in implied}
        assert ("suitable_when", "summer") in targets

    def test_relations_materialised_in_store(self, built):
        mined = list(built.store.relations(RelationKind.RELATED_PRIMITIVE))
        assert mined, "the build pipeline should add implicit relations"
        for relation in mined:
            assert relation.name in ("suitable_when", "used_for", "used_by")
            assert 0.0 < relation.weight <= 1.0
            # Endpoints are primitive concepts.
            assert relation.source.startswith("pc_")
            assert relation.target.startswith("pc_")

    def test_deterministic(self, items):
        first = ImplicitRelationMiner().mine(items)
        second = ImplicitRelationMiner().mine(items)
        assert first == second


class TestConceptQA:
    def test_barbecue_question(self, built):
        """The paper's own example question, modulo the synthetic world."""
        qa = ConceptQA(built.store)
        # Use a concept that exists with items at tiny scale.
        target = None
        from repro.kg.query import items_for_concept
        for spec in built.concepts:
            if items_for_concept(built.store,
                                 built.concept_ids[spec.text]):
                target = spec
                break
        assert target is not None
        answer = qa.answer(
            f"What should I prepare for hosting next week's {target.text}?")
        assert answer.answered
        assert answer.concept.text == target.text
        assert answer.items
        rendered = answer.render()
        assert target.text in rendered
        assert "- " in rendered

    def test_intent_extraction(self, built):
        qa = ConceptQA(built.store)
        intent = qa.extract_intent(
            "What should I prepare for hosting next week's barbecue?")
        assert intent == "barbecue"

    def test_unanswerable_question(self, built):
        qa = ConceptQA(built.store)
        answer = qa.answer("What is the meaning of life?")
        assert not answer.answered
        assert "could not find" in answer.render()

    def test_empty_question(self, built):
        qa = ConceptQA(built.store)
        assert not qa.answer("what should i do").answered


class TestCLI:
    def test_build_command(self, capsys):
        from repro.__main__ import main
        assert main(["build", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Primitive concepts" in out

    def test_help(self, capsys):
        from repro.__main__ import main
        assert main([]) == 0
        assert "Usage" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        from repro.__main__ import main
        assert main(["frobnicate"]) == 2

    def test_ask_requires_question(self):
        from repro.__main__ import main
        assert main(["ask"]) == 2
