"""The inference fast path: kernel parity, pool scoring, the doc cache.

Three layers of guarantees, each pinned here:

- the tape-free kernels in ``repro.ml.inference`` are *bit-identical* to
  the autograd ops they mirror;
- every matcher's ``score_pool`` returns the same scores as a per-pair
  ``score_text`` loop (the scalar oracle), fast path or fallback;
- the service's doc-encoding cache is sound under contention
  (``hits + misses == lookups``, identical answers across 8 threads) and
  the fast-path endpoints match the ``use_fast_path=False`` oracle.
"""

import threading
import warnings

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro import build_alicoco, TINY
from repro.errors import ConfigError, DataError, NotFittedError
from repro.matching import (
    DSSMMatcher,
    KnowledgeMatcher,
    MatchPyramidMatcher,
    RE2Matcher,
    train_matcher,
)
from repro.matching.base import NeuralMatcher, matching_vocab
from repro.matching.dataset import pair_from_texts
from repro.kg.ids import ECOMMERCE_PREFIX
from repro.kg.relations import RelationKind
from repro.ml import MLP, Conv1d, Tensor
from repro.ml.inference import (
    InferenceSession,
    conv1d_same,
    embedding_gather,
    mlp,
    softmax,
    stable_sigmoid,
)
from repro.nlp.pos import PosTagger
from repro.nlp.vocab import Vocab
from repro.serving import AliCoCoService, ServiceConfig

WORDS = [f"w{i}" for i in range(40)] + ["red", "shoe", "cotton", "party", "gift"]


@pytest.fixture(scope="module")
def vocab():
    return Vocab.from_corpus([WORDS])


def _random_pool(rng, size, low=1, high=6):
    return [
        [str(token) for token in rng.choice(WORDS, size=rng.integers(low, high))]
        for _ in range(size)
    ]


def _knowledge_matcher(vocab, use_knowledge, seed=2):
    gloss_tokens = {"red": ["crimson", "w5"], "shoe": ["w7", "w9"]}

    def lookup(token):
        if token in ("red", "shoe", "party"):
            return np.arange(6, dtype=float) * 0.1
        return None

    return KnowledgeMatcher(
        vocab,
        PosTagger(),
        ner_lookup=lambda token: (len(token) * 7) % 5,
        num_ner_labels=5,
        knowledge_lookup=lookup if use_knowledge else None,
        gloss_tokens=gloss_tokens if use_knowledge else None,
        knowledge_dim=6,
        dim=8,
        conv_dim=8,
        pyramid_layers=2,
        seed=seed,
    )


# ---------------------------------------------------------------- kernels
class TestKernels:
    def test_conv1d_same_matches_taped_conv(self, vocab):
        rng = np.random.default_rng(0)
        conv = Conv1d(6, 5, 3, rng)
        x = rng.normal(size=(7, 6))
        taped = conv(Tensor(x[None, :, :]))[0]
        fast = conv1d_same(x, conv.weight.data, conv.bias.data, conv.kernel_size)
        assert_array_equal(fast, taped.data)

    def test_mlp_matches_taped_mlp(self):
        rng = np.random.default_rng(1)
        for activation in ("tanh", "relu", "sigmoid"):
            net = MLP([6, 5, 3], rng, activation=activation)
            x = rng.normal(size=(4, 6))
            layers = [(layer.weight.data, layer.bias.data) for layer in net.layers]
            assert_array_equal(mlp(x, layers, activation), net(Tensor(x)).data)

    def test_softmax_matches_tensor_softmax(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=9) * 30
        assert_array_equal(softmax(x, axis=0), Tensor(x).softmax(axis=0).data)

    def test_embedding_gather_rejects_bad_table(self):
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            embedding_gather(np.zeros((2, 3, 4)), [0])

    def test_session_extracts_live_views(self, vocab):
        model = DSSMMatcher(vocab, dim=8, hidden=8, seed=0)
        session = model.inference_session()
        assert session is model.inference_session()  # memoized
        # In-place weight updates (what optimizers do) stay visible.
        before = session.weight("scale").copy()
        model.scale.data -= 1.0
        assert_array_equal(session.weight("scale"), before - 1.0)

    def test_session_mlp_unknown_name(self, vocab):
        session = InferenceSession(DSSMMatcher(vocab, dim=8, hidden=8, seed=0))
        with pytest.raises(KeyError):
            session.mlp(np.zeros(8), "no_such_mlp")


# ---------------------------------------------------------- stable sigmoid
class _ConstantLogitMatcher(NeuralMatcher):
    """A stub whose logit is fixed, for driving extreme values."""

    def __init__(self, vocab, value):
        super().__init__(vocab, dim=4, seed=0, name="constant")
        self.value = value
        self._fitted = True

    def logit(self, example):
        return Tensor(np.asarray(self.value)).reshape(())


class TestStableSigmoid:
    def test_no_overflow_at_extreme_logits(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # RuntimeWarning -> failure
            low = stable_sigmoid(np.array([-800.0]))
            high = stable_sigmoid(np.array([800.0]))
        assert low[0] == 0.0
        assert high[0] == 1.0

    def test_matches_naive_form_in_safe_range(self):
        logits = np.linspace(-30, 30, 13)
        naive = 1.0 / (1.0 + np.exp(-logits))
        # Non-negative logits share the naive branch bit for bit; the
        # negative branch (z/(1+z), the overflow-free rewrite) is equal
        # to within float rounding.
        assert_array_equal(stable_sigmoid(logits[6:]), naive[6:])
        np.testing.assert_allclose(stable_sigmoid(logits), naive, rtol=1e-15)

    def test_score_pairs_regression_at_minus_800(self, vocab):
        # The old score_pairs computed 1/(1+exp(800)): RuntimeWarning,
        # then 1/inf.  The shared helper must stay silent and exact.
        model = _ConstantLogitMatcher(vocab, -800.0)
        pair = pair_from_texts(["red"], ["shoe"])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            scores = model.score_pairs([pair, pair])
            text_score = model.score_text(["red"], ["shoe"])
        assert_array_equal(scores, np.zeros(2))
        assert text_score == 0.0

    def test_score_pairs_and_score_text_agree(self, vocab):
        model = DSSMMatcher(vocab, dim=8, hidden=8, seed=3)
        model._fitted = True
        pairs = [
            pair_from_texts(["red", "shoe"], ["w1", "w2", "w3"]),
            pair_from_texts(["party"], ["gift", "w4"]),
        ]
        batch = model.score_pairs(pairs)
        singles = [
            model.score_text(p.concept.tokens, p.item.title_tokens) for p in pairs
        ]
        assert_array_equal(batch, np.asarray(singles))


# ------------------------------------------------------ feature memoization
class _CountingTagger(PosTagger):
    def __init__(self):
        super().__init__()
        self.calls = 0

    def tag_word(self, word):
        self.calls += 1
        return super().tag_word(word)


class TestFeatureMemoization:
    def test_repeat_tokens_tag_once(self, vocab):
        model = _knowledge_matcher(vocab, use_knowledge=False)
        tagger = _CountingTagger()
        model.pos_tagger = tagger
        model._feature_ids(["red", "shoe", "red"])
        assert tagger.calls == 2  # "red" memoized within the first call
        model._feature_ids(["red", "shoe", "w3"])
        assert tagger.calls == 3  # only "w3" is new

    def test_features_output_unchanged_by_memo(self, vocab):
        memo = _knowledge_matcher(vocab, use_knowledge=False)
        fresh = _knowledge_matcher(vocab, use_knowledge=False)
        tokens = ["red", "shoe", "red", "w1"]
        memo._feature_ids(tokens)  # populate the memo, then reuse it
        assert_array_equal(
            memo._features(tokens).data, fresh._features(tokens).data
        )

    def test_cache_is_bounded(self, vocab):
        model = _knowledge_matcher(vocab, use_knowledge=False)
        model._feature_cache_limit = 3
        model._feature_ids([f"w{i}" for i in range(10)])
        assert len(model._feature_id_cache) == 3


# ------------------------------------------------------------- pool parity
def _assert_pool_parity(model, rng, pools=(0, 1, 5, 9)):
    for size in pools:
        query = [str(token) for token in rng.choice(WORDS, size=3)]
        pool = _random_pool(rng, size)
        fast = model.score_pool(query, pool)
        oracle = np.asarray([model.score_text(query, doc) for doc in pool])
        assert fast.shape == (size,)
        assert_array_equal(fast, oracle)
        # "identical ranking": the sort keys the service uses agree.
        assert sorted(range(size), key=lambda i: (-fast[i], i)) == sorted(
            range(size), key=lambda i: (-oracle[i], i)
        )


class TestScorePoolParity:
    def test_dssm(self, vocab):
        model = DSSMMatcher(vocab, dim=8, hidden=8, seed=1)
        model._fitted = True
        _assert_pool_parity(model, np.random.default_rng(10))

    def test_knowledge_without_knowledge(self, vocab):
        model = _knowledge_matcher(vocab, use_knowledge=False)
        model._fitted = True
        _assert_pool_parity(model, np.random.default_rng(11))

    def test_knowledge_with_knowledge(self, vocab):
        model = _knowledge_matcher(vocab, use_knowledge=True)
        model._fitted = True
        _assert_pool_parity(model, np.random.default_rng(12))

    def test_match_pyramid_fallback(self, vocab):
        model = MatchPyramidMatcher(vocab, dim=8, seed=1)
        model._fitted = True
        assert not model.fast_path
        _assert_pool_parity(model, np.random.default_rng(13), pools=(0, 1, 4))

    def test_re2_fallback(self, vocab):
        model = RE2Matcher(vocab, dim=8, hidden=8, seed=1)
        model._fitted = True
        assert not model.fast_path
        _assert_pool_parity(model, np.random.default_rng(14), pools=(0, 1, 4))

    def test_precomputed_doc_encodings_are_equivalent(self, vocab):
        for model in (
            DSSMMatcher(vocab, dim=8, hidden=8, seed=4),
            _knowledge_matcher(vocab, use_knowledge=True, seed=5),
        ):
            model._fitted = True
            rng = np.random.default_rng(15)
            query = ["red", "shoe", "w2"]
            pool = _random_pool(rng, 6)
            encoded = [model.encode_doc(doc) for doc in pool]
            assert_array_equal(
                model.score_pool(query, pool, doc_encodings=encoded),
                model.score_pool(query, pool),
            )
            # Partial encodings (cache misses) fill in transparently.
            partial = [
                encoding if i % 2 == 0 else None
                for i, encoding in enumerate(encoded)
            ]
            assert_array_equal(
                model.score_pool(query, pool, doc_encodings=partial),
                model.score_pool(query, pool),
            )

    def test_unfitted_pool_scoring_refused(self, vocab):
        model = DSSMMatcher(vocab, dim=8, hidden=8, seed=0)
        with pytest.raises(NotFittedError):
            model.score_pool(["red"], [["shoe"]])

    def test_empty_doc_in_pool_raises_like_oracle(self, vocab):
        model = DSSMMatcher(vocab, dim=8, hidden=8, seed=0)
        model._fitted = True
        with pytest.raises(DataError):
            model.score_pool(["red"], [["shoe"], []])


# ---------------------------------------------------------------- service
@pytest.fixture(scope="module")
def built():
    return build_alicoco(TINY)


@pytest.fixture(scope="module")
def reranker(built):
    store = built.store
    pairs = []
    for spec in built.concepts[:8]:
        concept_id = built.concept_ids[spec.text]
        linked = {
            relation.source
            for relation in store.in_relations(
                concept_id, RelationKind.ITEM_ECOMMERCE
            )
        }
        for index in range(6):
            item_id = built.item_ids[index]
            pairs.append(
                pair_from_texts(
                    spec.tokens,
                    store.get(item_id).title.split(),
                    label=int(item_id in linked),
                )
            )
    model = DSSMMatcher(vocab=matching_vocab(pairs), dim=8, hidden=8, seed=1)
    train_matcher(model, pairs, epochs=2, lr=0.05, seed=0)
    return model


def _concept_ids(built, count=8):
    return [node.id for node in built.store.nodes(ECOMMERCE_PREFIX)][:count]


def _queries(built, count=6):
    return [" ".join(spec.tokens) for spec in built.concepts[:count]]


class TestServiceFastPath:
    def test_endpoints_match_scalar_oracle(self, built, reranker):
        fast = AliCoCoService.from_build(built, reranker=reranker)
        oracle = AliCoCoService.from_build(
            built, reranker=reranker, config=ServiceConfig(use_fast_path=False)
        )
        for concept_id in _concept_ids(built):
            a = fast.items_for_concept_reranked(concept_id)
            b = oracle.items_for_concept_reranked(concept_id)
            assert [item for item, _ in a] == [item for item, _ in b]
            for (_, fast_score), (_, oracle_score) in zip(a, b):
                assert abs(fast_score - oracle_score) <= 1e-9
        for text in _queries(built):
            a = fast.search_reranked(text)
            b = oracle.search_reranked(text)
            assert [concept for concept, _ in a] == [concept for concept, _ in b]
            for (_, fast_score), (_, oracle_score) in zip(a, b):
                assert abs(fast_score - oracle_score) <= 1e-9

    def test_warm_doc_cache_serves_identical_results(self, built, reranker):
        lazy = AliCoCoService.from_build(built, reranker=reranker)
        warm = AliCoCoService.from_build(built, reranker=reranker)
        warmed = warm.warm_doc_cache()
        assert warmed > 0
        assert warm.warm_doc_cache() == 0  # idempotent: already encoded
        for concept_id in _concept_ids(built, 4):
            assert lazy.items_for_concept_reranked(
                concept_id
            ) == warm.items_for_concept_reranked(concept_id)
        stats = warm.stats()
        assert stats.doc_cache_entries == warmed
        # Every post-warm lookup was a hit.
        assert stats.doc_cache_misses == 0
        assert stats.doc_cache_hits > 0

    def test_prewarm_config_flag(self, built, reranker):
        service = AliCoCoService.from_build(
            built, reranker=reranker, config=ServiceConfig(prewarm_doc_cache=True)
        )
        assert service.stats().doc_cache_entries > 0

    def test_oracle_service_has_no_doc_cache(self, built, reranker):
        oracle = AliCoCoService.from_build(
            built, reranker=reranker, config=ServiceConfig(use_fast_path=False)
        )
        for concept_id in _concept_ids(built, 3):
            oracle.items_for_concept_reranked(concept_id)
        stats = oracle.stats()
        assert stats.doc_cache_capacity == 0
        assert stats.doc_cache_hits == stats.doc_cache_misses == 0
        assert oracle.warm_doc_cache() == 0

    def test_doc_cache_capacity_zero_still_batches(self, built, reranker):
        uncached = AliCoCoService.from_build(
            built, reranker=reranker, config=ServiceConfig(doc_cache_capacity=0)
        )
        baseline = AliCoCoService.from_build(built, reranker=reranker)
        for concept_id in _concept_ids(built, 3):
            assert uncached.items_for_concept_reranked(
                concept_id
            ) == baseline.items_for_concept_reranked(concept_id)
        assert uncached.stats().doc_cache_capacity == 0

    def test_negative_doc_cache_capacity_rejected(self):
        with pytest.raises(ConfigError):
            ServiceConfig(doc_cache_capacity=-1)

    def test_doc_cache_line_in_stats_table(self, built, reranker):
        service = AliCoCoService.from_build(built, reranker=reranker)
        service.items_for_concept_reranked(_concept_ids(built, 1)[0])
        assert "doc cache:" in service.stats().format_table()

    def test_doc_cache_consistent_under_contention(self, built, reranker):
        # cache_capacity=0 disables the *result* LRU so every request
        # actually walks the doc-encoding cache; 8 threads then hammer
        # the same queries concurrently.
        service = AliCoCoService.from_build(
            built, reranker=reranker, config=ServiceConfig(cache_capacity=0)
        )
        concept_ids = _concept_ids(built, 6)
        queries = _queries(built, 4)
        expected_items = {
            concept_id: service.items_for_concept_reranked(concept_id)
            for concept_id in concept_ids
        }
        expected_search = {text: service.search_reranked(text) for text in queries}

        threads = 8
        rounds = 4
        barrier = threading.Barrier(threads)
        failures: list[str] = []

        def worker(seed):
            barrier.wait()
            rng = np.random.default_rng(seed)
            for _ in range(rounds):
                concept_id = concept_ids[rng.integers(len(concept_ids))]
                if service.items_for_concept_reranked(
                    concept_id
                ) != expected_items[concept_id]:
                    failures.append(f"items diverged for {concept_id}")
                text = queries[rng.integers(len(queries))]
                if service.search_reranked(text) != expected_search[text]:
                    failures.append(f"search diverged for {text!r}")

        pool = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        assert not failures
        stats = service.stats()
        doc_lookups = stats.doc_cache_hits + stats.doc_cache_misses
        assert doc_lookups > 0
        assert stats.doc_cache_hits > 0  # the frozen catalog got reused
        # The cache's own invariant, via the service stats cut.
        assert service._doc_cache.lookups == doc_lookups
