"""Tests for criteria checks, candidate generation and wide features."""

import numpy as np
import pytest

from repro.concepts import CandidateGenerator, CriteriaChecker, WideFeatureExtractor
from repro.nlp.ngram_lm import BidirectionalLanguageModel
from repro.synth import build_lexicon, World


@pytest.fixture(scope="module")
def world():
    return World(build_lexicon(seed=7), seed=7)


@pytest.fixture(scope="module")
def language_model(world):
    rng = np.random.default_rng(0)
    concepts = world.sample_good_concepts(rng, 80)
    sentences = [list(spec.tokens) for spec in concepts] * 3
    return BidirectionalLanguageModel().fit(sentences)


@pytest.fixture(scope="module")
def checker(world, language_model):
    surfaces = set(world.lexicon.surfaces())
    words = {w for s in surfaces for w in s.split()}
    words |= {"for", "in", "and", "keep", "essentials", "get", "rid", "of"}
    audiences = set(world.lexicon.domain_surfaces("Audience"))
    return CriteriaChecker(surfaces, words, language_model, audiences,
                           perplexity_threshold=5000.0)


class TestCriteria:
    def test_good_concept_passes(self, checker):
        report = checker.check("outdoor barbecue")
        assert report.passes_heuristics

    def test_nonsense_fails_commerce_meaning(self, checker):
        report = checker.check("hens lay eggs")
        assert not report.has_commerce_meaning

    def test_typo_fails_correctness(self, checker):
        report = checker.check("outdoor brabecue")
        assert not report.correct

    def test_double_audience_fails_clarity(self, checker):
        report = checker.check("snacks for kids and infants")
        assert not report.clear

    def test_single_audience_is_clear(self, checker):
        assert checker.check("snacks for kids").clear

    def test_shuffled_concept_has_higher_perplexity(self, checker):
        coherent = checker.check("christmas gifts for grandpa").perplexity
        shuffled = checker.check("gifts grandpa for christmas").perplexity
        assert shuffled > coherent


class TestGeneration:
    def test_combined_candidates_mixed_quality(self, world):
        generator = CandidateGenerator(world)
        rng = np.random.default_rng(1)
        specs = generator.combine_primitives(rng, 30, 30)
        good = sum(1 for s in specs if s.good)
        assert good == 30
        assert len(specs) == 60

    def test_mined_candidates_from_corpus(self, world):
        generator = CandidateGenerator(world)
        sentences = [["outdoor", "barbecue", "party"],
                     ["outdoor", "barbecue", "fun"]] * 10
        mined = generator.mine_from_corpus(sentences, top_k=5)
        assert "outdoor barbecue" in mined

    def test_generate_returns_report(self, world):
        generator = CandidateGenerator(world)
        rng = np.random.default_rng(2)
        sentences = [["warm", "coat", "sale"]] * 12
        combined, mined, report = generator.generate(sentences, rng, 10, 10)
        assert report.combined == len(combined) == 20
        assert report.mined == len(mined)
        assert report.total == report.mined + report.combined


class TestWideFeatures:
    def make_extractor(self, language_model, use_ppl=True):
        corpus = [["warm", "coat"], ["warm", "hat"], ["red", "dress"]] * 5
        return WideFeatureExtractor(language_model, corpus,
                                    use_perplexity=use_ppl)

    def test_dim_with_and_without_ppl(self, language_model):
        assert self.make_extractor(language_model, True).dim == 6
        assert self.make_extractor(language_model, False).dim == 5

    def test_features_shape_and_finite(self, language_model):
        extractor = self.make_extractor(language_model)
        features = extractor.extract("warm coat")
        assert features.shape == (6,)
        assert np.all(np.isfinite(features))

    def test_oov_counted(self, language_model):
        extractor = self.make_extractor(language_model)
        assert extractor.extract("zzz qqq")[4] == 2.0
        assert extractor.extract("warm coat")[4] == 0.0

    def test_popularity_ordering(self, language_model):
        extractor = self.make_extractor(language_model)
        popular = extractor.extract("warm coat")[2]
        rare = extractor.extract("red dress")[2]
        assert popular > rare

    def test_batch_stacks(self, language_model):
        extractor = self.make_extractor(language_model)
        batch = extractor.extract_batch(["warm coat", "red dress"])
        assert batch.shape == (2, 6)
