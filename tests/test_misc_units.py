"""Gap-filling unit tests: config, rng, ids, search internals, world
helpers, reviews/guides determinism."""

import numpy as np
import pytest

from repro import build_alicoco, TINY
from repro.config import BENCH, get_scale, RunScale, SMALL, TINY as TINY_SCALE
from repro.errors import ConfigError
from repro.kg.ids import IdAllocator, layer_of
from repro.synth import build_lexicon, World
from repro.utils.rng import derive_seed, spawn_rng


class TestConfig:
    def test_presets_lookup(self):
        assert get_scale("tiny") is TINY_SCALE
        assert get_scale("small") is SMALL
        assert get_scale("bench") is BENCH

    def test_unknown_preset(self):
        with pytest.raises(ConfigError):
            get_scale("galactic")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigError):
            RunScale(name="bad", n_items=0, n_queries=1, n_reviews=1,
                     n_guides=1, embedding_dim=8, hidden_dim=8, epochs=1)

    def test_with_seed_copies(self):
        derived = TINY_SCALE.with_seed(99)
        assert derived.seed == 99
        assert derived.n_items == TINY_SCALE.n_items
        assert TINY_SCALE.seed != 99

    def test_bench_has_larger_open_classes(self):
        assert BENCH.n_brands > TINY_SCALE.n_brands
        assert BENCH.n_ips > TINY_SCALE.n_ips


class TestRng:
    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(7, "a", "b") == derive_seed(7, "a", "b")
        assert derive_seed(7, "a", "b") != derive_seed(7, "b", "a")
        assert derive_seed(7, "a") != derive_seed(8, "a")

    def test_spawn_rng_independent_streams(self):
        first = spawn_rng(7, "x").random(4)
        second = spawn_rng(7, "y").random(4)
        assert not np.allclose(first, second)
        again = spawn_rng(7, "x").random(4)
        np.testing.assert_allclose(first, again)


class TestIds:
    def test_allocator_sequential_per_layer(self):
        allocator = IdAllocator()
        assert allocator.allocate("pc") == "pc_0"
        assert allocator.allocate("pc") == "pc_1"
        assert allocator.allocate("ec") == "ec_0"

    def test_unknown_prefix(self):
        with pytest.raises(KeyError):
            IdAllocator().allocate("spaceship")

    def test_layer_of(self):
        assert layer_of("item_42") == "item"
        with pytest.raises(ValueError):
            layer_of("banana_7")


class TestSearchInternals:
    @pytest.fixture(scope="class")
    def built(self):
        return build_alicoco(TINY)

    def test_find_concept_prefers_longest_containment(self, built):
        from repro.apps import SemanticSearchEngine
        engine = SemanticSearchEngine(built.store)
        # Two concepts where one's tokens subsume the other would pick the
        # longer; at minimum exact match wins over containment.
        spec = built.concepts[0]
        assert engine.find_concept(spec.text).text == spec.text

    def test_retrieve_ranks_multi_term_matches_higher(self, built):
        from repro.apps import SemanticSearchEngine
        engine = SemanticSearchEngine(built.store)
        item = built.corpus.items[0]
        tokens = item.title.split()
        if len(tokens) >= 2:
            query = " ".join(tokens[:2])
            results = engine.retrieve_items(query, top_k=5)
            assert results, "title terms must retrieve the item"

    def test_relevance_bounds(self, built):
        from repro.apps import SemanticSearchEngine
        engine = SemanticSearchEngine(built.store)
        node = next(built.store.nodes("item"))
        assert engine.relevance("", node) == 0.0
        score = engine.relevance(node.title, node)
        assert score == 1.0


class TestWorldHelpers:
    @pytest.fixture(scope="class")
    def world(self):
        return World(build_lexicon(seed=7), seed=7)

    def test_functions_for_class(self, world):
        functions = world.functions_for_class("Clothing")
        assert "warm" in functions
        assert "noise-cancelling" not in functions

    def test_audiences_for_class(self, world):
        assert "pets" in world.audiences_for_class("PetGear")
        assert "pets" not in world.audiences_for_class("Clothing")

    def test_two_audience_rule(self, world):
        from repro.synth.world import ConceptPart
        ok, reason = world.compatible((ConceptPart("kids", "Audience"),
                                       ConceptPart("olds", "Audience")))
        assert not ok and reason == "two audiences"

    def test_empty_parts_compatible(self, world):
        ok, reason = world.compatible(())
        assert ok and reason == ""


class TestGeneratorDeterminism:
    def test_reviews_and_guides_reproducible(self):
        from repro.synth.guides import generate_guides
        from repro.synth.items import generate_items
        from repro.synth.reviews import generate_reviews
        world = World(build_lexicon(seed=7), seed=7)
        items = generate_items(world, 50)
        assert generate_reviews(world, items, 30) == \
            generate_reviews(world, items, 30)
        assert generate_guides(world, [], 30) == generate_guides(world, [], 30)

    def test_reviews_empty_items(self):
        from repro.synth.reviews import generate_reviews
        world = World(build_lexicon(seed=7), seed=7)
        assert generate_reviews(world, [], 10) == []

    def test_clicklog_reproducible(self):
        from repro.synth.clicklog import simulate_clicks
        from repro.synth.items import generate_items
        world = World(build_lexicon(seed=7), seed=7)
        items = generate_items(world, 60)
        concepts = world.sample_good_concepts(np.random.default_rng(0), 10)
        first = simulate_clicks(world, concepts, items)
        second = simulate_clicks(world, concepts, items)
        assert first == second
