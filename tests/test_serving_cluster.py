"""The cluster serving tier: sharding, scatter-gather, coalescing, shedding.

The contract under test is *bit-identity*: an ``AliCoCoCluster`` over N
shards must answer every endpoint exactly like one ``AliCoCoService``
over the same store — placement, BM25 projection and the deterministic
merges are implementation detail, not observable behaviour.  On top of
that sit the traffic-shaping layers: the coalescer's singleflight
semantics (one computation per concurrent duplicate set, exceptions
shared, never a hang) and admission control's typed, bounded shedding.
"""

import threading
import time
import zlib

import pytest

from repro import TINY, build_alicoco
from repro.errors import (
    ConfigError,
    DataError,
    NodeNotFoundError,
    OverloadedError,
    RelationError,
    error_by_name,
)
from repro.kg.ids import (
    CLASS_PREFIX,
    ECOMMERCE_PREFIX,
    ITEM_PREFIX,
    PRIMITIVE_PREFIX,
)
from repro.serving import (
    AdmissionController,
    AliCoCoCluster,
    AliCoCoService,
    BatchResult,
    CLUSTER_META,
    Coalescer,
    ClusterConfig,
    CONCEPT_INDEX,
    ClusterStats,
    ServiceConfig,
    merge_ranked,
    owned_ids,
    project_bm25_index,
    shard_of,
    shard_sizes,
    split_store,
)
from repro.serving.service import fit_concept_index

SHARD_COUNTS = (1, 2, 3)


@pytest.fixture(scope="module")
def built(built_tiny):
    return built_tiny


@pytest.fixture(scope="module")
def store(built):
    return built.store


@pytest.fixture(scope="module")
def service(store):
    return AliCoCoService(store)


def _cluster(store, n_shards, **kwargs):
    return AliCoCoCluster(store, config=ClusterConfig(n_shards=n_shards), **kwargs)


class TestShardOf:
    def test_matches_crc32_and_is_stable(self):
        for node_id in ("ec_0", "ec_17", "item_3", "pc_5"):
            expected = zlib.crc32(node_id.encode("utf-8")) % 4
            assert shard_of(node_id, 4) == expected
            assert shard_of(node_id, 4) == shard_of(node_id, 4)

    def test_single_shard_owns_everything(self):
        assert shard_of("ec_123", 1) == 0

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigError, match="n_shards"):
            shard_of("ec_0", 0)

    def test_placement_roughly_balances(self):
        counts = [0, 0, 0, 0]
        for index in range(2000):
            counts[shard_of(f"ec_{index}", 4)] += 1
        assert min(counts) > 300  # CRC32 spreads sequential ids evenly


class TestSplitStore:
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_partitioned_layers_are_partitioned(self, store, n_shards):
        shards = split_store(store, n_shards)
        for layer in (ECOMMERCE_PREFIX, ITEM_PREFIX):
            for node in store.nodes(layer):
                owner = shard_of(node.id, n_shards)
                assert node.id in shards[owner]

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_replicated_layers_are_everywhere(self, store, n_shards):
        shards = split_store(store, n_shards)
        for layer in (CLASS_PREFIX, PRIMITIVE_PREFIX):
            ids = [node.id for node in store.nodes(layer)]
            for shard in shards:
                assert all(node_id in shard for node_id in ids)

    def test_owner_shard_holds_incident_relations_in_global_order(self, store):
        """The placement invariant the routed endpoints stand on."""
        from repro.kg.relations import RelationKind

        n_shards = 3
        shards = split_store(store, n_shards)
        for node in store.nodes(ECOMMERCE_PREFIX):
            owner = shards[shard_of(node.id, n_shards)]
            for kind in RelationKind:
                assert owner.in_relations(node.id, kind) == store.in_relations(
                    node.id, kind
                )
                assert owner.out_relations(node.id, kind) == store.out_relations(
                    node.id, kind
                )

    def test_split_is_deterministic(self, store):
        first = split_store(store, 2)
        second = split_store(store, 2)
        for shard_a, shard_b in zip(first, second):
            assert [n.id for n in shard_a.nodes()] == [n.id for n in shard_b.nodes()]
            assert list(shard_a.relations()) == list(shard_b.relations())

    def test_owned_ids_excludes_ghosts(self, store):
        n_shards = 3
        shards = split_store(store, n_shards)
        for shard_id, shard in enumerate(shards):
            owned = set(owned_ids(shard, shard_id, n_shards, ECOMMERCE_PREFIX))
            present = {node.id for node in shard.nodes(ECOMMERCE_PREFIX)}
            assert owned <= present
            for node_id in owned:
                assert shard_of(node_id, n_shards) == shard_id


class TestBM25Projection:
    def test_projected_scores_equal_global_scores(self, store):
        index = fit_concept_index(store)
        n_shards = 3
        doc_ids = index.to_state()["doc_ids"]
        position = {doc_id: i for i, doc_id in enumerate(doc_ids)}
        queries = [tuple(store.get(doc_id).tokens) for doc_id in doc_ids[:10]]
        projections = [
            project_bm25_index(
                index,
                [d for d in doc_ids if shard_of(d, n_shards) == shard],
            )
            for shard in range(n_shards)
        ]
        for tokens in queries:
            expected = tuple(index.top_k(tokens, k=10))
            arms = [
                tuple(projection.top_k(tokens, k=10))
                if projection is not None
                else ()
                for projection in projections
            ]
            assert merge_ranked(arms, position, 10) == expected

    def test_empty_subset_projects_to_none(self, store):
        index = fit_concept_index(store)
        assert project_bm25_index(index, []) is None
        assert project_bm25_index(None, ["ec_0"]) is None


class TestClusterParity:
    """Every endpoint answers exactly like the monolithic service."""

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_point_lookups(self, store, service, n_shards):
        cluster = _cluster(store, n_shards)
        for node in store.nodes(ECOMMERCE_PREFIX):
            assert cluster.items_for_concept(node.id) == service.items_for_concept(
                node.id
            )
            assert cluster.items_for_concept(node.id, 3) == (
                service.items_for_concept(node.id, 3)
            )
            assert cluster.interpretation(node.id) == service.interpretation(node.id)
        for node in list(store.nodes(ITEM_PREFIX))[:30]:
            assert cluster.concepts_for_item(node.id) == service.concepts_for_item(
                node.id
            )
        for node in store.nodes(PRIMITIVE_PREFIX):
            assert cluster.hypernyms(node.id) == service.hypernyms(node.id)
            assert cluster.hypernyms(node.id, transitive=True) == (
                service.hypernyms(node.id, transitive=True)
            )

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_search_is_bit_identical(self, store, service, n_shards):
        cluster = _cluster(store, n_shards)
        queries = [
            " ".join(node.tokens)
            for node in list(store.nodes(ECOMMERCE_PREFIX))[:15]
        ] + ["gift", "unknown zzz tokens", ""]
        for query in queries:
            assert cluster.search(query) == service.search(query)
            assert cluster.search(query, 3) == service.search(query, 3)

    def test_error_parity(self, store, service):
        cluster = _cluster(store, 2)
        cases = [
            (lambda target: target.items_for_concept("ec_999999"), NodeNotFoundError),
            (lambda target: target.items_for_concept("bogus"), NodeNotFoundError),
            (lambda target: target.items_for_concept("item_0"), RelationError),
            (lambda target: target.items_for_concept("ec_0", -1), ConfigError),
            (lambda target: target.search("x", 0), ConfigError),
            (lambda target: target.hypernyms("ec_0"), RelationError),
            (lambda target: target.tag("text"), ConfigError),  # no tagger
            (lambda target: target.search_reranked("x"), ConfigError),
        ]
        for call, expected in cases:
            with pytest.raises(expected):
                call(service)
            with pytest.raises(expected):
                call(cluster)

    def test_batch_parity_including_envelopes(self, store, service, built):
        cluster = _cluster(store, 3)
        concept_id = built.concept_ids[built.concepts[0].text]
        requests = [
            ("search", built.concepts[0].text),
            ("items_for_concept", concept_id, 5),
            ("interpretation", concept_id),
            ("items_for_concept", "ec_999999"),
            ("teleport", concept_id),
            ("search", "x", -2),
        ]
        enveloped = cluster.batch(requests, on_error="envelope")
        assert enveloped == service.batch(requests, on_error="envelope")
        assert enveloped == cluster.batch(requests, on_error="envelope", workers=4)
        assert all(isinstance(result, BatchResult) for result in enveloped)
        with pytest.raises(NodeNotFoundError):
            cluster.batch(requests)  # raise mode propagates the first failure
        with pytest.raises(ConfigError, match="on_error"):
            cluster.batch(requests, on_error="explode")

    def test_shard_calls_are_tracked(self, store):
        cluster = _cluster(store, 3)
        cluster.search("gift")  # scatter: every shard
        stats = cluster.stats()
        assert all(count >= 1 for count in stats.shard_calls)
        assert stats.imbalance >= 1.0
        concept_id = next(iter(store.nodes(ECOMMERCE_PREFIX))).id
        owner = shard_of(concept_id, 3)
        before = cluster.stats().shard_calls[owner]
        cluster.items_for_concept(concept_id)
        assert cluster.stats().shard_calls[owner] == before + 1


class TestRerankedParity:
    @pytest.fixture(scope="class", params=["bm25", "hybrid"])
    def mode(self, request):
        return request.param

    def test_reranked_endpoints_bit_identical(
        self, store, built, trained_reranker, mode
    ):
        config = ServiceConfig(retriever=mode)
        service = AliCoCoService(store, config=config, reranker=trained_reranker)
        cluster = _cluster(
            store, 2, service_config=config, reranker=trained_reranker
        )
        concept_ids = [node.id for node in store.nodes(ECOMMERCE_PREFIX)][:6]
        for concept_id in concept_ids:
            assert cluster.items_for_concept_reranked(concept_id, 5) == (
                service.items_for_concept_reranked(concept_id, 5)
            )
        for spec in built.concepts[:6]:
            assert cluster.search_reranked(spec.text, 5) == (
                service.search_reranked(spec.text, 5)
            )


class TestClusterSnapshot:
    def test_same_shard_count_warm_start_is_bit_identical(
        self, store, built, trained_reranker, tmp_path
    ):
        from tests.conftest import make_trained_reranker

        config = ServiceConfig(retriever="hybrid")
        cluster = _cluster(
            store, 3, service_config=config, reranker=trained_reranker
        )
        query = built.concepts[0].text
        expected = cluster.search_reranked(query, 5)
        path = tmp_path / "cluster.snapshot.jsonl"
        assert cluster.save_snapshot(path) > 0

        fresh = make_trained_reranker(built)
        warm = AliCoCoCluster.from_snapshot(
            path,
            config=ClusterConfig(n_shards=3),
            service_config=config,
            reranker=fresh,
        )
        assert warm.search_reranked(query, 5) == expected
        # Per-shard indexes really came from the snapshot, not a re-fit.
        from repro.kg.serialize import load_snapshot

        snapshot = load_snapshot(path)
        assert snapshot.index_states[CLUSTER_META] == {"n_shards": 3}
        assert any("@shard" in name for name in snapshot.index_states)

    def test_different_shard_count_resplits_deterministically(
        self, store, built, trained_reranker, tmp_path
    ):
        from tests.conftest import make_trained_reranker

        cluster = _cluster(store, 3, reranker=trained_reranker)
        query = built.concepts[1].text
        expected = cluster.search_reranked(query, 5)
        path = tmp_path / "cluster.snapshot.jsonl"
        cluster.save_snapshot(path)
        resplit = AliCoCoCluster.from_snapshot(
            path,
            config=ClusterConfig(n_shards=2),
            reranker=make_trained_reranker(built),
        )
        assert resplit.n_shards == 2
        assert resplit.search_reranked(query, 5) == expected

    def test_single_service_reads_a_cluster_snapshot(self, store, built, tmp_path):
        cluster = _cluster(store, 2)
        path = tmp_path / "cluster.snapshot.jsonl"
        cluster.save_snapshot(path)
        service = AliCoCoService.from_snapshot(path)
        query = built.concepts[0].text
        assert service.search(query) == cluster.search(query)

    def test_fingerprint_mismatch_is_rejected(self, store, tmp_path):
        cluster = AliCoCoCluster(
            store, config=ClusterConfig(n_shards=2), config_fingerprint="abc"
        )
        path = tmp_path / "cluster.snapshot.jsonl"
        cluster.save_snapshot(path)
        with pytest.raises(DataError, match="fingerprint"):
            AliCoCoCluster.from_snapshot(path, expected_fingerprint="other")


class TestCoalescer:
    def test_concurrent_duplicates_share_one_computation(self):
        coalescer = Coalescer()
        release = threading.Event()
        computed = []

        def compute():
            release.wait(5)
            computed.append(1)
            return ("result",)

        results = []
        leader = threading.Thread(
            target=lambda: results.append(coalescer.submit("key", compute))
        )
        leader.start()
        while "key" not in coalescer._flights and leader.is_alive():
            time.sleep(0.001)  # leader registered its flight

        joiners = [
            threading.Thread(
                target=lambda: results.append(
                    coalescer.submit("key", lambda: pytest.fail("joiner computed"))
                )
            )
            for _ in range(4)
        ]
        for thread in joiners:
            thread.start()
        while coalescer.stats().joined < 4:
            time.sleep(0.001)
        release.set()
        leader.join(5)
        for thread in joiners:
            thread.join(5)
        assert computed == [1]  # exactly one execution
        assert len(results) == 5
        assert all(result is results[0] for result in results)
        stats = coalescer.stats()
        assert stats.flights == 1
        assert stats.joined == 4
        assert stats.requests == 5
        assert stats.max_batch == 5
        assert stats.mean_batch == 5.0

    def test_joiners_reraise_the_leaders_exception(self):
        coalescer = Coalescer()
        release = threading.Event()
        boom = ConfigError("bad request")

        def explode():
            release.wait(5)
            raise boom

        caught = []

        def leader():
            with pytest.raises(ConfigError):
                coalescer.submit("key", explode)

        def joiner():
            try:
                coalescer.submit("key", lambda: None)
            except ConfigError as error:
                caught.append(error)

        leader_thread = threading.Thread(target=leader)
        leader_thread.start()
        while "key" not in coalescer._flights and leader_thread.is_alive():
            time.sleep(0.001)
        joiner_thread = threading.Thread(target=joiner)
        joiner_thread.start()
        while coalescer.stats().joined < 1:
            time.sleep(0.001)
        release.set()
        leader_thread.join(5)
        joiner_thread.join(5)
        assert caught == [boom]  # the very same exception object

    def test_sequential_submissions_do_not_coalesce(self):
        coalescer = Coalescer()
        assert coalescer.submit("key", lambda: 1) == 1
        assert coalescer.submit("key", lambda: 2) == 2  # fresh flight
        stats = coalescer.stats()
        assert stats.flights == 2
        assert stats.joined == 0

    def test_window_sleeps_before_computing(self):
        slept = []
        coalescer = Coalescer(window_seconds=0.25, sleep=slept.append)
        assert coalescer.submit("key", lambda: "value") == "value"
        assert slept == [0.25]

    def test_zero_window_never_sleeps(self):
        coalescer = Coalescer(sleep=lambda _: pytest.fail("slept at window=0"))
        assert coalescer.submit("key", lambda: "value") == "value"

    def test_negative_window_rejected(self):
        with pytest.raises(ConfigError, match="window"):
            Coalescer(window_seconds=-0.1)


class TestAdmission:
    def test_immediate_admission_records_zero_wait(self):
        controller = AdmissionController(2, 4, 1.0)
        with controller.admit() as waited:
            assert waited == 0.0
            assert controller.inflight == 1
        assert controller.inflight == 0
        stats = controller.stats()
        assert stats.admitted == 1
        assert stats.shed == ()

    def test_queue_full_sheds_immediately(self):
        controller = AdmissionController(1, 0, 1.0)
        with controller.admit():
            start = time.perf_counter()
            with pytest.raises(OverloadedError) as excinfo:
                with controller.admit():
                    pass
            assert excinfo.value.reason == "queue_full"
            assert time.perf_counter() - start < 0.5  # no waiting at depth 0
        stats = controller.stats()
        assert stats.shed == (("queue_full", 1),)
        assert stats.shed_rate == pytest.approx(0.5)

    def test_queue_timeout_sheds_within_the_bound(self):
        controller = AdmissionController(1, 4, 0.05)
        with controller.admit():
            start = time.perf_counter()
            with pytest.raises(OverloadedError) as excinfo:
                with controller.admit():
                    pass
            elapsed = time.perf_counter() - start
            assert excinfo.value.reason == "queue_timeout"
            assert 0.05 <= elapsed < 1.0  # bounded, not unbounded queueing
        assert controller.stats().shed == (("queue_timeout", 1),)
        assert controller.stats().shed_wait_p99_ms >= 50.0

    def test_queued_request_admits_when_a_slot_frees(self):
        controller = AdmissionController(1, 4, 5.0)
        release = threading.Event()
        admitted = threading.Event()

        def holder():
            with controller.admit():
                admitted.set()
                release.wait(5)

        thread = threading.Thread(target=holder)
        thread.start()
        admitted.wait(5)
        waits = []

        def waiter():
            with controller.admit() as waited:
                waits.append(waited)

        waiting = threading.Thread(target=waiter)
        waiting.start()
        while controller.queued == 0 and waiting.is_alive():
            time.sleep(0.001)
        release.set()
        thread.join(5)
        waiting.join(5)
        assert len(waits) == 1 and waits[0] > 0.0
        stats = controller.stats()
        assert stats.admitted == 2
        assert stats.shed == ()

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="max_inflight"):
            AdmissionController(0, 1, 1.0)
        with pytest.raises(ConfigError, match="max_queue_depth"):
            AdmissionController(1, -1, 1.0)
        with pytest.raises(ConfigError, match="max_queue_wait"):
            AdmissionController(1, 1, 0.0)

    def test_overloaded_error_is_reconstructible_by_name(self):
        """Batch envelopes can re-raise a shed as its original type."""
        assert error_by_name("OverloadedError") is OverloadedError
        result = BatchResult(
            ok=False, error_type="OverloadedError", error_message="shed"
        )
        with pytest.raises(OverloadedError):
            result.unwrap()


class TestAdmissionLostWakeup:
    """Regression: a timeout-shed waiter must hand its wakeup on.

    ``_release()`` notifies exactly one waiter.  If that waiter's
    deadline has already expired and the slot is busy again by the time
    it wakes (a fresh arrival barged into the freed slot, or ``notify``
    raced the waiter's own timeout inside ``Condition.wait``), it sheds
    with ``queue_timeout`` — and before the fix the notification died
    with it, leaving every waiter queued behind it to sleep out its full
    real-time wait next to state it should react to.

    The reproduction is deterministic: an injectable clock controls the
    deadlines, a holder keeps the slot busy, and a single injected
    wakeup stands in for the consumed notification.  CPython wakes
    condition waiters in FIFO order, so the expired waiter A is woken
    first; the fix's re-notify must cascade to waiter B within a tight
    real-time bound even though B's own wait has ~30 real seconds left.
    """

    @staticmethod
    def _poll(predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while not predicate():
            if time.monotonic() > deadline:  # pragma: no cover - failure
                raise AssertionError("condition never became true")
            time.sleep(0.001)

    def test_timeout_shed_passes_its_wakeup_on(self):
        clock = {"now": 0.0}
        controller = AdmissionController(
            1, 4, 30.0, clock=lambda: clock["now"]
        )
        release = threading.Event()
        holding = threading.Event()
        outcomes = {}
        done = {"a": threading.Event(), "b": threading.Event()}

        def holder():
            with controller.admit():
                holding.set()
                release.wait(10)

        def waiter(name):
            try:
                with controller.admit():
                    outcomes[name] = "admitted"
            except OverloadedError as error:
                outcomes[name] = error.reason
            finally:
                done[name].set()

        threads = [threading.Thread(target=holder)]
        threads[0].start()
        assert holding.wait(5)
        threads.append(threading.Thread(target=waiter, args=("a",)))
        threads[1].start()  # queues at t=0, deadline t=30
        self._poll(lambda: controller.queued == 1)
        clock["now"] = 100.0  # A's deadline long past
        threads.append(threading.Thread(target=waiter, args=("b",)))
        threads[2].start()  # queues at t=100, deadline t=130
        self._poll(lambda: controller.queued == 2)
        clock["now"] = 200.0  # both deadlines now expired

        # One wakeup, slot still busy: exactly the state the bug leaves
        # behind after a shed consumes a release's notification.
        with controller._condition:
            controller._condition.notify()

        assert done["a"].wait(5.0)
        assert outcomes["a"] == "queue_timeout"
        # Without the re-notify, B sleeps its remaining ~30 real seconds
        # and this bounded wait times out.
        assert done["b"].wait(2.0), "waiter B never received the wakeup"
        assert outcomes["b"] == "queue_timeout"

        release.set()
        for thread in threads:
            thread.join(5)
        stats = controller.stats()
        assert stats.shed == (("queue_timeout", 2),)
        assert stats.admitted == 1  # the holder only

    def test_stats_reads_percentiles_inside_the_counter_lock(self):
        """Regression: ``stats()`` read the wait percentiles after
        releasing the condition lock, so ``admitted`` and the
        percentiles could disagree mid-burst.  Pin the contract: the
        reservoirs are consulted while the lock is still held.
        """
        controller = AdmissionController(1, 2, 1.0)
        with controller.admit():
            pass

        class LockCheckingReservoir:
            def __init__(self, inner):
                self._inner = inner
                self.checked = 0

            def percentiles_ms(self):
                assert controller._condition._is_owned(), (
                    "wait percentiles read outside the admission lock"
                )
                self.checked += 1
                return self._inner.percentiles_ms()

        controller.queue_wait = LockCheckingReservoir(controller.queue_wait)
        controller.shed_wait = LockCheckingReservoir(controller.shed_wait)
        stats = controller.stats()
        assert controller.queue_wait.checked == 1
        assert controller.shed_wait.checked == 1
        assert stats.admitted == 1
        assert stats.queue_wait_p99_ms == 0.0  # immediate admission

    def test_stats_snapshots_stay_consistent_under_churn(self):
        """Concurrent ``stats()`` during admit/shed churn: every
        snapshot internally consistent and monotonic."""
        controller = AdmissionController(2, 2, 0.01)
        stop = threading.Event()
        errors = []

        def churn():
            try:
                while not stop.is_set():
                    try:
                        with controller.admit():
                            pass
                    except OverloadedError:
                        pass
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def snapshot():
            try:
                last = controller.stats()
                while not stop.is_set():
                    now = controller.stats()
                    assert now.admitted >= last.admitted
                    assert now.shed_total >= last.shed_total
                    if now.admitted + now.shed_total == 0:
                        assert now.queue_wait_p99_ms == 0.0
                        assert now.shed_wait_p99_ms == 0.0
                    last = now
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        workers = [threading.Thread(target=churn) for _ in range(4)]
        readers = [threading.Thread(target=snapshot) for _ in range(2)]
        for thread in workers + readers:
            thread.start()
        time.sleep(0.3)
        stop.set()
        for thread in workers + readers:
            thread.join(5)
        assert errors == []
        final = controller.stats()
        assert final.admitted > 0
        assert final.inflight == 0 and final.queued == 0


class TestClusterShedding:
    def test_overload_sheds_with_typed_error_and_meters_it(self, store):
        cluster = AliCoCoCluster(
            store,
            config=ClusterConfig(
                n_shards=2,
                max_inflight=1,
                max_queue_depth=0,
                max_queue_wait_ms=50,
                cache_capacity=0,
            ),
        )
        hold = threading.Event()
        entered = threading.Event()
        original = cluster._search_scattered

        def blocked(tokens, k, cgen):
            entered.set()
            hold.wait(5)
            return original(tokens, k, cgen)

        cluster._search_scattered = blocked
        thread = threading.Thread(target=lambda: cluster.search("gift"))
        thread.start()
        assert entered.wait(5)
        start = time.perf_counter()
        with pytest.raises(OverloadedError) as excinfo:
            cluster.search("other")
        elapsed = time.perf_counter() - start
        assert excinfo.value.reason == "queue_full"
        assert elapsed < 1.0  # shed fast, never hang
        hold.set()
        thread.join(5)
        stats = cluster.stats()
        assert stats.admission.shed == (("queue_full", 1),)
        assert ("OverloadedError", 1) in stats.endpoint("search").errors
        assert "shed" in stats.format_table()

    def test_cache_hits_bypass_admission(self, store):
        """A hot repeat must never consume a slot or shed."""
        cluster = AliCoCoCluster(
            store,
            config=ClusterConfig(
                n_shards=2, max_inflight=1, max_queue_depth=0, max_queue_wait_ms=50
            ),
        )
        first = cluster.search("gift")
        admitted_before = cluster.stats().admission.admitted
        assert cluster.search("gift") == first
        assert cluster.stats().admission.admitted == admitted_before


class TestClusterStatsReport:
    def test_format_table_sections(self, store):
        cluster = _cluster(store, 2)
        cluster.search("gift")
        table = cluster.stats().format_table()
        for fragment in ("shards: 2", "coalescer:", "admission:", "shard calls:"):
            assert fragment in table

    def test_unknown_endpoint_raises(self, store):
        with pytest.raises(KeyError):
            _cluster(store, 2).stats().endpoint("teleport")

    def test_config_validation(self, store):
        with pytest.raises(ConfigError, match="n_shards"):
            ClusterConfig(n_shards=0)
        with pytest.raises(ConfigError, match="coalesce_window_ms"):
            ClusterConfig(coalesce_window_ms=-1)
        with pytest.raises(ConfigError, match="fanout_workers"):
            ClusterConfig(fanout_workers=0)

    def test_bad_admission_knobs_surface_at_construction(self, store):
        with pytest.raises(ConfigError, match="max_inflight"):
            AliCoCoCluster(store, config=ClusterConfig(max_inflight=0))

    def test_ownership_imbalance_is_inf_safe(self, store):
        # Regression: with more shards than partitioned nodes, some
        # shard owns nothing and max/min used to divide by zero.
        n_shards = sum(shard_sizes(store, 1)) + 3
        sizes = shard_sizes(store, n_shards)
        assert 0 in sizes
        with AliCoCoCluster(
            store, config=ClusterConfig(n_shards=n_shards)
        ) as cluster:
            stats = cluster.stats()
            assert stats.ownership_imbalance == float("inf")
            table = stats.format_table()  # must not raise
            assert "ownership imbalance inf" in table

    @pytest.mark.parametrize(
        ("owned", "expected"),
        [
            ((), 1.0),
            ((0, 0), 1.0),
            ((6, 2), 3.0),
            ((4, 0), float("inf")),
        ],
    )
    def test_ownership_imbalance_edge_ratios(self, store, owned, expected):
        with AliCoCoCluster(store, config=ClusterConfig(n_shards=2)) as c:
            from dataclasses import replace

            stats = replace(c.stats(), shard_owned=owned)
        assert stats.ownership_imbalance == expected

    def test_shard_sizes_census(self, store):
        sizes = shard_sizes(store, 3)
        totals = sum(
            1
            for layer in (ECOMMERCE_PREFIX, ITEM_PREFIX)
            for _ in store.nodes(layer)
        )
        assert sum(sizes) == totals
        assert sizes == [
            len(owned_ids(store, shard, 3, ECOMMERCE_PREFIX))
            + len(owned_ids(store, shard, 3, ITEM_PREFIX))
            for shard in range(3)
        ]
        with pytest.raises(ConfigError, match="n_shards"):
            shard_sizes(store, 0)

    def test_fanout_executor_matches_serial(self, store, service):
        with AliCoCoCluster(
            store, config=ClusterConfig(n_shards=3, fanout_workers=3)
        ) as cluster:
            for node in list(store.nodes(ECOMMERCE_PREFIX))[:5]:
                query = " ".join(node.tokens)
                assert cluster.search(query) == service.search(query)


# --------------------------------------------------------------- generations
def _grow_round(store, tag):
    """One deterministic writer round against a generational store."""
    from repro.kg import Relation, RelationKind

    concept = store.create_ecommerce(f"fresh {tag} cluster concept")
    item = store.create_item(f"fresh {tag} cluster item title")
    primitive = next(iter(store.nodes(PRIMITIVE_PREFIX)))
    store.add_relation(Relation(RelationKind.INTERPRETED_BY, concept.id,
                                primitive.id, name=primitive.domain))
    store.add_relation(Relation(RelationKind.ITEM_ECOMMERCE, item.id,
                                concept.id, weight=0.9))
    return concept, item


class TestClusterGenerations:
    """cluster.publish() advances in lockstep with a single service."""

    def _assert_parity(self, cluster, service, store, fresh_ids):
        for node in store.nodes(ECOMMERCE_PREFIX):
            assert cluster.items_for_concept(node.id) == (
                service.items_for_concept(node.id)
            )
            assert cluster.interpretation(node.id) == (
                service.interpretation(node.id)
            )
        queries = [
            " ".join(node.tokens)
            for node in list(store.nodes(ECOMMERCE_PREFIX))[:8]
        ] + [store.get(concept_id).text for concept_id in fresh_ids]
        for query in queries:
            assert cluster.search(query) == service.search(query)
            assert cluster.search(query, 3) == service.search(query, 3)
        for node in list(store.nodes(ITEM_PREFIX))[-10:]:
            assert cluster.concepts_for_item(node.id) == (
                service.concepts_for_item(node.id)
            )

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_publish_parity_with_single_service(self, built, n_shards):
        from repro.kg import GenerationalStore

        source = GenerationalStore(built.store)
        reference = GenerationalStore(built.store)
        cluster = _cluster(source, n_shards)
        service = AliCoCoService(reference, config=ServiceConfig(seed=0))
        fresh = []
        for round_index in range(2):
            concept, _ = _grow_round(source, f"g{round_index}")
            twin, _ = _grow_round(reference, f"g{round_index}")
            assert concept.id == twin.id  # ids allocate deterministically
            fresh.append(concept.id)
            assert cluster.publish() == service.publish() == round_index + 1
            assert cluster.generation_id == round_index + 1
            assert cluster.stats().generation_id == round_index + 1
            self._assert_parity(cluster, service, source, fresh)

    def test_publish_needs_a_generational_source(self, store):
        cluster = _cluster(store, 2)
        with pytest.raises(ConfigError, match="GenerationalStore"):
            cluster.publish()

    def test_noop_publish_keeps_the_generation_bundle(self, built):
        from repro.kg import GenerationalStore

        cluster = _cluster(GenerationalStore(built.store), 2)
        bundle = cluster._cgen
        assert cluster.publish() == 0
        assert cluster._cgen is bundle

    def test_new_concepts_are_served_without_restart(self, built):
        from repro.kg import GenerationalStore

        source = GenerationalStore(built.store)
        cluster = _cluster(source, 3)
        concept, item = _grow_round(source, "live")
        assert cluster.search(concept.text) == ()  # pinned at generation 0
        assert cluster.publish() == 1
        hits = cluster.search(concept.text)
        assert hits and hits[0][0] == concept.id
        assert cluster.items_for_concept(concept.id) == ((item.id, 0.9),)

    def test_snapshot_round_trip_resumes_the_generation(self, built, tmp_path):
        from repro.kg import GenerationalStore

        source = GenerationalStore(built.store)
        cluster = _cluster(source, 2)
        concept, _ = _grow_round(source, "snap")
        cluster.publish()
        expected = cluster.search(concept.text)
        path = tmp_path / "cluster.gen.jsonl"
        assert cluster.save_snapshot(path) > 0
        warm = AliCoCoCluster.from_snapshot(
            path, config=ClusterConfig(n_shards=2))
        assert warm.generation_id == 1
        assert warm.search(concept.text) == expected
        # The restored cluster keeps evolving from where it left off.
        grown, _ = _grow_round(warm.source, "snap-2")
        assert warm.publish() == 2
        assert warm.search(grown.text)[0][0] == grown.id

    def test_compaction_is_invisible_to_the_cluster(self, built):
        from repro.kg import GenerationalStore

        source = GenerationalStore(built.store)
        cluster = _cluster(source, 3)
        fresh = []
        for round_index in range(3):
            concept, _ = _grow_round(source, f"fold-{round_index}")
            fresh.append(concept.id)
            cluster.publish()
        queries = [source.get(concept_id).text for concept_id in fresh]
        before = [cluster.search(query) for query in queries] + [
            cluster.items_for_concept(concept_id) for concept_id in fresh
        ]
        assert source.compact() == 3
        assert cluster.generation_id == 3
        after = [cluster.search(query) for query in queries] + [
            cluster.items_for_concept(concept_id) for concept_id in fresh
        ]
        assert after == before
        # ...and the next round of growth still publishes cleanly.
        concept, _ = _grow_round(source, "post-fold")
        assert cluster.publish() == 4
        assert cluster.search(concept.text)[0][0] == concept.id
