"""Tests for the synthetic world: lexicon, compatibility, concept sampling."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.synth import build_lexicon, World
from repro.synth.lexicon import AMBIGUOUS_SURFACES
from repro.synth.world import (
    ConceptPart, ConceptSpec, EVENT_NEEDS, FUNCTION_PROVIDERS, HOLIDAY_GIFTS,
)
from repro.taxonomy.seed import CATEGORY_TREE


@pytest.fixture(scope="module")
def lexicon():
    return build_lexicon(seed=7)


@pytest.fixture(scope="module")
def world(lexicon):
    return World(lexicon, seed=7)


class TestLexicon:
    def test_all_twenty_domains_populated(self, lexicon):
        from repro.taxonomy import DOMAINS
        for domain in DOMAINS:
            assert lexicon.domain_entries(domain), f"{domain} is empty"

    def test_category_leaf_classes_exist_in_taxonomy(self, lexicon):
        leaves = {leaf for leaves in CATEGORY_TREE.values() for leaf in leaves}
        for entry in lexicon.domain_entries("Category"):
            assert entry.class_name in leaves

    def test_ambiguous_surfaces_have_two_senses(self, lexicon):
        for surface, senses in AMBIGUOUS_SURFACES:
            assert lexicon.is_ambiguous(surface)
            assert set(lexicon.domains_of(surface)) == \
                {domain for domain, _ in senses}

    def test_hypernym_pairs_are_category_internal(self, lexicon):
        from repro.synth.lexicon import COVER_TERMS
        cover_pairs = {(hypo, cover) for cover, hypos in COVER_TERMS.items()
                       for hypo in hypos}
        pairs = lexicon.hypernym_pairs("Category")
        assert len(pairs) > 50
        surfaces = set(lexicon.domain_surfaces("Category"))
        for hyponym, hypernym in pairs:
            assert hyponym in surfaces
            assert hypernym in surfaces
            # Either suffix-shaped ("trench coat" isA "coat") or a declared
            # cover-term pair ("coat" isA "top").
            assert hyponym.endswith(hypernym) or \
                (hyponym, hypernym) in cover_pairs

    def test_deterministic(self):
        a = build_lexicon(seed=11)
        b = build_lexicon(seed=11)
        assert [e.surface for e in a.entries] == [e.surface for e in b.entries]

    def test_brand_ip_generated(self, lexicon):
        assert len(lexicon.domain_surfaces("Brand")) >= 50
        assert len(lexicon.domain_surfaces("IP")) >= 30

    def test_world_tables_reference_real_categories(self, lexicon):
        surfaces = set(lexicon.domain_surfaces("Category"))
        for needs in EVENT_NEEDS.values():
            for need in needs:
                assert need in surfaces, f"{need} not a Category surface"
        for providers in FUNCTION_PROVIDERS.values():
            for provider in providers:
                assert provider in surfaces
        for gifts in HOLIDAY_GIFTS.values():
            for gift in gifts:
                assert gift in surfaces


class TestCompatibility:
    def test_good_combo(self, world):
        ok, _ = world.compatible((ConceptPart("outdoor", "Location"),
                                  ConceptPart("barbecue", "Event")))
        assert ok

    def test_paper_bad_examples(self, world):
        # "warm shoes for swimming"
        ok, reason = world.compatible((
            ConceptPart("warm", "Function"),
            ConceptPart("sneakers", "Category"),
            ConceptPart("swimming", "Event")))
        assert not ok and "function-event" in reason
        # "sexy baby dress"
        ok, reason = world.compatible((
            ConceptPart("sexy", "Style"), ConceptPart("baby", "Audience")))
        assert not ok and "style-audience" in reason
        # "european korean curtain" (two styles)
        ok, reason = world.compatible((
            ConceptPart("british-style", "Style"),
            ConceptPart("korean-style", "Style")))
        assert not ok and reason == "two styles"
        # "bathing in the classroom"
        ok, reason = world.compatible((
            ConceptPart("bathing", "Event"),
            ConceptPart("classroom", "Location")))
        assert not ok and "location-event" in reason
        # "casual summer coat"
        ok, reason = world.compatible((
            ConceptPart("casual", "Style"), ConceptPart("summer", "Time"),
            ConceptPart("coat", "Category")))
        assert not ok and "category-season" in reason

    def test_function_category_applicability(self, world):
        ok, reason = world.compatible((
            ConceptPart("noise-cancelling", "Function"),
            ConceptPart("butter", "Category")))
        assert not ok and "function-category" in reason

    def test_category_helpers(self, world):
        assert world.category_head("trench coat") == "coat"
        assert world.category_class("trench coat") == "Clothing"
        with pytest.raises(DataError):
            world.category_head("spaceship")

    def test_events_needing_respects_heads(self, world):
        assert "skiing" in world.events_needing("trench coat")
        assert "barbecue" in world.events_needing("charcoal grill")


class TestConceptSampling:
    def test_good_concepts_are_good(self, world):
        rng = np.random.default_rng(0)
        specs = world.sample_good_concepts(rng, 60)
        assert len(specs) == 60
        assert len({s.text for s in specs}) == 60
        for spec in specs:
            assert spec.good
            assert spec.parts
            ok, _ = world.compatible(spec.parts)
            assert ok

    def test_bad_concepts_have_defects(self, world):
        rng = np.random.default_rng(1)
        specs = world.sample_bad_concepts(rng, 60)
        assert len(specs) == 60
        defects = {s.defect for s in specs}
        assert defects >= {"implausible", "incoherent", "nonsense"}
        for spec in specs:
            assert not spec.good
            assert spec.defect

    def test_iob_labels_align(self, world):
        rng = np.random.default_rng(2)
        for spec in world.sample_good_concepts(rng, 40):
            labels = spec.iob_labels()
            assert len(labels) == len(spec.tokens)
            begins = [label for label in labels if label.startswith("B-")]
            assert len(begins) == len(spec.parts)

    def test_iob_labels_multiword_parts(self, world):
        spec = ConceptSpec(
            "warm trench coat for traveling",
            (ConceptPart("warm", "Function"),
             ConceptPart("trench coat", "Category"),
             ConceptPart("traveling", "Event")),
            "function-category-event", good=True)
        assert spec.iob_labels() == \
            ["B-Function", "B-Category", "I-Category", "O", "B-Event"]

    def test_iob_misaligned_parts_raise(self):
        spec = ConceptSpec("outdoor barbecue",
                           (ConceptPart("indoor", "Location"),),
                           "location-event", good=True)
        with pytest.raises(DataError):
            spec.iob_labels()

    def test_sampling_deterministic(self, world):
        first = world.sample_good_concepts(np.random.default_rng(5), 20)
        second = world.sample_good_concepts(np.random.default_rng(5), 20)
        assert [s.text for s in first] == [s.text for s in second]

    def test_mixed_sampling_shuffles(self, world):
        rng = np.random.default_rng(3)
        mixed = world.sample_concepts(rng, 20, 20)
        assert len(mixed) == 40
        flags = [s.good for s in mixed]
        assert not all(flags[:20])  # shuffled, not grouped
