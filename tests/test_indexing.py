"""Tests for the candidate-indexing layer: indexed build parity,
inverted-index completeness, BM25 retrieval, and stage timing."""

import math
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.config import TINY
from repro.errors import DataError, NotFittedError
from repro.matching.bm25 import BM25Index
from repro.matching.retrieval import BM25CandidateGenerator
from repro.pipeline.build import build_alicoco
from repro.synth.index import ConceptCandidateIndex, PartSignatureIndex
from repro.synth.items import item_matches_concept
from repro.utils.timing import StageTimer


def _store_snapshot(result):
    nodes = sorted((n.id, type(n).__name__) for n in result.store.nodes())
    relations = list(result.store.relations())
    return nodes, relations


@pytest.mark.parametrize("n_items", [60, 180])
def test_indexed_build_parity(n_items):
    """The indexed build must produce a store *identical* to brute force —
    same nodes, same relation sequence, same RNG-drawn weights."""
    scale = replace(TINY, n_items=n_items)
    indexed = build_alicoco(scale, use_candidate_index=True)
    brute = build_alicoco(scale, use_candidate_index=False)
    indexed_nodes, indexed_relations = _store_snapshot(indexed)
    brute_nodes, brute_relations = _store_snapshot(brute)
    assert indexed_nodes == brute_nodes
    # Relation is a frozen dataclass: equality covers kind, endpoints,
    # weight and name.  Comparing the *sequences* also pins insertion
    # order, i.e. the indexed path consumed the weight RNG identically.
    assert indexed_relations == brute_relations
    assert indexed.store.stats() == brute.store.stats()


def test_candidate_index_is_complete(rng):
    """Every concept that matches an item must be in its candidate set
    (retrieval may over-propose, never under-propose)."""
    from repro.synth.lexicon import build_lexicon
    from repro.synth.world import World
    from repro.synth.items import generate_items

    lexicon = build_lexicon(seed=11)
    world = World(lexicon, seed=11)
    concepts = world.sample_good_concepts(rng, 80)
    items = generate_items(world, 150)
    index = ConceptCandidateIndex(concepts)
    for item in items:
        candidates = index.candidates(item)
        candidate_texts = [spec.text for spec in candidates]
        matching = [spec.text for spec in concepts
                    if item_matches_concept(world, item, spec)]
        assert set(matching) <= set(candidate_texts)
        # Candidate order preserves original concept order (RNG parity).
        positions = [next(i for i, c in enumerate(concepts) if c.text == t)
                     for t in candidate_texts]
        assert positions == sorted(positions)


def test_candidate_index_prunes(rng):
    """The index must actually narrow the pool, not degenerate to a scan."""
    from repro.synth.lexicon import build_lexicon
    from repro.synth.world import World
    from repro.synth.items import generate_items

    lexicon = build_lexicon(seed=3)
    world = World(lexicon, seed=3)
    concepts = world.sample_good_concepts(rng, 60)
    items = generate_items(world, 100)
    index = ConceptCandidateIndex(concepts)
    average = sum(len(index.candidates(item)) for item in items) / len(items)
    assert average < len(concepts) / 2


def test_part_signature_index_matches_double_loop(rng):
    """Subset lookups must find exactly the strict-superset pairs the
    brute-force double loop finds."""
    from repro.synth.lexicon import build_lexicon
    from repro.synth.world import World

    lexicon = build_lexicon(seed=5)
    world = World(lexicon, seed=5)
    concepts = world.sample_good_concepts(rng, 70)
    index = PartSignatureIndex(concepts)
    signatures = {spec.text: frozenset((p.surface, p.domain)
                                       for p in spec.parts)
                  for spec in concepts}
    texts = list(signatures)
    expected = {(narrow, broad)
                for narrow in texts for broad in texts
                if narrow != broad and signatures[broad]
                and signatures[broad] < signatures[narrow]}
    found = {(spec.text, broad)
             for spec in concepts
             for broad in index.broader_than(spec.text)}
    assert found == expected


class TestBM25Index:
    @staticmethod
    def _reference_scores(documents, query):
        """Naive exhaustive BM25 with the same formula (k1=1.5, b=0.75)."""
        k1, b = 1.5, 0.75
        n_docs = len(documents)
        df = {}
        for tokens in documents.values():
            for term in set(tokens):
                df[term] = df.get(term, 0) + 1
        average = sum(len(t) for t in documents.values()) / n_docs
        idf = {term: math.log(1.0 + (n_docs - f + 0.5) / (f + 0.5))
               for term, f in df.items()}
        scores = {}
        for doc_id, tokens in documents.items():
            norm = k1 * (1.0 - b + b * len(tokens) / max(average, 1e-9))
            score = 0.0
            for term in query:
                tf = tokens.count(term)
                if tf:
                    score += idf[term] * tf * (k1 + 1.0) / (tf + norm)
            scores[doc_id] = score
        return scores

    @pytest.fixture
    def documents(self, rng):
        vocabulary = [f"w{i}" for i in range(30)]
        return {f"d{i}": [vocabulary[int(j)]
                          for j in rng.integers(0, 30, size=int(length))]
                for i, length in enumerate(rng.integers(3, 12, size=40))}

    def test_top_k_agrees_with_exhaustive_ranking(self, documents, rng):
        index = BM25Index().fit(documents)
        for _ in range(25):
            query = [f"w{int(i)}" for i in rng.integers(0, 35, size=3)]
            reference = self._reference_scores(documents, query)
            positive = sorted(
                ((doc_id, s) for doc_id, s in reference.items() if s > 0),
                key=lambda kv: (-kv[1], list(documents).index(kv[0])))
            for k in (1, 5, len(documents)):
                got = index.top_k(query, k)
                want = positive[:k]
                assert [d for d, _ in got] == [d for d, _ in want]
                np.testing.assert_allclose([s for _, s in got],
                                           [s for _, s in want])

    def test_scores_skips_zero_docs(self, documents):
        index = BM25Index().fit(documents)
        scores = index.scores(["w0"])
        assert all(score > 0 for score in scores.values())
        assert set(scores) == {doc_id for doc_id, tokens in documents.items()
                               if "w0" in tokens}

    def test_score_single_document(self, documents):
        index = BM25Index().fit(documents)
        reference = self._reference_scores(documents, ["w1", "w2"])
        for doc_id in documents:
            assert index.score(["w1", "w2"], doc_id) == \
                pytest.approx(reference[doc_id])

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            BM25Index().top_k(["a"])
        with pytest.raises(NotFittedError):
            BM25Index().scores(["a"])

    def test_empty_corpus_raises(self):
        with pytest.raises(DataError):
            BM25Index().fit({})

    def test_len(self, documents):
        assert len(BM25Index().fit(documents)) == len(documents)


class TestBM25MatcherCache:
    def test_score_unchanged_by_caching(self, rng):
        """The cached matcher must score exactly like a fresh Counter."""
        from repro.matching.bm25 import BM25Matcher
        from repro.matching.dataset import MatchingExample
        from repro.synth.lexicon import build_lexicon
        from repro.synth.world import World
        from repro.synth.items import generate_items

        lexicon = build_lexicon(seed=2)
        world = World(lexicon, seed=2)
        concepts = world.sample_good_concepts(rng, 10)
        items = generate_items(world, 30)
        examples = [MatchingExample(concepts[i % len(concepts)], item, 1)
                    for i, item in enumerate(items)]
        matcher = BM25Matcher().fit(examples)
        assert matcher._doc_cache  # counts precomputed at fit time
        first = matcher.score_pairs(examples)
        second = matcher.score_pairs(examples)  # served from cache
        np.testing.assert_array_equal(first, second)
        # Unseen title: cache miss path must agree with the cached path.
        unseen = matcher.score(("dress",), ("red", "dress", "dress"))
        again = matcher.score(("dress",), ("red", "dress", "dress"))
        assert unseen == again > 0


def test_candidate_generator_recall(rng):
    """Retrieval sanity: an item's own title retrieves it near the top,
    and candidate recall is well-defined and monotone in k.  (No absolute
    recall floor — drift concepts like "barbecue essentials" legitimately
    share zero tokens with the items they need; that gap is the point of
    the paper's deep matcher.)"""
    from repro.matching.dataset import build_matching_dataset
    from repro.matching.retrieval import retrieval_recall
    from repro.synth.clicklog import simulate_clicks
    from repro.synth.lexicon import build_lexicon
    from repro.synth.world import World
    from repro.synth.items import generate_items

    lexicon = build_lexicon(seed=9)
    world = World(lexicon, seed=9)
    concepts = world.sample_good_concepts(rng, 40)
    items = generate_items(world, 120)
    clicks = simulate_clicks(world, concepts, items, impressions_per_concept=10)
    dataset = build_matching_dataset(world, concepts, items, clicks, rng,
                                     test_concepts=12)
    generator = BM25CandidateGenerator().fit(items)
    candidates = generator.candidates(("summer",), k=5)
    assert len(candidates) <= 5
    assert all(score > 0 for _, score in candidates)
    for item in items[:20]:
        retrieved = [hit.index for hit, _ in
                     generator.candidates(item.title_tokens, k=5)]
        assert item.index in retrieved, "own title must retrieve the item"
    full = retrieval_recall(generator, dataset, k=len(items))
    loose = retrieval_recall(generator, dataset, k=30)
    assert 0.0 <= loose <= full <= 1.0


class TestStageTimer:
    def test_accumulates_and_counts(self):
        timer = StageTimer()
        for _ in range(3):
            with timer.stage("work"):
                time.sleep(0.001)
        assert timer.calls("work") == 3
        assert timer.seconds("work") >= 0.003
        assert timer.seconds("missing") == 0.0
        assert timer.calls("missing") == 0

    def test_nesting_and_total(self):
        timer = StageTimer()
        with timer.stage("outer"):
            with timer.stage("inner"):
                time.sleep(0.001)
        assert timer.seconds("outer") >= timer.seconds("inner")
        assert set(timer.stages) == {"outer", "inner"}
        assert timer.total() == pytest.approx(
            timer.seconds("outer") + timer.seconds("inner"))

    def test_records_on_exception(self):
        timer = StageTimer()
        with pytest.raises(ValueError):
            with timer.stage("boom"):
                raise ValueError("x")
        assert timer.calls("boom") == 1

    def test_merge(self):
        first, second = StageTimer(), StageTimer()
        with first.stage("a"):
            pass
        with second.stage("a"):
            pass
        with second.stage("b"):
            pass
        first.merge(second)
        assert first.calls("a") == 2
        assert first.calls("b") == 1

    def test_format_table(self):
        timer = StageTimer()
        with timer.stage("stage-x"):
            pass
        table = timer.format_table("build stages")
        assert "build stages" in table and "stage-x" in table


def test_build_records_stage_timings():
    result = build_alicoco(replace(TINY, n_items=40), n_concepts=40)
    for stage in ("world", "corpus", "taxonomy", "primitive-layer",
                  "concept-layer", "concept-isa", "item-nodes",
                  "item-matching"):
        assert result.timings.calls(stage) >= 1, stage
