"""Tests for tokenizer, vocab, POS tagger and language models."""

import math

import pytest

from repro.errors import DataError, NotFittedError, VocabError
from repro.nlp import (
    BidirectionalLanguageModel, BigramLanguageModel, PosTagger, Vocab,
    WordTokenizer, char_tokens,
)


class TestTokenizer:
    def test_basic_split(self):
        assert WordTokenizer()("Outdoor  Barbecue!") == ["outdoor", "barbecue"]

    def test_keeps_hyphens(self):
        assert WordTokenizer()("cotton-padded trousers") == \
            ["cotton-padded", "trousers"]

    def test_empty_text(self):
        assert WordTokenizer()("  ,,, ") == []

    def test_char_tokens(self):
        assert char_tokens("nike") == ["n", "i", "k", "e"]


class TestVocab:
    def test_specials_first(self):
        vocab = Vocab(["apple", "pear"])
        assert vocab.token(0) == "<pad>"
        assert vocab.token(1) == "<unk>"
        assert vocab.id("apple") == 2

    def test_unknown_maps_to_unk(self):
        vocab = Vocab(["apple"])
        assert vocab.id("durian") == vocab.unk_id

    def test_strict_raises(self):
        vocab = Vocab(["apple"], strict=True)
        with pytest.raises(VocabError):
            vocab.id("durian")

    def test_from_corpus_min_freq(self):
        vocab = Vocab.from_corpus([["a", "a", "b"], ["a", "c"]], min_freq=2)
        assert "a" in vocab
        assert "b" not in vocab

    def test_from_corpus_frequency_order(self):
        vocab = Vocab.from_corpus([["rare"], ["common"] * 5])
        assert vocab.id("common") < vocab.id("rare")

    def test_max_size(self):
        vocab = Vocab.from_corpus([["a", "b", "c"] * 2], max_size=1)
        assert len(vocab) == 3  # pad, unk, one token

    def test_token_out_of_range(self):
        vocab = Vocab(["a"])
        with pytest.raises(VocabError):
            vocab.token(99)

    def test_ids_roundtrip(self):
        vocab = Vocab(["x", "y"])
        assert [vocab.token(i) for i in vocab.ids(["x", "y"])] == ["x", "y"]


class TestPosTagger:
    def test_closed_class(self):
        tagger = PosTagger()
        assert tagger.tag(["gifts", "for", "grandpa"])[1] == "PREP"

    def test_suffix_rules(self):
        tagger = PosTagger()
        assert tagger.tag_word("waterproof") == "ADJ"
        assert tagger.tag_word("traveling") == "VERB"
        assert tagger.tag_word("decoration") == "NOUN"

    def test_numbers(self):
        assert PosTagger().tag_word("800") == "NUM"

    def test_custom_lexicon_wins(self):
        tagger = PosTagger(lexicon={"traveling": "NOUN"})
        assert tagger.tag_word("traveling") == "NOUN"

    def test_bad_lexicon_tag(self):
        with pytest.raises(ValueError):
            PosTagger(lexicon={"x": "BANANA"})

    def test_tag_ids_stable(self):
        assert PosTagger.tag_id("NOUN") == 0
        assert PosTagger.tag_id("whatever") == PosTagger.tag_id("OTHER")
        assert PosTagger.num_tags() >= 5


class TestLanguageModels:
    CORPUS = [
        ["warm", "hat", "for", "traveling"],
        ["warm", "coat", "for", "winter"],
        ["christmas", "gifts", "for", "grandpa"],
        ["warm", "hat", "for", "winter"],
    ]

    def test_fit_empty_raises(self):
        with pytest.raises(DataError):
            BigramLanguageModel().fit([])

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            BigramLanguageModel().log_probability("a", "b")

    def test_probabilities_normalised(self):
        model = BigramLanguageModel(k=0.5).fit(self.CORPUS)
        # Sum of P(w | "warm") over the full event space is <= 1 by smoothing
        # construction; check a seen continuation beats an unseen one.
        seen = model.log_probability("warm", "hat")
        unseen = model.log_probability("warm", "grandpa")
        assert seen > unseen

    def test_fluent_beats_shuffled(self):
        model = BigramLanguageModel().fit(self.CORPUS)
        fluent = model.perplexity(["warm", "hat", "for", "winter"])
        shuffled = model.perplexity(["for", "winter", "hat", "warm"])
        assert fluent < shuffled

    def test_empty_perplexity_raises(self):
        model = BigramLanguageModel().fit(self.CORPUS)
        with pytest.raises(DataError):
            model.perplexity([])

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            BigramLanguageModel(k=0.0)

    def test_bidirectional_catches_incoherent_order(self):
        model = BidirectionalLanguageModel().fit(self.CORPUS)
        coherent = model.perplexity(["christmas", "gifts", "for", "grandpa"])
        incoherent = model.perplexity(["gifts", "grandpa", "for", "christmas"])
        assert coherent < incoherent

    def test_bidirectional_is_geometric_mean(self):
        model = BidirectionalLanguageModel().fit(self.CORPUS)
        tokens = ["warm", "hat"]
        forward = model.forward.perplexity(tokens)
        backward = model.backward.perplexity(list(reversed(tokens)))
        assert model.perplexity(tokens) == pytest.approx(
            math.sqrt(forward * backward))
