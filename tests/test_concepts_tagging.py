"""Tests for the text-augmented fuzzy-CRF concept tagger."""

import numpy as np
import pytest

from repro.concepts import ConceptTagger, span_f1
from repro.concepts.tagging import _spans, build_text_matrix
from repro.errors import DataError, NotFittedError
from repro.nlp.pos import PosTagger
from repro.nlp.vocab import Vocab
from repro.synth import build_lexicon, World


@pytest.fixture(scope="module")
def setup():
    lexicon = build_lexicon(seed=7)
    world = World(lexicon, seed=7)
    rng = np.random.default_rng(5)
    specs = world.sample_good_concepts(rng, 140)
    train, test = specs[:110], specs[110:]
    sentences = [list(s.tokens) for s in specs]
    vocab = Vocab.from_corpus(sentences)
    tagger = PosTagger(lexicon.pos_lexicon())
    return {"lexicon": lexicon, "world": world, "train": train, "test": test,
            "vocab": vocab, "pos": tagger, "sentences": sentences}


def make_tagger(setup, use_fuzzy=True, use_knowledge=False, seed=1):
    text_matrix = None
    if use_knowledge:
        words = {w for s in setup["sentences"] for w in s}
        text_matrix = build_text_matrix(setup["sentences"], words, dim=8,
                                        seed=0)
    return ConceptTagger(setup["vocab"], setup["lexicon"], setup["pos"],
                         text_matrix=text_matrix, text_dim=8,
                         use_fuzzy=use_fuzzy, word_dim=12, char_dim=6,
                         hidden_dim=8, seed=seed)


class TestSpans:
    def test_spans_parse_iob(self):
        labels = ["B-Function", "B-Category", "I-Category", "O", "B-Event"]
        assert _spans(labels) == [(0, 1, "Function"), (1, 3, "Category"),
                                  (4, 5, "Event")]

    def test_orphan_inside_treated_as_outside(self):
        assert _spans(["I-Category", "O"]) == []

    def test_span_f1_perfect_and_zero(self):
        gold = ["B-Category", "O"]
        assert span_f1(gold, gold) == 1.0
        assert span_f1(gold, ["O", "O"]) == 0.0


class TestTextMatrix:
    def test_builds_vectors_for_seen_words(self, setup):
        tm = build_text_matrix(setup["sentences"], {"barbecue", "outdoor"},
                               dim=8)
        assert set(tm) <= {"barbecue", "outdoor"}
        for vector in tm.values():
            assert vector.shape == (8,)

    def test_unseen_words_absent(self, setup):
        tm = build_text_matrix(setup["sentences"], {"zzz-not-in-corpus"},
                               dim=8)
        assert tm == {}


class TestConceptTagger:
    def test_learns_and_tags(self, setup):
        model = make_tagger(setup)
        history = model.fit(setup["train"], epochs=3, lr=0.02, seed=1)
        assert history[-1] < history[0]
        metrics = model.evaluate(setup["test"])
        assert metrics["f1"] > 0.5

    def test_unfitted_raises(self, setup):
        model = make_tagger(setup)
        with pytest.raises(NotFittedError):
            model.predict(["outdoor", "barbecue"])

    def test_fit_without_parts_raises(self, setup):
        model = make_tagger(setup)
        from repro.synth.world import ConceptSpec
        bad = ConceptSpec("hens lay eggs", (), "nonsense", good=False,
                          defect="nonsense")
        with pytest.raises(DataError):
            model.fit([bad])

    def test_empty_tokens_raise(self, setup):
        model = make_tagger(setup)
        with pytest.raises(DataError):
            model.emissions([])

    def test_allowed_labels_for_ambiguous_word(self, setup):
        model = make_tagger(setup)
        allowed = model.allowed_labels(["village", "skirt"],
                                       ["B-Style", "B-Category"])
        village_labels = {model.labels.label(i) for i in allowed[0]}
        assert village_labels == {"B-Style", "B-Location"}
        skirt_labels = {model.labels.label(i) for i in allowed[1]}
        assert skirt_labels == {"B-Category"}

    def test_fuzzy_loss_leq_strict(self, setup):
        fuzzy = make_tagger(setup, use_fuzzy=True, seed=3)
        strict = make_tagger(setup, use_fuzzy=False, seed=3)
        strict.load_state_dict(fuzzy.state_dict())
        spec = next(s for s in setup["train"]
                    if any(setup["lexicon"].is_ambiguous(t)
                           for t in s.tokens))
        assert fuzzy.loss(spec).item() <= strict.loss(spec).item() + 1e-9

    def test_knowledge_variant_has_wider_encoder(self, setup):
        plain = make_tagger(setup, use_knowledge=False)
        knowing = make_tagger(setup, use_knowledge=True)
        assert knowing.num_parameters() > plain.num_parameters()
