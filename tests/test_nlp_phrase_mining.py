"""Tests for the AutoPhrase-substitute quality phrase miner."""

import pytest

from repro.errors import DataError
from repro.nlp import PhraseMiner


def build_corpus():
    """'outdoor barbecue' is a strong collocation; 'red banana' is noise."""
    corpus = []
    for _ in range(30):
        corpus.append(["plan", "an", "outdoor", "barbecue", "party"])
        corpus.append(["outdoor", "barbecue", "needs", "charcoal"])
    for _ in range(30):
        corpus.append(["outdoor", "furniture", "sale"])
        corpus.append(["barbecue", "sauce", "recipe"])
    corpus.append(["red", "banana", "outdoor"])
    corpus.append(["red", "banana", "barbecue"])
    corpus.append(["red", "banana", "sale"])
    return corpus


class TestPhraseMiner:
    def test_empty_corpus_raises(self):
        with pytest.raises(DataError):
            PhraseMiner().mine([])

    def test_max_length_validation(self):
        with pytest.raises(DataError):
            PhraseMiner(max_length=1)

    def test_strong_collocation_ranks_first(self):
        phrases = PhraseMiner(min_frequency=3).mine(build_corpus())
        texts = [p.text for p in phrases]
        assert "outdoor barbecue" in texts
        # The collocation should outrank the coincidental 'red banana'.
        assert texts.index("outdoor barbecue") < texts.index("red banana")

    def test_min_frequency_filters(self):
        phrases = PhraseMiner(min_frequency=10).mine(build_corpus())
        assert all(p.frequency >= 10 for p in phrases)
        assert all(p.text != "red banana" for p in phrases)

    def test_stopword_edges_excluded(self):
        corpus = [["gifts", "for", "grandpa"]] * 10
        phrases = PhraseMiner(min_frequency=2).mine(corpus)
        texts = [p.text for p in phrases]
        assert "gifts for" not in texts
        assert "for grandpa" not in texts
        assert "gifts for grandpa" in texts

    def test_top_k_limits(self):
        phrases = PhraseMiner(min_frequency=2).mine(build_corpus(), top_k=2)
        assert len(phrases) == 2

    def test_scores_nonnegative_and_sorted(self):
        phrases = PhraseMiner(min_frequency=2).mine(build_corpus())
        scores = [p.score for p in phrases]
        assert all(s >= 0 for s in scores)
        assert scores == sorted(scores, reverse=True)
