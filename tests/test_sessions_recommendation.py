"""Tests for the session simulator and the recommendation experiment."""

import numpy as np
import pytest

from repro import build_alicoco, TINY
from repro.errors import DataError
from repro.synth.sessions import cf_training_sessions, simulate_sessions


@pytest.fixture(scope="module")
def built():
    return build_alicoco(TINY)


class TestSessionSimulator:
    def test_sessions_have_structure(self, built):
        rng = np.random.default_rng(0)
        sessions = simulate_sessions(built.store, built.concept_ids, rng,
                                     n_users=20)
        assert len(sessions) == 20
        for session in sessions:
            assert session.need_text in built.concept_ids
            assert len(session.history) == 2
            assert session.future
            for item_id in session.history + session.future:
                assert item_id in built.store

    def test_future_items_belong_to_need(self, built):
        from repro.kg.query import items_for_concept
        rng = np.random.default_rng(1)
        sessions = simulate_sessions(built.store, built.concept_ids, rng,
                                     n_users=10, noise_probability=0.0)
        for session in sessions:
            concept_id = built.concept_ids[session.need_text]
            concept_items = {item.id for item
                             in items_for_concept(built.store, concept_id)}
            assert set(session.future) <= concept_items
            assert set(session.history) <= concept_items  # no noise

    def test_allowed_needs_filter(self, built):
        rng = np.random.default_rng(2)
        all_sessions = simulate_sessions(built.store, built.concept_ids,
                                         rng, n_users=10)
        needs = {all_sessions[0].need_text}
        restricted = simulate_sessions(built.store, built.concept_ids,
                                       np.random.default_rng(3),
                                       n_users=10, allowed_needs=needs)
        assert {s.need_text for s in restricted} == needs

    def test_impossible_filter_raises(self, built):
        with pytest.raises(DataError):
            simulate_sessions(built.store, built.concept_ids,
                              np.random.default_rng(0), n_users=5,
                              allowed_needs={"no such concept"})

    def test_cf_training_sessions_concatenate(self, built):
        rng = np.random.default_rng(4)
        sessions = simulate_sessions(built.store, built.concept_ids, rng,
                                     n_users=5)
        logs = cf_training_sessions(sessions)
        assert len(logs) == 5
        for session, log in zip(sessions, logs):
            assert log == session.history + session.future


class TestRecommendationExperiment:
    def test_shapes_reproduce(self):
        from repro.experiments import recommendation
        result = recommendation.run(TINY, n_train_users=40, n_test_users=25)
        assert result.users == 25
        # The paper's critique: CF cannot serve needs absent from logs.
        assert result.cognitive_novel_need_hit > result.cf_novel_need_hit
        assert result.cognitive.explained > result.item_cf.explained
        report = recommendation.format_report(result)
        assert "novel-need" in report
