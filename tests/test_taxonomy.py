"""Tests for the taxonomy seed and builder (Section 3)."""

import pytest

from repro.errors import TaxonomyError
from repro.kg import AliCoCoStore, RelationKind
from repro.kg.query import class_path
from repro.taxonomy import DOMAINS, build_taxonomy
from repro.taxonomy.schema import ECOMMERCE_DOMAINS


@pytest.fixture(scope="module")
def built():
    store = AliCoCoStore()
    index = build_taxonomy(store)
    return store, index


class TestTaxonomy:
    def test_twenty_domains(self):
        assert len(DOMAINS) == 20
        assert len(set(DOMAINS)) == 20

    def test_paper_named_domains_present(self):
        for name in ("Category", "Brand", "Color", "Function", "IP", "Time",
                     "Location", "Audience", "Event"):
            assert name in DOMAINS

    def test_ecommerce_domains_subset(self):
        assert ECOMMERCE_DOMAINS < set(DOMAINS)
        assert "Category" in ECOMMERCE_DOMAINS
        assert "Time" not in ECOMMERCE_DOMAINS

    def test_domains_are_roots(self, built):
        store, index = built
        for domain in DOMAINS:
            node = store.get(index.id_of(domain))
            assert node.parent_id is None

    def test_category_path_matches_paper_example(self, built):
        store, index = built
        path = class_path(store, index.id_of("Clothing"))
        assert [c.name for c in path] == \
            ["Category", "ClothingAndAccessory", "Clothing"]

    def test_category_is_largest_domain(self, built):
        store, _ = built
        by_domain = {}
        for node in store.nodes("cls"):
            by_domain[node.domain] = by_domain.get(node.domain, 0) + 1
        assert by_domain["Category"] == max(by_domain.values())

    def test_subclass_relations_exist(self, built):
        store, index = built
        children = store.in_relations(index.id_of("Time"),
                                      RelationKind.SUBCLASS_OF)
        names = {store.get(r.source).name for r in children}
        assert names == {"Season", "Holiday", "TimeOfDay"}

    def test_schema_relations_built(self, built):
        store, index = built
        schema = list(store.relations(RelationKind.SCHEMA))
        assert any(r.name == "suitable_when" for r in schema)
        suitable = [r for r in schema if r.name == "suitable_when"]
        sources = {store.get(r.source).name for r in suitable}
        assert "Clothing" in sources

    def test_unknown_class_lookup(self, built):
        _, index = built
        with pytest.raises(TaxonomyError):
            index.id_of("Spaceships")

    def test_leaf_class_default_per_domain(self, built):
        _, index = built
        assert set(index.leaf_class_of_domain) == set(DOMAINS)
