"""Tests for losses, optimizers and serialization: models actually learn."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.ml import Adam, Adagrad, Linear, MLP, SGD, Tensor
from repro.ml.gradcheck import check_gradients
from repro.ml.losses import bce_with_logits, binary_nll, cross_entropy
from repro.ml.serialize import load_module, save_module
from repro.ml.tensor import Tensor as T


def leaf(rng, shape):
    return T(rng.normal(size=shape), requires_grad=True)


class TestLosses:
    def test_bce_matches_manual(self):
        logits = T(np.array([0.0, 2.0]), requires_grad=True)
        targets = np.array([1.0, 0.0])
        loss = bce_with_logits(logits, targets)
        expected = np.mean([
            -np.log(0.5),
            -np.log(1 - 1 / (1 + np.exp(-2.0))),
        ])
        assert loss.item() == pytest.approx(expected)

    def test_bce_shape_mismatch(self):
        with pytest.raises(ShapeError):
            bce_with_logits(T(np.zeros(3), requires_grad=True), np.zeros(4))

    def test_bce_gradcheck(self, rng):
        logits = leaf(rng, (5,))
        targets = (rng.random(5) > 0.5).astype(float)
        assert check_gradients(lambda: bce_with_logits(logits, targets), [logits])

    def test_bce_extreme_logits_finite(self):
        logits = T(np.array([500.0, -500.0]), requires_grad=True)
        loss = bce_with_logits(logits, np.array([0.0, 1.0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.all(np.isfinite(logits.grad))

    def test_binary_nll_gradcheck(self, rng):
        x = leaf(rng, (6,))
        targets = (rng.random(6) > 0.5).astype(float)
        assert check_gradients(
            lambda: binary_nll(x.sigmoid(), targets), [x])

    def test_cross_entropy_uniform_logits(self):
        logits = T(np.zeros((2, 4)), requires_grad=True)
        loss = cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4.0))

    def test_cross_entropy_gradcheck(self, rng):
        logits = leaf(rng, (4, 3))
        ids = np.array([0, 2, 1, 1])
        assert check_gradients(lambda: cross_entropy(logits, ids), [logits])


class TestOptimizers:
    @pytest.mark.parametrize("make_optimizer", [
        lambda params: SGD(params, lr=0.5),
        lambda params: SGD(params, lr=0.3, momentum=0.9),
        lambda params: Adagrad(params, lr=0.5),
        lambda params: Adam(params, lr=0.1),
    ])
    def test_minimizes_quadratic(self, make_optimizer):
        x = T(np.array([5.0, -3.0]), requires_grad=True)
        x.requires_grad = True
        param = x
        # Wrap as Parameter-like: optimizers only need .data/.grad.
        optimizer = make_optimizer([param])
        for _ in range(400):
            optimizer.zero_grad()
            loss = (param * param).sum()
            loss.backward()
            optimizer.step()
        assert np.abs(param.data).max() < 5e-2

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_clip_grad_norm(self, rng):
        param = T(np.zeros(4), requires_grad=True)
        param.grad = np.full(4, 10.0)
        optimizer = SGD([param], lr=0.1)
        norm = optimizer.clip_grad_norm(1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_logistic_regression_learns_xor_features(self, rng):
        """End-to-end sanity: an MLP fits XOR with Adam."""
        mlp = MLP([2, 8, 1], rng, activation="tanh")
        optimizer = Adam(mlp.parameters(), lr=0.05)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0.0, 1.0, 1.0, 0.0])
        for _ in range(300):
            optimizer.zero_grad()
            logits = mlp(Tensor(x)).reshape(4)
            loss = bce_with_logits(logits, y)
            loss.backward()
            optimizer.step()
        predictions = (mlp(Tensor(x)).data.reshape(4) > 0).astype(float)
        np.testing.assert_allclose(predictions, y)


class TestSerialization:
    def test_save_load_roundtrip(self, rng, tmp_path):
        model = Linear(3, 2, rng)
        path = tmp_path / "model.npz"
        save_module(model, path)
        other = Linear(3, 2, np.random.default_rng(5))
        load_module(other, path)
        np.testing.assert_allclose(other.weight.data, model.weight.data)
        np.testing.assert_allclose(other.bias.data, model.bias.data)

    def test_load_missing_key_raises(self, rng, tmp_path):
        model = Linear(3, 2, rng)
        path = tmp_path / "model.npz"
        np.savez(path, nothing=np.zeros(1))
        with pytest.raises(KeyError):
            load_module(model, path)
