"""Tests for losses, optimizers and serialization: models actually learn."""

import numpy as np
import pytest

from repro.errors import DataError, ShapeError
from repro.ml import Adam, Adagrad, Linear, MLP, SGD, Tensor
from repro.ml.gradcheck import check_gradients, numeric_gradient
from repro.ml.losses import bce_with_logits, binary_nll, cross_entropy
from repro.ml.serialize import (
    load_module,
    load_module_state,
    module_state_record,
    save_module,
    state_from_jsonable,
    state_to_jsonable,
)
from repro.ml.tensor import Tensor as T


def leaf(rng, shape):
    return T(rng.normal(size=shape), requires_grad=True)


class TestLosses:
    def test_bce_matches_manual(self):
        logits = T(np.array([0.0, 2.0]), requires_grad=True)
        targets = np.array([1.0, 0.0])
        loss = bce_with_logits(logits, targets)
        expected = np.mean([
            -np.log(0.5),
            -np.log(1 - 1 / (1 + np.exp(-2.0))),
        ])
        assert loss.item() == pytest.approx(expected)

    def test_bce_shape_mismatch(self):
        with pytest.raises(ShapeError):
            bce_with_logits(T(np.zeros(3), requires_grad=True), np.zeros(4))

    def test_bce_gradcheck(self, rng):
        logits = leaf(rng, (5,))
        targets = (rng.random(5) > 0.5).astype(float)
        assert check_gradients(lambda: bce_with_logits(logits, targets), [logits])

    def test_bce_extreme_logits_finite(self):
        logits = T(np.array([500.0, -500.0]), requires_grad=True)
        loss = bce_with_logits(logits, np.array([0.0, 1.0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.all(np.isfinite(logits.grad))

    def test_binary_nll_gradcheck(self, rng):
        x = leaf(rng, (6,))
        targets = (rng.random(6) > 0.5).astype(float)
        assert check_gradients(
            lambda: binary_nll(x.sigmoid(), targets), [x])

    def test_cross_entropy_uniform_logits(self):
        logits = T(np.zeros((2, 4)), requires_grad=True)
        loss = cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4.0))

    def test_cross_entropy_gradcheck(self, rng):
        logits = leaf(rng, (4, 3))
        ids = np.array([0, 2, 1, 1])
        assert check_gradients(lambda: cross_entropy(logits, ids), [logits])


class TestOptimizers:
    @pytest.mark.parametrize("make_optimizer", [
        lambda params: SGD(params, lr=0.5),
        lambda params: SGD(params, lr=0.3, momentum=0.9),
        lambda params: Adagrad(params, lr=0.5),
        lambda params: Adam(params, lr=0.1),
    ])
    def test_minimizes_quadratic(self, make_optimizer):
        x = T(np.array([5.0, -3.0]), requires_grad=True)
        x.requires_grad = True
        param = x
        # Wrap as Parameter-like: optimizers only need .data/.grad.
        optimizer = make_optimizer([param])
        for _ in range(400):
            optimizer.zero_grad()
            loss = (param * param).sum()
            loss.backward()
            optimizer.step()
        assert np.abs(param.data).max() < 5e-2

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_clip_grad_norm(self, rng):
        param = T(np.zeros(4), requires_grad=True)
        param.grad = np.full(4, 10.0)
        optimizer = SGD([param], lr=0.1)
        norm = optimizer.clip_grad_norm(1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_logistic_regression_learns_xor_features(self, rng):
        """End-to-end sanity: an MLP fits XOR with Adam."""
        mlp = MLP([2, 8, 1], rng, activation="tanh")
        optimizer = Adam(mlp.parameters(), lr=0.05)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0.0, 1.0, 1.0, 0.0])
        for _ in range(300):
            optimizer.zero_grad()
            logits = mlp(Tensor(x)).reshape(4)
            loss = bce_with_logits(logits, y)
            loss.backward()
            optimizer.step()
        predictions = (mlp(Tensor(x)).data.reshape(4) > 0).astype(float)
        np.testing.assert_allclose(predictions, y)


class TestSerialization:
    def test_save_load_roundtrip(self, rng, tmp_path):
        model = Linear(3, 2, rng)
        path = tmp_path / "model.npz"
        save_module(model, path)
        other = Linear(3, 2, np.random.default_rng(5))
        load_module(other, path)
        np.testing.assert_allclose(other.weight.data, model.weight.data)
        np.testing.assert_allclose(other.bias.data, model.bias.data)

    def test_load_missing_key_raises(self, rng, tmp_path):
        model = Linear(3, 2, rng)
        path = tmp_path / "model.npz"
        np.savez(path, nothing=np.zeros(1))
        with pytest.raises(KeyError):
            load_module(model, path)

    def test_suffixless_path_round_trips(self, rng, tmp_path):
        """Regression: ``numpy.savez`` appends ``.npz`` behind the
        caller's back, so saving to ``model`` then loading from ``model``
        used to raise ``FileNotFoundError``."""
        model = Linear(3, 2, rng)
        written = save_module(model, tmp_path / "model")
        assert written == tmp_path / "model.npz"
        other = Linear(3, 2, np.random.default_rng(5))
        load_module(other, tmp_path / "model")  # same suffixless path
        np.testing.assert_allclose(other.weight.data, model.weight.data)

    def test_state_record_round_trips_bit_identical(self, rng):
        model = Linear(3, 2, rng)
        state = model.state_dict()
        restored = state_from_jsonable(state_to_jsonable(state))
        for name, array in state.items():
            np.testing.assert_array_equal(restored[name], array)

    def test_state_record_fingerprint_guards_architecture(self, rng):
        record = module_state_record(Linear(3, 2, rng), config={"kind": "a"})
        match = Linear(3, 2, np.random.default_rng(9))
        load_module_state(match, record)
        np.testing.assert_array_equal(
            match.weight.data, record and state_from_jsonable(
                record["params"])["weight"])
        with pytest.raises(DataError, match="fingerprint"):
            load_module_state(Linear(3, 3, rng), record)

    def test_malformed_state_record_is_a_data_error(self, rng):
        model = Linear(3, 2, rng)
        record = module_state_record(model)
        broken = {**record, "params": {"weight": {"shape": [2, 3]}}}
        with pytest.raises(DataError, match="malformed parameter"):
            load_module_state(model, broken)
        with pytest.raises(DataError, match="malformed module state"):
            load_module_state(model, {"params": {}})


class TestGradCheckDiagnostics:
    def test_numeric_gradient_handles_non_contiguous_tensors(self, rng):
        """Regression: finite differences used to perturb through
        ``data.flat``, which walks a *copy* for non-contiguous views —
        every perturbation was silently lost and the numeric gradient
        came back zero."""
        base = T(rng.normal(size=(3, 4)), requires_grad=True)
        transposed = base.transpose()
        assert not transposed.data.flags["C_CONTIGUOUS"]
        numeric = numeric_gradient(lambda: (transposed**2).sum(), transposed)
        np.testing.assert_allclose(numeric, 2.0 * transposed.data, atol=1e-5)
        assert np.abs(numeric).max() > 0

    def test_transposed_parameter_passes_gradcheck(self, rng):
        weight = T(rng.normal(size=(4, 3)), requires_grad=True)
        view = weight.transpose()
        report = check_gradients(lambda: (view * view).sum(), [view])
        assert report
        assert report.max_rel_error < 1e-4

    def test_report_carries_per_tensor_errors(self, rng):
        """``check_gradients`` returns a diagnosable report, not a bare
        bool: per-tensor max abs/rel errors, still truthy at call sites."""
        first = leaf(rng, (3,))
        second = leaf(rng, (2, 2))
        report = check_gradients(
            lambda: (first**2).sum() + (second * 2.0).sum(), [first, second])
        assert report  # correct autograd: everything passes
        assert len(report.results) == 2
        for result in report.results:
            assert result.passed
            assert result.max_abs_error < 1e-4
        assert report.failures == ()
        assert "ok" in repr(report)

    def test_report_is_falsy_on_genuine_mismatch(self, rng):
        tensor = leaf(rng, (3,))
        # Non-differentiable corner: |x| at a point forced near zero has
        # a numeric/analytic mismatch — use a function whose analytic
        # gradient we deliberately desynchronise by mutating data
        # between passes instead.
        calls = {"n": 0}

        def unstable():
            calls["n"] += 1
            scale = 1.0 if calls["n"] == 1 else 2.0
            return (tensor * scale).sum()

        report = check_gradients(unstable, [tensor])
        assert not report
        assert report.failures
        failing = report.failures[0]
        assert failing.max_rel_error > 1e-4
        assert str(failing.shape) in repr(failing)
