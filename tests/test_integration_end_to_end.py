"""End-to-end integration: one SMALL-scale build exercised through every
application surface, persistence, and validation — the "day in the life"
of the system a downstream user would adopt."""

import numpy as np
import pytest

from repro import build_alicoco, SMALL
from repro.apps import (
    CognitiveRecommender, ConceptQA, CoverageEvaluator, SemanticSearchEngine,
)
from repro.apps.coverage import alicoco_vocabulary, cpv_vocabulary
from repro.apps.monitoring import CoverageMonitor
from repro.kg.query import items_for_concept
from repro.kg.serialize import load_store, save_store
from repro.kg.validate import validate_store
from repro.synth.queries import generate_queries
from repro.synth.sessions import simulate_sessions


@pytest.fixture(scope="module")
def built():
    return build_alicoco(SMALL)


class TestEndToEnd:
    def test_small_build_is_valid_and_rich(self, built):
        report = validate_store(built.store)
        assert report.ok, report.problems
        stats = built.store.stats()
        assert stats.items == SMALL.n_items
        assert stats.ecommerce_concepts >= 70
        assert stats.linked_item_fraction >= 0.98
        assert stats.avg_ecommerce_per_item > 0

    def test_persistence_survives_full_cycle(self, built, tmp_path):
        path = tmp_path / "net.jsonl"
        save_store(built.store, path)
        loaded = load_store(path)
        assert validate_store(loaded).ok
        # Applications work on the reloaded store too.
        engine = SemanticSearchEngine(loaded)
        spec = built.concepts[0]
        assert engine.find_concept(spec.text) is not None

    def test_search_to_card_to_items_flow(self, built):
        engine = SemanticSearchEngine(built.store)
        for spec in built.concepts:
            concept_id = built.concept_ids[spec.text]
            if len(items_for_concept(built.store, concept_id)) >= 3:
                result = engine.search(spec.text)
                assert result.concept_card is not None
                card = engine.knowledge_card(concept_id)
                assert card.items
                assert card.interpretation_by_domain
                return
        pytest.fail("no concept with enough items at SMALL scale")

    def test_recommendation_and_qa_share_the_net(self, built):
        rng = np.random.default_rng(0)
        sessions = simulate_sessions(built.store, built.concept_ids, rng,
                                     n_users=5)
        recommender = CognitiveRecommender(built.store)
        cards = recommender.recommend_cards(sessions[0].history, top_k=2)
        assert cards
        qa = ConceptQA(built.store)
        answer = qa.answer(f"what do i need for {cards[0].concept.text}")
        assert answer.answered
        assert answer.concept.text == cards[0].concept.text

    def test_monitoring_over_the_built_vocabulary(self, built):
        vocabulary = alicoco_vocabulary(built.lexicon,
                                        [s.text for s in built.concepts])
        monitor = CoverageMonitor(CoverageEvaluator(vocabulary, "AliCoCo"))
        for day in range(3):
            queries = generate_queries(built.world, built.concepts, 60,
                                       seed=500 + day)
            monitor.observe_day(queries)
        assert monitor.average_coverage() > \
            CoverageEvaluator(cpv_vocabulary(built.lexicon), "CPV").evaluate(
                generate_queries(built.world, built.concepts, 60,
                                 seed=503)).query_coverage

    def test_build_scales_are_consistent(self, built):
        """SMALL strictly extends TINY: same seed, same world rules, more
        of everything."""
        from repro import build_alicoco as build, TINY
        tiny = build(TINY)
        assert tiny.store.stats().items < built.store.stats().items
        assert set(tiny.lexicon.surfaces()) == set(built.lexicon.surfaces())
