"""Tests for the knowledge-enhanced Wide&Deep concept classifier."""

import numpy as np
import pytest

from repro.concepts import ConceptClassifier, WideFeatureExtractor
from repro.concepts.classifier import lexicon_ner_lookup
from repro.errors import DataError, NotFittedError
from repro.nlp.ngram_lm import BidirectionalLanguageModel
from repro.nlp.pos import PosTagger
from repro.nlp.vocab import Vocab
from repro.synth import build_lexicon, World


@pytest.fixture(scope="module")
def setup():
    """Small but realistic training setup shared by the class tests."""
    lexicon = build_lexicon(seed=7)
    world = World(lexicon, seed=7)
    rng = np.random.default_rng(3)
    specs = world.sample_concepts(rng, 120, 120)
    texts = [s.text for s in specs]
    labels = [int(s.good) for s in specs]
    sentences = [t.split() for t in texts]
    lm = BidirectionalLanguageModel().fit(
        [list(s.tokens) for s in specs if s.good] * 2)
    vocab = Vocab.from_corpus(sentences)
    ner_lookup, num_ner = lexicon_ner_lookup(lexicon)
    tagger = PosTagger(lexicon.pos_lexicon())
    cut = 180
    return {
        "lexicon": lexicon, "world": world, "lm": lm, "vocab": vocab,
        "ner_lookup": ner_lookup, "num_ner": num_ner, "pos": tagger,
        "train_texts": texts[:cut], "train_labels": labels[:cut],
        "test_texts": texts[cut:], "test_labels": labels[cut:],
        "sentences": sentences,
    }


def make_classifier(setup, use_wide=False, use_ppl=True, use_knowledge=False,
                    seed=1):
    wide = None
    if use_wide:
        wide = WideFeatureExtractor(setup["lm"], setup["sentences"],
                                    use_perplexity=use_ppl)
    knowledge = None
    if use_knowledge:
        vectors = {}

        def lookup(word):
            if word not in vectors:
                word_rng = np.random.default_rng(abs(hash(word)) % 2 ** 31)
                vectors[word] = word_rng.normal(size=8)
            return vectors[word]

        knowledge = lookup
    return ConceptClassifier(
        setup["vocab"], setup["pos"], setup["ner_lookup"], setup["num_ner"],
        wide_extractor=wide, knowledge_lookup=knowledge, knowledge_dim=8,
        word_dim=12, char_dim=6, hidden_dim=8, seed=seed)


class TestConceptClassifier:
    def test_learns_above_chance(self, setup):
        model = make_classifier(setup, use_wide=True)
        history = model.fit(setup["train_texts"], setup["train_labels"],
                            epochs=4, lr=0.02, seed=1)
        assert history[-1] < history[0]
        metrics = model.evaluate(setup["test_texts"], setup["test_labels"])
        assert metrics["accuracy"] > 0.55, "must beat the 0.5 chance level"

    def test_unfitted_raises(self, setup):
        model = make_classifier(setup)
        with pytest.raises(NotFittedError):
            model.predict_proba(["outdoor barbecue"])

    def test_empty_training_raises(self, setup):
        model = make_classifier(setup)
        with pytest.raises(DataError):
            model.fit([], [])

    def test_length_mismatch_raises(self, setup):
        model = make_classifier(setup)
        with pytest.raises(DataError):
            model.fit(["a"], [1, 0])

    def test_empty_phrase_raises(self, setup):
        model = make_classifier(setup)
        with pytest.raises(DataError):
            model.logit("")

    def test_probabilities_in_range(self, setup):
        model = make_classifier(setup)
        model.fit(setup["train_texts"][:40], setup["train_labels"][:40],
                  epochs=1, seed=1)
        probabilities = model.predict_proba(setup["test_texts"][:10])
        assert np.all((probabilities >= 0) & (probabilities <= 1))

    def test_knowledge_module_changes_output(self, setup):
        plain = make_classifier(setup, use_knowledge=False, seed=2)
        knowing = make_classifier(setup, use_knowledge=True, seed=2)
        assert knowing.num_parameters() > plain.num_parameters()

    def test_ner_lookup_distinguishes_ambiguity(self, setup):
        lookup = setup["ner_lookup"]
        # "village" is ambiguous (Location/Style): its own id.
        assert lookup("village") != lookup("coat")
        assert lookup("zzz-unknown") != lookup("coat")
        assert lookup("coat") == lookup("dress")  # both Category
