"""repro — a reproduction of "AliCoCo: Alibaba E-commerce Cognitive Concept Net".

The package builds the paper's four-layer cognitive concept net end to end:

- :mod:`repro.taxonomy` — the 20-domain class hierarchy (Section 3);
- :mod:`repro.mining` — primitive-concept vocabulary mining (Section 4.1);
- :mod:`repro.hypernym` — hypernym discovery with active learning (Section 4.2);
- :mod:`repro.concepts` — e-commerce concept generation, classification and
  tagging (Section 5);
- :mod:`repro.matching` — concept-item semantic matching (Section 6);
- :mod:`repro.kg` — the graph store holding all four layers;
- :mod:`repro.apps` — search / recommendation applications (Section 8);
- :mod:`repro.synth` — the synthetic e-commerce world standing in for
  Alibaba's proprietary corpus;
- :mod:`repro.ml` / :mod:`repro.nlp` — from-scratch neural-network and NLP
  substrates.

Quickstart::

    from repro import build_alicoco, TINY
    result = build_alicoco(TINY)
    print(result.store.stats().summary())
"""

from .config import RunScale, TINY, SMALL, BENCH, get_scale

__version__ = "1.0.0"

__all__ = ["RunScale", "TINY", "SMALL", "BENCH", "get_scale",
           "build_alicoco", "__version__"]


def build_alicoco(*args, **kwargs):
    """Build the full AliCoCo net; see :func:`repro.pipeline.build.build_alicoco`."""
    from .pipeline.build import build_alicoco as _build
    return _build(*args, **kwargs)
