"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied."""


class GraphError(ReproError):
    """Base class for knowledge-graph storage errors."""


class NodeNotFoundError(GraphError):
    """A node id was referenced that does not exist in the store."""


class DuplicateNodeError(GraphError):
    """A node with the same id was inserted twice."""


class RelationError(GraphError):
    """A relation violates the schema (bad endpoint types or unknown kind)."""


class FrozenStoreError(GraphError):
    """A mutation was attempted on a store frozen for read-only serving."""


class TaxonomyError(ReproError):
    """The taxonomy definition is inconsistent (cycle, unknown parent...)."""


class VocabError(ReproError):
    """A token was looked up that is not in a closed vocabulary."""


class ShapeError(ReproError):
    """Tensor shapes are incompatible for the requested operation."""


class NotFittedError(ReproError):
    """A model was used before it was trained/fitted."""


class BudgetExhaustedError(ReproError):
    """The annotation oracle ran out of labelling budget."""


class DataError(ReproError):
    """A dataset is malformed or empty where data was required."""


class OverloadedError(ReproError):
    """A request was shed by admission control (the 429 of this library).

    Raised instead of queueing without bound: the serving tier admits at
    most ``max_inflight`` concurrent requests and queues at most
    ``max_queue_depth`` more for at most ``max_queue_wait_ms`` — anything
    beyond that fails fast with this error so callers can retry with
    backoff instead of piling onto an already-saturated service.

    Attributes:
        reason: Why the request was shed — ``"queue_full"`` (the wait
            queue was at capacity on arrival) or ``"queue_timeout"`` (a
            slot did not free up within the queue-wait bound).
    """

    def __init__(self, message: str, *, reason: str = "overloaded"):
        super().__init__(message)
        self.reason = reason


class ShardUnavailableError(ReproError):
    """A cluster shard's worker process is gone and cannot be restored.

    Raised by the process-backed shard executor
    (:mod:`repro.serving.procpool`) when a worker crashed and the
    bounded restart budget is exhausted (or a restart itself failed).
    Queries touching the lost shard degrade to this typed error instead
    of hanging on a dead pipe; queries routed to healthy shards keep
    answering.

    Attributes:
        shard: Index of the unavailable shard (``-1`` when unknown).
    """

    def __init__(self, message: str, *, shard: int = -1):
        super().__init__(message)
        self.shard = shard


def error_by_name(name: str) -> type[ReproError] | None:
    """The :class:`ReproError` subclass called ``name``, or ``None``.

    Batch envelopes (:class:`repro.serving.BatchResult`) carry failures
    as ``(exception type name, message)`` pairs so they survive
    serialisation; this maps a recorded name back to the library class so
    callers can re-raise the original error type.  Names outside the
    :class:`ReproError` hierarchy (e.g. ``TypeError``) return ``None``.
    """
    pending = [ReproError]
    while pending:
        klass = pending.pop()
        if klass.__name__ == name:
            return klass
        pending.extend(klass.__subclasses__())
    return None
