"""E-commerce semantic search (Sections 8.1.1-8.1.2).

Two behaviours from the paper:

- *semantic search / concept cards*: a query that names a shopping scenario
  triggers a concept card ("items you will need for outdoor barbecue")
  with the concept's associated items (Fig 2a);
- *search relevance*: isA knowledge bridges the vocabulary gap between
  queries and titles — a query for "coat" should retrieve "trench coat"
  items even when the title never says "coat".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..errors import NodeNotFoundError
from ..kg.ids import ECOMMERCE_PREFIX, ITEM_PREFIX
from ..kg.nodes import ECommerceConcept, Item, PrimitiveConcept
from ..kg.query import interpretation, items_for_concept
from ..kg.relations import RelationKind
from ..kg.store import AliCoCoStore


@dataclass
class KnowledgeCard:
    """The structured 'knowledge card' of Section 8.1.2 — like searching
    "China" on Google: everything the net knows about a shopping scenario.

    Attributes:
        concept: The scenario concept.
        interpretation_by_domain: domain -> primitive concepts explaining
            the scenario.
        items: Associated items, best first.
        broader: Concepts this one isA.
        narrower: Concepts that isA this one.
        implied: Primitive concepts implied through mined commonsense
            relations ("swimsuit suitable_when summer"), with probability.
    """

    concept: ECommerceConcept
    interpretation_by_domain: dict[str, list[PrimitiveConcept]] = field(
        default_factory=dict)
    items: list[Item] = field(default_factory=list)
    broader: list[ECommerceConcept] = field(default_factory=list)
    narrower: list[ECommerceConcept] = field(default_factory=list)
    implied: list[tuple[PrimitiveConcept, str, float]] = field(
        default_factory=list)

    def render(self) -> str:
        """Multi-line text rendering of the card."""
        lines = [f"=== {self.concept.text} ==="]
        for domain in sorted(self.interpretation_by_domain):
            names = ", ".join(p.name for p
                              in self.interpretation_by_domain[domain])
            lines.append(f"{domain}: {names}")
        for primitive, relation, probability in self.implied:
            lines.append(f"implies {primitive.name} "
                         f"({relation}, p={probability:.2f})")
        if self.broader:
            lines.append("part of: "
                         + ", ".join(c.text for c in self.broader))
        if self.items:
            lines.append("items you will need:")
            lines.extend(f"  - {item.title}" for item in self.items)
        return "\n".join(lines)


@dataclass
class SearchResult:
    """Outcome of one query.

    Attributes:
        query: The raw query text.
        concept_card: Triggered e-commerce concept, if any (Fig 2a).
        card_items: Items displayed on the card.
        items: Regular retrieval results (title matching + isA expansion).
    """

    query: str
    concept_card: ECommerceConcept | None = None
    card_items: list[Item] = field(default_factory=list)
    items: list[Item] = field(default_factory=list)


class SemanticSearchEngine:
    """Search over a built AliCoCo store.

    Args:
        store: The net (items, concepts, isA relations all inside).
        use_isa_expansion: Expand query terms with their hyponyms via
            primitive-concept isA edges (the Section 8.1.1 improvement).
        card_items: Number of items shown on a concept card.
    """

    def __init__(self, store: AliCoCoStore, use_isa_expansion: bool = True,
                 card_items: int = 10):
        self.store = store
        self.use_isa = use_isa_expansion
        self.card_items = card_items
        self._title_index: dict[str, set[str]] = defaultdict(set)
        for item in store.nodes(ITEM_PREFIX):
            for token in item.title.split():
                self._title_index[token].add(item.id)
        self._concept_by_text: dict[str, ECommerceConcept] = {}
        for concept in store.nodes(ECOMMERCE_PREFIX):
            self._concept_by_text[concept.text] = concept
        # hyponym expansion: surface -> hyponym surfaces (one isA hop).
        self._hyponyms: dict[str, set[str]] = defaultdict(set)
        for relation in store.relations(RelationKind.ISA_PRIMITIVE):
            hyponym = store.get(relation.source).name
            hypernym = store.get(relation.target).name
            self._hyponyms[hypernym].add(hyponym)

    # ----------------------------------------------------------------- query
    def find_concept(self, query: str) -> ECommerceConcept | None:
        """Concept card trigger: exact text, else best token containment."""
        query = query.strip()
        if query in self._concept_by_text:
            return self._concept_by_text[query]
        query_tokens = set(query.split())
        best: ECommerceConcept | None = None
        best_overlap = 0
        for text, concept in self._concept_by_text.items():
            tokens = set(text.split())
            if tokens <= query_tokens and len(tokens) > best_overlap:
                best = concept
                best_overlap = len(tokens)
        return best

    def _expanded_terms(self, token: str) -> set[str]:
        terms = {token}
        if self.use_isa:
            for hyponym in self._hyponyms.get(token, ()):
                terms.update(hyponym.split())
                terms.add(hyponym.split()[-1])
        return terms

    def retrieve_items(self, query: str, top_k: int = 10) -> list[Item]:
        """Title retrieval scored by matched query terms, with optional
        isA expansion of each query token."""
        scores: dict[str, float] = defaultdict(float)
        for token in query.split():
            token_credit: dict[str, float] = {}
            for term in self._expanded_terms(token):
                weight = 1.0 if term == token else 0.8
                for item_id in self._title_index.get(term, ()):
                    token_credit[item_id] = max(token_credit.get(item_id, 0.0),
                                                weight)
            for item_id, credit in token_credit.items():
                scores[item_id] += credit
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [self.store.get(item_id) for item_id, _ in ranked[:top_k]]

    def search(self, query: str) -> SearchResult:
        """Full search: concept card (if triggered) plus item results."""
        result = SearchResult(query=query)
        concept = self.find_concept(query)
        if concept is not None:
            result.concept_card = concept
            result.card_items = items_for_concept(self.store, concept.id,
                                                  top_k=self.card_items)
        result.items = self.retrieve_items(query)
        return result

    # -------------------------------------------------------- knowledge card
    def knowledge_card(self, concept_id: str) -> KnowledgeCard:
        """Assemble the full knowledge card of a concept (Section 8.1.2).

        Raises:
            NodeNotFoundError: If the concept does not exist.
        """
        concept = self.store.get(concept_id)
        if not isinstance(concept, ECommerceConcept):
            raise NodeNotFoundError(
                f"{concept_id!r} is not an e-commerce concept")
        card = KnowledgeCard(concept=concept)
        for primitive in interpretation(self.store, concept_id):
            card.interpretation_by_domain.setdefault(
                primitive.domain, []).append(primitive)
        card.items = items_for_concept(self.store, concept_id,
                                       top_k=self.card_items)
        card.broader = self.store.targets(concept_id,
                                          RelationKind.ISA_ECOMMERCE)
        card.narrower = self.store.sources(concept_id,
                                           RelationKind.ISA_ECOMMERCE)
        # Mined commonsense implications of the interpreting primitives.
        for primitives in card.interpretation_by_domain.values():
            for primitive in primitives:
                for relation in self.store.out_relations(
                        primitive.id, RelationKind.RELATED_PRIMITIVE):
                    card.implied.append((self.store.get(relation.target),
                                         relation.name, relation.weight))
        return card

    # ------------------------------------------------------------ relevance
    def relevance(self, query: str, item: Item) -> float:
        """Query-item relevance in [0, 1]: matched query-term fraction
        (with isA expansion when enabled) — the Section 8.1.1 semantic
        matching signal."""
        tokens = query.split()
        if not tokens:
            return 0.0
        title_tokens = set(item.title.split())
        matched = 0
        for token in tokens:
            if self._expanded_terms(token) & title_tokens:
                matched += 1
        return matched / len(tokens)
