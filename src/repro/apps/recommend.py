"""Recommendation (Sections 1 and 8.2).

Two recommenders:

- :class:`ItemCFRecommender` — the item-based collaborative-filtering
  baseline the paper's introduction critiques: it recalls items similar to
  the user's history and cannot explain *why* beyond "similar to what you
  viewed";
- :class:`CognitiveRecommender` — "cognitive recommendation" (Section
  8.2.1): infers the user's scenario from their history through the net
  and recommends a *concept card* with its associated items, breaking out
  of the similar-items loop.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from ..errors import DataError
from ..kg.nodes import ECommerceConcept, Item
from ..kg.query import concepts_for_item, items_for_concept
from ..kg.store import AliCoCoStore


class ItemCFRecommender:
    """Item-based CF over user->items interaction sessions.

    Similarity is cosine over the item co-occurrence counts of sessions —
    the classical Sarwar et al. [24] scheme the paper describes as the
    industry default.
    """

    def __init__(self, sessions: list[list[str]]):
        if not sessions:
            raise DataError("item CF needs at least one session")
        self._co_counts: dict[str, Counter[str]] = defaultdict(Counter)
        self._counts: Counter[str] = Counter()
        for session in sessions:
            unique = list(dict.fromkeys(session))
            for item in unique:
                self._counts[item] += 1
            for i, left in enumerate(unique):
                for right in unique[i + 1:]:
                    self._co_counts[left][right] += 1
                    self._co_counts[right][left] += 1

    def similarity(self, item_a: str, item_b: str) -> float:
        """Cosine-normalised co-occurrence similarity."""
        co = self._co_counts.get(item_a, {}).get(item_b, 0)
        if co == 0:
            return 0.0
        return co / ((self._counts[item_a] * self._counts[item_b]) ** 0.5)

    def recommend(self, history: list[str], top_k: int = 10) -> list[str]:
        """Items most similar to the user's history (history excluded)."""
        scores: dict[str, float] = defaultdict(float)
        seen = set(history)
        for trigger in history:
            for candidate, co in self._co_counts.get(trigger, {}).items():
                if candidate in seen:
                    continue
                scores[candidate] += co / (
                    (self._counts[trigger] * self._counts[candidate]) ** 0.5)
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [item for item, _ in ranked[:top_k]]


@dataclass
class ConceptCard:
    """A recommended concept card (Fig 2b)."""

    concept: ECommerceConcept
    items: list[Item] = field(default_factory=list)
    trigger_item: str = ""


class CognitiveRecommender:
    """User-needs driven recommendation through the net.

    Args:
        store: A built AliCoCo store with item-concept associations.
        card_items: Items shown per concept card.
    """

    def __init__(self, store: AliCoCoStore, card_items: int = 8):
        self.store = store
        self.card_items = card_items

    def infer_needs(self, history: list[str],
                    top_k: int = 3) -> list[ECommerceConcept]:
        """Scenario concepts the user's history points at, by vote count."""
        votes: Counter[str] = Counter()
        for item_id in history:
            if item_id not in self.store:
                continue
            for concept in concepts_for_item(self.store, item_id):
                votes[concept.id] += 1
        ranked = sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))
        return [self.store.get(concept_id) for concept_id, _ in ranked[:top_k]]

    def recommend_cards(self, history: list[str],
                        top_k: int = 3) -> list[ConceptCard]:
        """Concept cards for inferred needs, each with associated items
        the user has not already interacted with."""
        seen = set(history)
        cards: list[ConceptCard] = []
        for concept in self.infer_needs(history, top_k=top_k):
            items = [item for item in
                     items_for_concept(self.store, concept.id,
                                       top_k=self.card_items + len(seen))
                     if item.id not in seen][:self.card_items]
            if items:
                cards.append(ConceptCard(concept=concept, items=items))
        return cards

    def novelty(self, history: list[str], recommended: list[str]) -> float:
        """Share of recommended items outside the history's categories —
        the "brings more novelty" claim of Section 8.2.1, measurable."""
        if not recommended:
            return 0.0
        history_tokens: set[str] = set()
        for item_id in history:
            if item_id in self.store:
                history_tokens.update(self.store.get(item_id).title.split())
        novel = 0
        for item_id in recommended:
            tokens = set(self.store.get(item_id).title.split())
            if not (tokens & history_tokens):
                novel += 1
        return novel / len(recommended)
