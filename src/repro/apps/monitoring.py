"""Daily quality monitoring (Section 7.1).

"We repeat this procedure every day, in order to detect new trends of
user needs in time."  This module simulates that loop: a stream of daily
query samples is scored for coverage, and the uncovered content terms are
surfaced as *trend candidates* for the mining pipeline to pick up.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..errors import DataError
from ..synth.queries import Query
from .coverage import CoverageEvaluator, CoverageReport


@dataclass
class DailyReport:
    """One day's monitoring outcome."""

    day: int
    coverage: CoverageReport
    trend_candidates: list[tuple[str, int]] = field(default_factory=list)


class CoverageMonitor:
    """Tracks coverage over daily query samples and surfaces new trends.

    Args:
        evaluator: Coverage evaluator for the current vocabulary.
        trend_min_count: Occurrences before an uncovered term counts as a
            trend candidate.
    """

    def __init__(self, evaluator: CoverageEvaluator, trend_min_count: int = 2):
        self.evaluator = evaluator
        self.trend_min_count = trend_min_count
        self.history: list[DailyReport] = []
        self._uncovered_counts: Counter[str] = Counter()

    def observe_day(self, queries: list[Query]) -> DailyReport:
        """Score one day's query sample and update trend counters.

        Raises:
            DataError: On an empty day.
        """
        if not queries:
            raise DataError("a day's query sample cannot be empty")
        coverage = self.evaluator.evaluate(queries)
        for query in queries:
            tokens = list(query.tokens)
            flags = self.evaluator.covered_tokens(tokens)
            for token, covered in zip(tokens, flags):
                if not covered and len(token) > 2:
                    self._uncovered_counts[token] += 1
        candidates = [(term, count) for term, count
                      in self._uncovered_counts.most_common()
                      if count >= self.trend_min_count]
        report = DailyReport(day=len(self.history), coverage=coverage,
                             trend_candidates=candidates)
        self.history.append(report)
        return report

    def average_coverage(self) -> float:
        """Mean needs coverage over the observed window (the paper's "over
        75% of shopping needs on average in continuous 30 days")."""
        if not self.history:
            raise DataError("no days observed yet")
        return sum(r.coverage.query_coverage for r in self.history) \
            / len(self.history)

    def top_trends(self, k: int = 5) -> list[str]:
        """The most frequent uncovered terms so far."""
        return [term for term, _ in self._uncovered_counts.most_common(k)]
