"""User-needs coverage evaluation (Section 7.1).

The paper samples 2000 search queries daily, rewrites them into coherent
word sequences, and measures what share of the words AliCoCo covers:
"AliCoCo covers over 75% of shopping needs on average ... while this
number is only 30% for the former ontology".  The former ontology is the
CPV (Category-Property-Value) taxonomy: category words, brands and
property values only — no events, locations, scenarios or concept phrases.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DataError
from ..synth.queries import Query

#: Domains the former CPV ontology knows about (categories + properties).
CPV_DOMAINS = ("Category", "Brand", "Color", "Material", "Pattern", "Shape",
               "Quantity", "Design")

_STOPWORDS = frozenset({"for", "in", "and", "the", "a", "an", "of", "to",
                        "with", "i", "do", "what", "need", "things", "help",
                        "prepare", "get", "rid", "keep"})


@dataclass(frozen=True)
class CoverageReport:
    """Coverage of a query stream by one vocabulary.

    Attributes:
        name: Which ontology was evaluated.
        token_coverage: Mean per-query share of content tokens covered.
        query_coverage: Share of queries whose content tokens are ALL
            covered (the "needs understood" reading).
        by_family: query_coverage per query family.
    """

    name: str
    token_coverage: float
    query_coverage: float
    by_family: dict[str, float]


class CoverageEvaluator:
    """Scores vocabularies against a query stream.

    Args:
        vocabulary: Covered surfaces (single- and multi-word).
        name: Label for reports.
    """

    def __init__(self, vocabulary: set[str], name: str):
        self.name = name
        self._single = {s for s in vocabulary if " " not in s}
        self._multi = {tuple(s.split()) for s in vocabulary if " " in s}
        self._max_len = max((len(m) for m in self._multi), default=1)

    def covered_tokens(self, tokens: list[str]) -> list[bool]:
        """Per-token coverage flags; multi-word vocabulary entries cover
        all their tokens at once."""
        flags = [token in self._single for token in tokens]
        for length in range(2, self._max_len + 1):
            for start in range(len(tokens) - length + 1):
                if tuple(tokens[start:start + length]) in self._multi:
                    for offset in range(length):
                        flags[start + offset] = True
        return flags

    def evaluate(self, queries: list[Query]) -> CoverageReport:
        """Coverage of a query stream.

        Raises:
            DataError: On an empty stream.
        """
        if not queries:
            raise DataError("coverage evaluation needs queries")
        token_shares: list[float] = []
        full_flags: list[bool] = []
        by_family_hits: dict[str, list[bool]] = {}
        for query in queries:
            content = [t for t in query.tokens if t not in _STOPWORDS]
            if not content:
                continue
            flags = self.covered_tokens(content)
            token_shares.append(sum(flags) / len(flags))
            fully = all(flags)
            full_flags.append(fully)
            by_family_hits.setdefault(query.family, []).append(fully)
        if not token_shares:
            raise DataError("no queries had content tokens")
        by_family = {family: sum(hits) / len(hits)
                     for family, hits in by_family_hits.items()}
        return CoverageReport(
            name=self.name,
            token_coverage=sum(token_shares) / len(token_shares),
            query_coverage=sum(full_flags) / len(full_flags),
            by_family=by_family)


def cpv_vocabulary(lexicon) -> set[str]:
    """The former ontology's vocabulary: CPV domains only."""
    vocabulary: set[str] = set()
    for domain in CPV_DOMAINS:
        vocabulary.update(lexicon.domain_surfaces(domain))
    return vocabulary


def alicoco_vocabulary(lexicon, concept_texts: list[str]) -> set[str]:
    """AliCoCo's vocabulary: every primitive concept of all 20 domains
    plus the e-commerce concept phrases."""
    vocabulary = set(lexicon.surfaces())
    vocabulary.update(concept_texts)
    return vocabulary
