"""Recommendation reasons (Section 8.2.2).

E-commerce concepts are "clear and brief", which makes them directly
usable as the displayed reason for a recommendation — far more informative
than "people also viewed".
"""

from __future__ import annotations

from ..kg.query import concepts_for_item
from ..kg.store import AliCoCoStore


def recommendation_reason(store: AliCoCoStore, item_id: str,
                          history: list[str] | None = None) -> str:
    """A human-readable reason for recommending ``item_id``.

    Prefers a concept the user's history shares with the item (the
    inferred need); falls back to any concept of the item; final fallback
    is the trivial CF-style reason the paper criticises.
    """
    item_concepts = concepts_for_item(store, item_id)
    if history:
        history_concepts: set[str] = set()
        for past in history:
            if past in store:
                history_concepts.update(
                    c.id for c in concepts_for_item(store, past))
        shared = [c for c in item_concepts if c.id in history_concepts]
        if shared:
            return f"because you are preparing for: {shared[0].text}"
    if item_concepts:
        return f"great for: {item_concepts[0].text}"
    return "similar to items you have viewed"
