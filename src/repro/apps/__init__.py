"""Applications of AliCoCo (Section 8): search, recommendation, reasons,
and the user-needs coverage evaluation of Section 7.1."""

from .search import SemanticSearchEngine, SearchResult
from .recommend import CognitiveRecommender, ItemCFRecommender
from .reasons import recommendation_reason
from .coverage import CoverageEvaluator, CoverageReport
from .qa import Answer, ConceptQA

__all__ = [
    "SemanticSearchEngine", "SearchResult",
    "CognitiveRecommender", "ItemCFRecommender",
    "recommendation_reason",
    "CoverageEvaluator", "CoverageReport",
    "Answer", "ConceptQA",
]
