"""Question answering over the net (Section 8.1.2).

"At some point we may want to ask an e-commerce search engine 'What
should I prepare for hosting next week's barbecue?'" — this module
answers exactly that question shape from a built AliCoCo store: it strips
the question scaffolding, locates the e-commerce concept behind it,
explains the concept through its primitive-concept interpretation, and
returns the associated items as the shopping list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..kg.nodes import ECommerceConcept, Item, PrimitiveConcept
from ..kg.query import interpretation, items_for_concept
from ..kg.store import AliCoCoStore
from ..utils.text import normalize_text
from .search import SemanticSearchEngine

_QUESTION_WORDS = frozenset({
    "what", "which", "how", "should", "shall", "can", "could", "do", "does",
    "i", "we", "you", "to", "a", "an", "the", "for", "my", "me", "need",
    "needs", "needed", "prepare", "preparing", "buy", "get", "host",
    "hosting", "plan", "planning", "next", "week", "weeks", "is", "are",
    "there", "things", "items", "stuff", "of", "s", "'s",
})


@dataclass
class Answer:
    """A structured answer to a shopping question.

    Attributes:
        question: The original question.
        concept: The e-commerce concept the question resolved to (or None).
        explanation: The concept's primitive-concept interpretation.
        items: The shopping list.
    """

    question: str
    concept: ECommerceConcept | None = None
    explanation: list[PrimitiveConcept] = field(default_factory=list)
    items: list[Item] = field(default_factory=list)

    @property
    def answered(self) -> bool:
        return self.concept is not None and bool(self.items)

    def render(self) -> str:
        """Human-readable answer text."""
        if self.concept is None:
            return "Sorry, I could not find a shopping scenario for that."
        lines = [f"For {self.concept.text!r} you will need:"]
        for item in self.items:
            lines.append(f"  - {item.title}")
        if self.explanation:
            parts = ", ".join(f"{p.name} ({p.domain})"
                              for p in self.explanation)
            lines.append(f"(because {self.concept.text!r} involves: {parts})")
        return "\n".join(lines)


class ConceptQA:
    """Answers shopping questions through the concept layer.

    Args:
        store: A built AliCoCo store.
        max_items: Shopping-list length.
    """

    def __init__(self, store: AliCoCoStore, max_items: int = 8):
        self.store = store
        self.max_items = max_items
        self._engine = SemanticSearchEngine(store)

    def extract_intent(self, question: str) -> str:
        """The content words of a question ("what should i prepare for
        hosting next week's barbecue" -> "barbecue")."""
        tokens = normalize_text(question).split()
        content = []
        for token in tokens:
            bare = token[:-2] if token.endswith("'s") else token
            if bare not in _QUESTION_WORDS:
                content.append(token)
        return " ".join(content)

    def answer(self, question: str) -> Answer:
        """Answer a question; unanswerable questions return an empty
        Answer rather than raising."""
        answer = Answer(question=question)
        intent = self.extract_intent(question)
        if not intent:
            return answer
        concept = self._engine.find_concept(intent)
        if concept is None:
            # Fall back to the concept whose tokens the intent contains.
            concept = self._engine.find_concept(question.lower())
        if concept is None:
            return answer
        answer.concept = concept
        answer.explanation = interpretation(self.store, concept.id)
        answer.items = items_for_concept(self.store, concept.id,
                                         top_k=self.max_items)
        return answer
