"""Projection learning for hypernym scoring (Eqs. 1-2).

Given embeddings p (hyponym) and h (candidate hypernym), a K-layer
projection tensor produces scores ``s_k = p^T T_k h``; a fully-connected
layer with sigmoid turns the K scores into a probability.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import DataError, NotFittedError
from ..ml import Adam, Linear, Module
from ..ml.losses import bce_with_logits
from ..ml.module import Parameter
from ..ml.tensor import Tensor, no_grad, stack
from ..utils.metrics import (
    mean_average_precision, mean_reciprocal_rank,
    precision_at_k,
)
from ..utils.rng import spawn_rng
from .dataset import HypernymDataset, LabelledPair

PhraseEmbedder = Callable[[str], np.ndarray]


def mean_word_embedder(vocab, matrix: np.ndarray) -> PhraseEmbedder:
    """Phrase embedder averaging word vectors from a lookup table."""

    def embed(surface: str) -> np.ndarray:
        ids = [vocab.id(word) for word in surface.split()]
        return matrix[ids].mean(axis=0)

    return embed


class ProjectionModel(Module):
    """The projection-tensor hypernymy scorer.

    Args:
        embedder: Maps a concept surface to a fixed vector.
        dim: Embedding dimension the embedder produces.
        k_layers: Number of projection matrices (the K of Eq. 1).
        seed: Weight-init seed.
    """

    def __init__(self, embedder: PhraseEmbedder, dim: int, k_layers: int = 4,
                 seed: int = 0):
        super().__init__()
        rng = spawn_rng(seed, "projection")
        self.embedder = embedder
        self.dim = dim
        self.k_layers = k_layers
        self.tensors = Parameter(rng.normal(0.0, 0.3, size=(k_layers, dim, dim)))
        self.output = Linear(k_layers, 1, rng)
        self._fitted = False
        self._cache: dict[str, np.ndarray] = {}

    def _vector(self, surface: str) -> np.ndarray:
        if surface not in self._cache:
            vector = np.asarray(self.embedder(surface), dtype=np.float64)
            if vector.shape != (self.dim,):
                raise DataError(
                    f"embedder returned shape {vector.shape}, expected ({self.dim},)")
            self._cache[surface] = vector
        return self._cache[surface]

    def logits(self, pairs: Sequence[tuple[str, str]]) -> Tensor:
        """Pre-sigmoid scores for a batch of (hyponym, hypernym) pairs."""
        if not pairs:
            raise DataError("empty batch")
        p = Tensor(np.stack([self._vector(a) for a, _ in pairs]))
        h = Tensor(np.stack([self._vector(b) for _, b in pairs]))
        layer_scores = []
        for k in range(self.k_layers):
            projected = p @ self.tensors[k]           # (B, d)
            layer_scores.append((projected * h).sum(axis=1))
        s = stack(layer_scores, axis=1)               # (B, K)
        return self.output(s).reshape(len(pairs))

    def scores(self, pairs: Sequence[tuple[str, str]]) -> np.ndarray:
        """Probabilities in [0, 1] for a batch of pairs (no grad)."""
        with no_grad():
            logits = self.logits(pairs)
        return 1.0 / (1.0 + np.exp(-logits.numpy()))

    def fit(self, labelled: list[LabelledPair], epochs: int = 20,
            lr: float = 0.02, batch_size: int = 64, seed: int = 0,
            balance: bool = True) -> list[float]:
        """Train on labelled pairs; returns mean loss per epoch.

        Args:
            balance: Upweight positives by the class ratio — with the
                paper's N up to 200 negatives per positive, unweighted BCE
                lets positives drown.
        """
        if not labelled:
            raise DataError("projection model needs training pairs")
        rng = spawn_rng(seed, "projection-train")
        optimizer = Adam(self.parameters(), lr=lr)
        positive_weight = 1.0
        if balance:
            n_pos = sum(1 for _, _, y in labelled if y == 1)
            n_neg = len(labelled) - n_pos
            if n_pos and n_neg:
                positive_weight = n_neg / n_pos
        history: list[float] = []
        for _ in range(epochs):
            order = rng.permutation(len(labelled))
            total = 0.0
            batches = 0
            for start in range(0, len(labelled), batch_size):
                batch = [labelled[i] for i in order[start:start + batch_size]]
                pairs = [(a, b) for a, b, _ in batch]
                targets = np.array([y for _, _, y in batch], dtype=float)
                weights = np.where(targets == 1, positive_weight, 1.0)
                optimizer.zero_grad()
                loss = bce_with_logits(self.logits(pairs), targets,
                                       weights=weights)
                loss.backward()
                optimizer.step()
                total += loss.item()
                batches += 1
            history.append(total / batches)
        self._fitted = True
        return history

    # ------------------------------------------------------------ evaluation
    def rank_candidates(self, hyponym: str,
                        candidates: Sequence[str]) -> list[str]:
        """Candidates sorted by descending hypernymy score."""
        if not self._fitted:
            raise NotFittedError("projection model has not been trained")
        pool = [c for c in candidates if c != hyponym]
        scores = self.scores([(hyponym, c) for c in pool])
        order = np.argsort(-scores, kind="mergesort")
        return [pool[i] for i in order]

    def evaluate(self, dataset: HypernymDataset,
                 max_candidates: int | None = 150,
                 seed: int = 0) -> dict[str, float]:
        """MAP / MRR / P@1 over the test split (Table 3's metrics).

        Args:
            dataset: The dataset whose test positives to rank.
            max_candidates: Subsample of the pool per hyponym (always
                including the gold hypernyms) to bound cost.
            seed: Candidate-subsample seed.
        """
        gold = dataset.test_gold()
        if not gold:
            raise DataError("dataset has no test positives")
        rng = spawn_rng(seed, "projection-eval")
        relevance_lists = []
        hits_at_1 = []
        for hyponym, hypernyms in sorted(gold.items()):
            pool = [c for c in dataset.candidate_pool if c != hyponym]
            if max_candidates is not None and len(pool) > max_candidates:
                sampled = list(rng.choice(
                    [c for c in pool if c not in hypernyms],
                    size=max_candidates - len(hypernyms), replace=False))
                pool = sampled + sorted(hypernyms)
            ranked = self.rank_candidates(hyponym, pool)
            relevance = [1 if c in hypernyms else 0 for c in ranked]
            relevance_lists.append(relevance)
            hits_at_1.append(precision_at_k(relevance, 1))
        return {
            "map": mean_average_precision(relevance_lists),
            "mrr": mean_reciprocal_rank(relevance_lists),
            "p@1": float(np.mean(hits_at_1)),
        }
