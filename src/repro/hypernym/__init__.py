"""Hypernym discovery (Section 4.2, Algorithm 1, Table 3, Figure 9).

Two complementary methods organise primitive concepts into fine-grained
isA hierarchies:

- an unsupervised pattern-based miner (Hearst patterns plus the
  suffix-grammar rule: "XX pants" must be a kind of "pants");
- a supervised *projection learning* scorer (Eqs. 1-2) trained under an
  active-learning loop with the paper's UCS sampling strategy.
"""

from .patterns import HearstMiner, suffix_rule_pairs
from .dataset import HypernymDataset, build_dataset
from .projection import ProjectionModel
from .active import ActiveLearner, ActiveLearningResult, STRATEGIES

__all__ = [
    "HearstMiner", "suffix_rule_pairs",
    "HypernymDataset", "build_dataset",
    "ProjectionModel",
    "ActiveLearner", "ActiveLearningResult", "STRATEGIES",
]
