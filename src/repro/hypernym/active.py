"""Active learning for hypernym discovery (Algorithm 1, Table 3, Fig 9).

Implements the paper's UCS (uncertainty and high-confidence sampling)
strategy alongside the baselines it is compared against:

- ``random`` — no active learning: draw the next batch at random;
- ``us`` — classical uncertainty sampling (scores nearest 0.5);
- ``cs`` — confidence sampling (highest scores only);
- ``ucs`` — α·K most uncertain plus (1-α)·K most confident, the paper's
  strategy: confident *negatives mistaken as positives* (siblings,
  same_as-like pairs) get corrected early.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import DataError
from ..utils.rng import spawn_rng
from .dataset import HypernymDataset, Pair
from .projection import PhraseEmbedder, ProjectionModel

LabelFn = Callable[[str, str], bool]

STRATEGIES = ("random", "us", "cs", "ucs")


@dataclass
class ActiveLearningResult:
    """Trace of one active-learning run.

    Attributes:
        strategy: Sampling strategy name.
        history: (labels used so far, test MAP) after each iteration.
        best_map: Best test MAP seen.
        labels_used: Total labels consumed when the loop stopped.
    """

    strategy: str
    history: list[tuple[int, float]] = field(default_factory=list)
    best_map: float = 0.0
    labels_used: int = 0

    def labels_to_reach(self, target_map: float) -> int | None:
        """Fewest labels at which MAP first reached ``target_map``."""
        for labels, map_score in self.history:
            if map_score >= target_map:
                return labels
        return None


class ActiveLearner:
    """Runs Algorithm 1 over an unlabeled pool.

    Args:
        embedder: Phrase embedder shared by all trained models.
        dim: Embedding dimension.
        label_fn: The annotator (oracle) answering isA questions.
        dataset: Provides the fixed test split for MAP evaluation.
        k_per_iteration: Labels requested per iteration (paper: 25k).
        alpha: UCS mixing weight (uncertain share).
        patience: Stop after this many iterations without MAP improvement.
        seed: Seed for sampling and model init.
    """

    def __init__(self, embedder: PhraseEmbedder, dim: int, label_fn: LabelFn,
                 dataset: HypernymDataset, k_per_iteration: int = 40,
                 alpha: float = 0.5, patience: int = 2, seed: int = 0,
                 epochs: int = 15, k_layers: int = 4, n_models: int = 2):
        if not 0.0 <= alpha <= 1.0:
            raise DataError(f"alpha must be in [0, 1], got {alpha}")
        self.embedder = embedder
        self.dim = dim
        self.label_fn = label_fn
        self.dataset = dataset
        self.k = k_per_iteration
        self.alpha = alpha
        self.patience = patience
        self.seed = seed
        self.epochs = epochs
        self.k_layers = k_layers
        self.n_models = max(1, n_models)

    def run(self, pool: list[Pair], strategy: str,
            max_iterations: int = 8) -> ActiveLearningResult:
        """Execute the loop with one strategy.

        Raises:
            DataError: On an unknown strategy or empty pool.
        """
        if strategy not in STRATEGIES:
            raise DataError(f"unknown strategy {strategy!r}; "
                            f"expected one of {STRATEGIES}")
        if not pool:
            raise DataError("empty unlabeled pool")
        rng = spawn_rng(self.seed, "active", strategy)
        # The initial random batch (lines 3-7) is shared across strategies:
        # Algorithm 1 always starts from the same random D0.
        init_rng = spawn_rng(self.seed, "active-init")
        remaining = list(pool)
        init_rng.shuffle(remaining)
        labelled: list[tuple[str, str, int]] = []
        result = ActiveLearningResult(strategy=strategy)

        initial = remaining[:self.k]
        remaining = remaining[self.k:]
        labelled.extend(self._label(initial))
        models = self._train(labelled)
        best = self._evaluate(models, result, len(labelled))

        stale = 0
        iteration = 0
        while remaining and stale < self.patience and iteration < max_iterations:
            iteration += 1
            picked, remaining = self._select(models, remaining, strategy, rng)
            if not picked:
                break
            labelled.extend(self._label(picked))
            models = self._train(labelled)
            map_score = self._evaluate(models, result, len(labelled))
            if map_score > best + 1e-6:
                best = map_score
                stale = 0
            else:
                stale += 1
        result.best_map = best
        result.labels_used = len(labelled)
        return result

    # ----------------------------------------------------------------- steps
    def _label(self, pairs: list[Pair]) -> list[tuple[str, str, int]]:
        return [(a, b, int(self.label_fn(a, b))) for a, b in pairs]

    def _train(self, labelled: list[tuple[str, str, int]]) -> list[ProjectionModel]:
        """Train a small ensemble; averaging its scores cuts the variance
        that would otherwise swamp strategy differences at tiny scale.
        Seeds are fixed across iterations and strategies, so MAP differences
        come from WHICH pairs were labelled, not from training noise."""
        models = []
        for member in range(self.n_models):
            model = ProjectionModel(self.embedder, self.dim,
                                    k_layers=self.k_layers,
                                    seed=self.seed + 101 * member)
            model.fit(labelled, epochs=self.epochs,
                      seed=self.seed + 101 * member)
            models.append(model)
        return models

    def _ensemble_scores(self, models: list[ProjectionModel],
                         pairs: list[Pair]) -> np.ndarray:
        return np.mean([model.scores(pairs) for model in models], axis=0)

    def _evaluate(self, models: list[ProjectionModel],
                  result: ActiveLearningResult, labels_used: int) -> float:
        gold = self.dataset.test_gold()
        rng = spawn_rng(self.seed, "al-eval")
        from ..utils.metrics import mean_average_precision
        relevance_lists = []
        for hyponym, hypernyms in sorted(gold.items()):
            pool = [c for c in self.dataset.candidate_pool if c != hyponym]
            if len(pool) > 150:
                sampled = list(rng.choice(
                    [c for c in pool if c not in hypernyms],
                    size=150 - len(hypernyms), replace=False))
                pool = sampled + sorted(hypernyms)
            scores = self._ensemble_scores(models,
                                           [(hyponym, c) for c in pool])
            order = np.argsort(-scores, kind="mergesort")
            relevance_lists.append(
                [1 if pool[i] in hypernyms else 0 for i in order])
        map_score = mean_average_precision(relevance_lists)
        result.history.append((labels_used, map_score))
        return map_score

    def _select(self, models: list[ProjectionModel], remaining: list[Pair],
                strategy: str,
                rng: np.random.Generator) -> tuple[list[Pair], list[Pair]]:
        k = min(self.k, len(remaining))
        if strategy == "random":
            indices = rng.choice(len(remaining), size=k, replace=False)
            picked_set = set(int(i) for i in indices)
        else:
            scores = self._ensemble_scores(models, remaining)
            if strategy == "us":
                # Line 9: p_i = |S_i - 0.5| / 0.5 — smallest is most uncertain.
                uncertainty = np.abs(scores - 0.5)
                picked_set = set(np.argsort(uncertainty)[:k].tolist())
            elif strategy == "cs":
                picked_set = set(np.argsort(-scores)[:k].tolist())
            else:  # ucs — line 10: Top(p, αK) ∪ Bottom(p, (1-α)K)
                n_uncertain = int(round(self.alpha * k))
                uncertainty = np.abs(scores - 0.5)
                by_uncertainty = np.argsort(uncertainty).tolist()
                by_confidence = np.argsort(-scores).tolist()
                picked_set = set(by_uncertainty[:n_uncertain])
                for index in by_confidence:
                    if len(picked_set) >= k:
                        break
                    picked_set.add(index)
        picked = [remaining[i] for i in sorted(picked_set)]
        rest = [pair for i, pair in enumerate(remaining)
                if i not in picked_set]
        return picked, rest
