"""Pattern-based hypernym discovery (Section 4.2.1).

Hearst patterns over corpus text ("Y such as X", "X is a kind of Y"), plus
the grammar rule the paper uses for Chinese — "XX裤 (XX pants) must be a
裤 (pants)" — which in our English world becomes: a multi-word category
surface whose last word(s) form a known category surface is a hyponym of
that surface.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def suffix_rule_pairs(surfaces: Iterable[str]) -> list[tuple[str, str]]:
    """Hypernym pairs from the suffix grammar rule.

    "trench coat" yields ("trench coat", "coat") when "coat" is itself a
    known surface.  Longer suffixes win over shorter ones.
    """
    surface_set = set(surfaces)
    pairs: list[tuple[str, str]] = []
    for surface in surface_set:
        words = surface.split()
        if len(words) < 2:
            continue
        for start in range(1, len(words)):
            suffix = " ".join(words[start:])
            if suffix in surface_set:
                pairs.append((surface, suffix))
                break
    return sorted(pairs)


class HearstMiner:
    """Scans tokenised sentences for hyponym-hypernym patterns.

    Known patterns (with X the hyponym and Y the hypernym):

    - ``X is a kind of Y`` / ``X is a type of Y``
    - ``every X is a Y``
    - ``Y such as X`` / ``Y such as X and X2``

    Args:
        vocabulary: Candidate concept surfaces (multi-word allowed); only
            spans present in it are reported, which is the usual filter
            against noisy matches.
        max_phrase_length: Longest surface to consider (in words).
    """

    def __init__(self, vocabulary: Iterable[str], max_phrase_length: int = 3):
        self._vocab = set(vocabulary)
        self._max_len = max_phrase_length

    def _longest_match_at(self, tokens: Sequence[str], start: int,
                          backwards: bool = False) -> str | None:
        """Longest vocabulary phrase starting (or ending) at a position."""
        best: str | None = None
        for length in range(1, self._max_len + 1):
            if backwards:
                lo, hi = start - length + 1, start + 1
                if lo < 0:
                    break
            else:
                lo, hi = start, start + length
                if hi > len(tokens):
                    break
            phrase = " ".join(tokens[lo:hi])
            if phrase in self._vocab:
                best = phrase
        return best

    def mine(self, sentences: Iterable[Sequence[str]]) -> list[tuple[str, str]]:
        """Return distinct (hyponym, hypernym) pairs found in the corpus."""
        found: dict[tuple[str, str], None] = {}
        for tokens in sentences:
            tokens = list(tokens)
            for pair in self._match_kind_of(tokens):
                found.setdefault(pair)
            for pair in self._match_every_is_a(tokens):
                found.setdefault(pair)
            for pair in self._match_such_as(tokens):
                found.setdefault(pair)
        return list(found)

    def _match_kind_of(self, tokens: list[str]) -> list[tuple[str, str]]:
        pairs = []
        for i in range(len(tokens) - 4):
            if tokens[i:i + 4] == ["is", "a", "kind", "of"] or \
                    tokens[i:i + 4] == ["is", "a", "type", "of"]:
                hyponym = self._longest_match_at(tokens, i - 1, backwards=True)
                hypernym = self._longest_match_at(tokens, i + 4)
                if hyponym and hypernym and hyponym != hypernym:
                    pairs.append((hyponym, hypernym))
        return pairs

    def _match_every_is_a(self, tokens: list[str]) -> list[tuple[str, str]]:
        pairs = []
        if not tokens or tokens[0] != "every":
            return pairs
        for i in range(1, len(tokens) - 2):
            if tokens[i] == "is" and tokens[i + 1] == "a":
                hyponym = self._longest_match_at(tokens, i - 1, backwards=True)
                hypernym = self._longest_match_at(tokens, i + 2)
                if hyponym and hypernym and hyponym != hypernym:
                    pairs.append((hyponym, hypernym))
        return pairs

    def _match_such_as(self, tokens: list[str]) -> list[tuple[str, str]]:
        pairs = []
        for i in range(len(tokens) - 2):
            if tokens[i + 1] == "such" and tokens[i + 2] == "as":
                hypernym = self._longest_match_at(tokens, i, backwards=True)
                if not hypernym:
                    continue
                position = i + 3
                while position < len(tokens):
                    hyponym = self._longest_match_at(tokens, position)
                    if hyponym and hyponym != hypernym:
                        pairs.append((hyponym, hypernym))
                        position += len(hyponym.split())
                        if position < len(tokens) and tokens[position] == "and":
                            position += 1
                            continue
                    break
        return pairs
