"""Retrieval-then-verify candidate generation for matching (Section 6).

At Alibaba scale nobody scores every (concept, item) pair with a deep
model: a cheap first-stage retriever proposes top candidates per concept
and only those reach the matcher.  This module provides that first stage
— historically BM25-only (:class:`BM25CandidateGenerator`), now a facade
(:class:`CandidateGenerator`) over the pluggable backends of
:mod:`repro.retrieval`:

- ``"bm25"`` — the lexical inverted index (semantic drift is its known
  failure mode: "mid-autumn festival gifts" never mentions moon cakes);
- ``"dense"`` — an ANN index over a vector-capable matcher's doc
  embeddings (:class:`~repro.retrieval.ivf.IVFIndex` and friends), which
  bridges drift but can miss exact lexical pins;
- ``"hybrid"`` — both arms fused with Reciprocal Rank Fusion
  (:class:`~repro.retrieval.fusion.HybridRetriever`).

The evaluation the paper's deployment story implies is candidate
*recall* (:func:`retrieval_recall`): the fraction of truly matching
items that survive the retrieval cut — anything lost here is
unrecoverable downstream.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigError, DataError
from ..retrieval import (
    DEFAULT_RRF_K,
    BM25Retriever,
    HybridQuery,
    HybridRetriever,
    make_dense_index,
)
from ..synth.items import SynthItem
from .base import NeuralMatcher
from .bm25 import BM25Index
from .dataset import MatchingDataset

#: First-stage strategies accepted by :class:`CandidateGenerator`.
RETRIEVER_MODES = ("bm25", "dense", "hybrid")


def require_dense_capable(matcher, context: str) -> NeuralMatcher:
    """The matcher, checked to expose dense retrieval vectors.

    Raises:
        ConfigError: When ``matcher`` is absent or does not declare
            ``dense_vectors`` (interaction-style matchers have no flat
            single-side embedding to index).
    """
    if matcher is None:
        raise ConfigError(
            f"{context} needs a vector-capable matcher to embed documents; "
            "pass one (e.g. a trained DSSMMatcher)"
        )
    if not getattr(matcher, "dense_vectors", False):
        raise ConfigError(
            f"{context} needs a matcher with dense_vectors=True "
            f"(query_vector/doc_vector); {type(matcher).__name__} scores "
            "pairs jointly and has no single-side embedding"
        )
    return matcher


class BM25CandidateGenerator:
    """Top-k item candidate generation for a concept query (lexical only).

    Kept as the zero-dependency baseline generator; the pluggable
    :class:`CandidateGenerator` facade generalises it to dense and hybrid
    first stages.

    Args:
        k1 / b: BM25 parameters, forwarded to the index.
    """

    def __init__(self, k1: float = 1.5, b: float = 0.75):
        self._k1 = k1
        self._b = b
        self._index = BM25Index(k1=k1, b=b)
        self._items: dict[int, SynthItem] = {}

    def fit(self, items: Sequence[SynthItem]) -> "BM25CandidateGenerator":
        """Index a catalog by item title.

        Refitting replaces the previous catalog wholesale: both the item
        map and the index are rebuilt from scratch first, so a smaller
        refit can never serve candidates left over from a larger earlier
        fit (and a failed refit cannot leave a half-updated generator).
        """
        if not items:
            raise DataError("candidate generator needs at least one item")
        self._items = {}
        self._index = BM25Index(k1=self._k1, b=self._b)
        self._items = {item.index: item for item in items}
        self._index.fit({item.index: item.title_tokens
                         for item in self._items.values()})
        return self

    def candidates(self, query_tokens: Sequence[str],
                   k: int = 50) -> list[tuple[SynthItem, float]]:
        """The ``k`` best-matching (item, score) pairs, best first."""
        return [(self._items[index], score)
                for index, score in self._index.top_k(query_tokens, k)]


class CandidateGenerator:
    """First-stage item retrieval for a concept query, any backend.

    The facade fits one of the :mod:`repro.retrieval` backends over a
    catalog's titles and answers ``candidates(query_tokens, k)`` with the
    same (item, score) shape as :class:`BM25CandidateGenerator` —
    drop-in for :func:`retrieval_recall` and the serving pool builders.

    Args:
        retriever: ``"bm25"``, ``"dense"``, or ``"hybrid"``.
        matcher: A vector-capable matcher (``dense_vectors = True``)
            supplying ``doc_vector`` (fit time) and ``query_vector``
            (query time).  Required for dense and hybrid modes.
        dense_backend: :data:`~repro.retrieval.DENSE_BACKENDS` name for
            the dense arm (``"bruteforce"``, ``"ivf"``, ``"hnsw"``).
        rrf_k: Reciprocal Rank Fusion constant (hybrid mode).
        weights: (dense, lexical) RRF arm weights (hybrid mode).
        k1 / b: BM25 parameters for the lexical arm.
        dense_kwargs: Extra constructor arguments for the dense backend
            (e.g. ``nprobe`` for IVF, ``ef_search`` for HNSW).

    Raises:
        ConfigError: On an unknown mode, or a dense/hybrid mode without a
            vector-capable matcher.
    """

    def __init__(
        self,
        retriever: str = "bm25",
        *,
        matcher: NeuralMatcher | None = None,
        dense_backend: str = "bruteforce",
        rrf_k: int = DEFAULT_RRF_K,
        weights: Sequence[float] = (1.0, 1.0),
        k1: float = 1.5,
        b: float = 0.75,
        **dense_kwargs,
    ):
        if retriever not in RETRIEVER_MODES:
            expected = ", ".join(repr(mode) for mode in RETRIEVER_MODES)
            raise ConfigError(
                f"unknown retriever mode {retriever!r}; expected one of: {expected}"
            )
        self.retriever = retriever
        self._matcher = None
        if retriever == "bm25":
            self._backend = BM25Retriever(k1=k1, b=b)
        else:
            self._matcher = require_dense_capable(
                matcher, f"retriever mode {retriever!r}"
            )
            dense = make_dense_index(dense_backend, **dense_kwargs)
            if retriever == "dense":
                self._backend = dense
            else:
                self._backend = HybridRetriever(
                    dense=dense,
                    lexical=BM25Retriever(k1=k1, b=b),
                    rrf_k=rrf_k,
                    weights=weights,
                )
        self._items: dict[int, SynthItem] = {}

    def fit(self, items: Sequence[SynthItem]) -> "CandidateGenerator":
        """Index a catalog by item title (titles embedded for dense arms).

        Like :meth:`BM25CandidateGenerator.fit`, a refit rebuilds from
        scratch — stale items from a previous catalog cannot survive.
        """
        if not items:
            raise DataError("candidate generator needs at least one item")
        self._items = {item.index: item for item in items}
        catalog = list(self._items.values())
        ids = [item.index for item in catalog]
        if self.retriever == "bm25":
            self._backend.fit(ids, [item.title_tokens for item in catalog])
        elif self.retriever == "dense":
            self._backend.fit(
                ids,
                [self._matcher.doc_vector(item.title_tokens) for item in catalog],
            )
        else:
            self._backend.fit(
                ids,
                [
                    (self._matcher.doc_vector(item.title_tokens),
                     item.title_tokens)
                    for item in catalog
                ],
            )
        return self

    def candidates(self, query_tokens: Sequence[str],
                   k: int = 50) -> list[tuple[SynthItem, float]]:
        """The ``k`` best-matching (item, score) pairs, best first.

        Scores are backend-native (BM25 mass, cosine, or fused RRF mass)
        — comparable within one generator, not across modes.
        """
        if self.retriever == "bm25":
            ranked = self._backend.retrieve(query_tokens, k)
        elif self.retriever == "dense":
            ranked = self._backend.retrieve(
                self._matcher.query_vector(query_tokens), k
            )
        else:
            ranked = self._backend.retrieve(
                HybridQuery(
                    tokens=tuple(query_tokens),
                    vector=self._matcher.query_vector(query_tokens),
                ),
                k,
            )
        return [(self._items[index], score) for index, score in ranked]

    def stats(self):
        """The backend's work counters (:class:`~repro.retrieval.RetrieverStats`)."""
        return self._backend.stats()


def retrieval_recall(generator, dataset: MatchingDataset, k: int = 50) -> float:
    """Candidate recall of a generator on the dataset's test split.

    For each test concept, retrieve ``k`` candidate items and measure the
    fraction of oracle-positive items recovered; returns the mean over
    concepts.  This is the ceiling any downstream matcher can reach in a
    retrieval-then-verify pipeline.  ``generator`` is anything with a
    ``candidates(query_tokens, k)`` method — both generator classes here
    and any future facade mode qualify, which is how the benchmark
    compares BM25, dense, and hybrid first stages on equal footing.
    """
    if not dataset.test_by_concept:
        raise DataError("dataset has no per-concept test pools")
    recalls: list[float] = []
    for examples in dataset.test_by_concept.values():
        positives = {example.item.index
                     for example in examples if example.label == 1}
        if not positives:
            continue
        retrieved = {item.index for item, _ in generator.candidates(
            examples[0].concept.tokens, k)}
        recalls.append(len(positives & retrieved) / len(positives))
    if not recalls:
        raise DataError("no test concept has positive examples")
    return sum(recalls) / len(recalls)
