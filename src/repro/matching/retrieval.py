"""Retrieval-then-verify candidate generation for matching (Section 6).

At Alibaba scale nobody scores every (concept, item) pair with a deep
model: a cheap lexical retriever proposes top candidates per concept and
only those reach the matcher.  This module provides that first stage on
top of :class:`~repro.matching.bm25.BM25Index` plus the evaluation the
paper's deployment story implies — candidate *recall*: the fraction of
truly matching items that survive the retrieval cut (anything lost here
is unrecoverable downstream, semantic drift being the failure mode BM25
is expected to show).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import DataError
from ..synth.items import SynthItem
from .bm25 import BM25Index
from .dataset import MatchingDataset


class BM25CandidateGenerator:
    """Top-k item candidate generation for a concept query.

    Args:
        k1 / b: BM25 parameters, forwarded to the index.
    """

    def __init__(self, k1: float = 1.5, b: float = 0.75):
        self._index = BM25Index(k1=k1, b=b)
        self._items: dict[int, SynthItem] = {}

    def fit(self, items: Sequence[SynthItem]) -> "BM25CandidateGenerator":
        """Index a catalog by item title."""
        if not items:
            raise DataError("candidate generator needs at least one item")
        self._items = {item.index: item for item in items}
        self._index.fit({item.index: item.title_tokens
                         for item in self._items.values()})
        return self

    def candidates(self, query_tokens: Sequence[str],
                   k: int = 50) -> list[tuple[SynthItem, float]]:
        """The ``k`` best-matching (item, score) pairs, best first."""
        return [(self._items[index], score)
                for index, score in self._index.top_k(query_tokens, k)]


def retrieval_recall(generator: BM25CandidateGenerator,
                     dataset: MatchingDataset, k: int = 50) -> float:
    """Candidate recall of the generator on the dataset's test split.

    For each test concept, retrieve ``k`` candidate items and measure the
    fraction of oracle-positive items recovered; returns the mean over
    concepts.  This is the ceiling any downstream matcher can reach in a
    retrieval-then-verify pipeline.
    """
    if not dataset.test_by_concept:
        raise DataError("dataset has no per-concept test pools")
    recalls: list[float] = []
    for examples in dataset.test_by_concept.values():
        positives = {example.item.index
                     for example in examples if example.label == 1}
        if not positives:
            continue
        retrieved = {item.index for item, _ in generator.candidates(
            examples[0].concept.tokens, k)}
        recalls.append(len(positives & retrieved) / len(positives))
    if not recalls:
        raise DataError("no test concept has positive examples")
    return sum(recalls) / len(recalls)
