"""RE2 baseline [31] (Table 6).

"Simple and Effective Text Matching with Richer Alignment Features":
embeddings are aligned across the two texts with soft attention, fused
with elementwise comparison features, pooled, and scored.  This is a
compact single-block rendition of the architecture.
"""

from __future__ import annotations

import numpy as np

from ..ml import Linear, MLP
from ..ml.tensor import Tensor, concat
from ..nlp.vocab import Vocab
from .base import NeuralMatcher
from .dataset import MatchingExample


class RE2Matcher(NeuralMatcher):
    """Alignment-and-fusion matcher.

    Args:
        vocab: Shared vocabulary.
        dim: Embedding width.
        hidden: Fusion width.
        seed: Weight-init seed.
    """

    def __init__(self, vocab: Vocab, dim: int = 16, hidden: int = 16,
                 seed: int = 0, pretrained: np.ndarray | None = None):
        super().__init__(vocab, dim, seed, "re2", pretrained)
        # Fusion of [x, aligned, x - aligned, x * aligned].
        self.fuse_concept = Linear(4 * dim, hidden, self.rng)
        self.fuse_title = Linear(4 * dim, hidden, self.rng)
        self.head = MLP([4 * hidden, hidden, 1], self.rng, activation="relu")

    @staticmethod
    def _align(a: Tensor, b: Tensor) -> Tensor:
        """Soft-align each row of ``a`` against all rows of ``b``."""
        scores = a @ b.transpose()          # (m, l)
        weights = scores.softmax(axis=1)
        return weights @ b                  # (m, d)

    def _side(self, x: Tensor, other: Tensor, fuse: Linear) -> Tensor:
        aligned = self._align(x, other)
        features = concat([x, aligned, x - aligned, x * aligned], axis=1)
        fused = fuse(features).relu()       # (tokens, hidden)
        return fused.max(axis=0)            # (hidden,)

    def logit(self, example: MatchingExample) -> Tensor:
        concept = self._embed(example.concept.tokens)[0]
        title = self._embed(example.item.title_tokens)[0]
        concept_vector = self._side(concept, title, self.fuse_concept)
        title_vector = self._side(title, concept, self.fuse_title)
        combined = concat([concept_vector, title_vector,
                           concept_vector * title_vector,
                           concept_vector - title_vector], axis=0)
        return self.head(combined).reshape(())
