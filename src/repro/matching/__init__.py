"""Concept-item semantic matching (Section 6, Figure 8, Table 6).

Associates e-commerce concepts with catalog items.  The paper's model is a
knowledge-aware deep semantic matcher; it is evaluated against BM25, DSSM,
MatchPyramid and RE2 — all implemented here on the shared
:class:`MatchingDataset` interface.
"""

from .dataset import MatchingDataset, MatchingExample, build_matching_dataset
from .bm25 import BM25Index, BM25Matcher
from .dssm import DSSMMatcher
from .match_pyramid import MatchPyramidMatcher
from .re2 import RE2Matcher
from .knowledge_model import KnowledgeMatcher
from .retrieval import (
    BM25CandidateGenerator,
    CandidateGenerator,
    RETRIEVER_MODES,
    require_dense_capable,
    retrieval_recall,
)
from .trainer import evaluate_matcher, train_matcher

__all__ = [
    "MatchingDataset", "MatchingExample", "build_matching_dataset",
    "BM25Index", "BM25Matcher", "DSSMMatcher", "MatchPyramidMatcher",
    "RE2Matcher", "KnowledgeMatcher", "BM25CandidateGenerator",
    "CandidateGenerator", "RETRIEVER_MODES", "require_dense_capable",
    "retrieval_recall", "evaluate_matcher", "train_matcher",
]
