"""DSSM baseline [13] (Table 6).

Two independent towers project mean-pooled text embeddings into a shared
semantic space; relevance is the (scaled) cosine between the two vectors.
"""

from __future__ import annotations

import numpy as np

from ..ml import MLP
from ..ml.module import Parameter
from ..ml.tensor import Tensor
from ..nlp.vocab import Vocab
from .base import NeuralMatcher
from .dataset import MatchingExample


class DSSMMatcher(NeuralMatcher):
    """Deep Structured Semantic Model.

    Args:
        vocab: Shared vocabulary.
        dim: Embedding width.
        hidden: Tower hidden width.
        seed: Weight-init seed.
    """

    def __init__(self, vocab: Vocab, dim: int = 16, hidden: int = 16,
                 seed: int = 0, pretrained: np.ndarray | None = None):
        super().__init__(vocab, dim, seed, "dssm", pretrained)
        self.query_tower = MLP([dim, hidden, hidden], self.rng,
                               activation="tanh")
        self.title_tower = MLP([dim, hidden, hidden], self.rng,
                               activation="tanh")
        # Learned cosine scale/offset turning similarity into a logit.
        self.scale = Parameter(np.array([4.0]))
        self.offset = Parameter(np.array([0.0]))

    def _tower(self, tokens, tower) -> Tensor:
        pooled = self._embed(tokens).mean(axis=1)[0]
        return tower(pooled)

    def logit(self, example: MatchingExample) -> Tensor:
        query = self._tower(example.concept.tokens, self.query_tower)
        title = self._tower(example.item.title_tokens, self.title_tower)
        dot = (query * title).sum()
        norm = ((query * query).sum() ** 0.5) * ((title * title).sum() ** 0.5)
        cosine = dot / (norm + 1e-8)
        return (cosine * self.scale + self.offset).reshape(())
