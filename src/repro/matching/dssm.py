"""DSSM baseline [13] (Table 6).

Two independent towers project mean-pooled text embeddings into a shared
semantic space; relevance is the (scaled) cosine between the two vectors.
"""

from __future__ import annotations

import numpy as np

from ..ml import MLP
from ..ml.module import Parameter
from ..ml.tensor import Tensor
from ..nlp.vocab import Vocab
from .base import NeuralMatcher
from .dataset import MatchingExample


class DSSMMatcher(NeuralMatcher):
    """Deep Structured Semantic Model.

    Args:
        vocab: Shared vocabulary.
        dim: Embedding width.
        hidden: Tower hidden width.
        seed: Weight-init seed.
    """

    fast_path = True
    dense_vectors = True

    def __init__(self, vocab: Vocab, dim: int = 16, hidden: int = 16,
                 seed: int = 0, pretrained: np.ndarray | None = None):
        super().__init__(vocab, dim, seed, "dssm", pretrained)
        self.query_tower = MLP([dim, hidden, hidden], self.rng,
                               activation="tanh")
        self.title_tower = MLP([dim, hidden, hidden], self.rng,
                               activation="tanh")
        # Learned cosine scale/offset turning similarity into a logit.
        self.scale = Parameter(np.array([4.0]))
        self.offset = Parameter(np.array([0.0]))

    def _tower(self, tokens, tower) -> Tensor:
        pooled = self._embed(tokens).mean(axis=1)[0]
        return tower(pooled)

    def logit(self, example: MatchingExample) -> Tensor:
        query = self._tower(example.concept.tokens, self.query_tower)
        title = self._tower(example.item.title_tokens, self.title_tower)
        dot = (query * title).sum()
        norm = ((query * query).sum() ** 0.5) * ((title * title).sum() ** 0.5)
        cosine = dot / (norm + 1e-8)
        return (cosine * self.scale + self.offset).reshape(())

    # -------------------------------------------------- inference fast path
    def _tower_array(self, tokens, name: str) -> tuple[np.ndarray, float]:
        """Functional tower forward: ``(vector, vector_norm)``.

        Mirrors :meth:`_tower`'s taped arithmetic — mean pooling computed
        as ``sum * (1/T)`` exactly like ``Tensor.mean`` — so fast-path
        cosines match the oracle bit for bit.
        """
        session = self.inference_session()
        embedded = session.embed("embedding.weight", self._token_ids(tokens))
        pooled = embedded.sum(axis=0) * (1.0 / embedded.shape[0])
        vector = session.mlp(pooled, name, "tanh")
        return vector, float((vector * vector).sum() ** 0.5)

    def encode_query(self, query_tokens) -> tuple[np.ndarray, float]:
        return self._tower_array(query_tokens, "query_tower")

    def encode_doc(self, doc_tokens) -> tuple[np.ndarray, float]:
        return self._tower_array(doc_tokens, "title_tower")

    def query_vector(self, query_tokens) -> np.ndarray:
        """Query-tower embedding; cosine against :meth:`doc_vector` is the
        similarity the matcher itself ranks by, so a cosine ANN index over
        doc vectors is a faithful first stage for this model."""
        return self.encode_query(query_tokens)[0]

    def doc_vector(self, doc_tokens, encoding=None) -> np.ndarray:
        state = encoding if encoding is not None else self.encode_doc(doc_tokens)
        return state[0]

    def _pool_logits(self, query_state, doc_encodings) -> np.ndarray:
        query, query_norm = query_state
        scale = self.scale.data
        offset = self.offset.data
        logits = np.empty(len(doc_encodings))
        for i, (title, title_norm) in enumerate(doc_encodings):
            dot = (query * title).sum()
            cosine = dot / (query_norm * title_norm + 1e-8)
            logits[i] = (cosine * scale + offset)[0]
        return logits
