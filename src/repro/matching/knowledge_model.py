"""The paper's knowledge-aware deep semantic matching model (Figure 8).

Both sides get word + POS + NER embeddings through wide CNN encoders
(Eqs. 9-10).  A two-way additive attention matrix (Eq. 11) produces
per-word weights (Eqs. 12-13) and attention-pooled concept/item vectors
(Eq. 14).  The knowledge branch extends the concept side with gloss
Doc2vec vectors (Eq. 15) and the class-label ids of the linked primitive
concepts, then builds a K-layer matching pyramid against the title
(Eq. 16) whose pooled layers are merged by an MLP (Eq. 17).  The final
score is an MLP over [c; i; ci] (Eq. 18).

``Ours`` in Table 6 is this model with ``knowledge_lookup=None``;
``Ours + Knowledge`` passes the gloss lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..ml import Conv1d, Linear, MLP
from ..ml.inference import additive_attention_pool
from ..ml.module import Parameter
from ..ml.tensor import Tensor, concat
from ..nlp.pos import PosTagger
from ..nlp.vocab import Vocab
from .base import NeuralMatcher
from .dataset import MatchingExample
from .match_pyramid import _grid_bounds

KnowledgeLookup = Callable[[str], np.ndarray | None]
NerLookup = Callable[[str], int]

#: Cap on the per-matcher token -> (pos_id, ner_id) memo.  POS tagging and
#: NER lookup are pure functions of the token, so entries never need
#: invalidating; the bound only guards against unbounded vocabulary drift.
_FEATURE_CACHE_LIMIT = 65536

#: Domains used as class-label ids on the concept side (Fig 8 "Lookup
#: Primitive Concepts").
_DOMAIN_IDS = {domain: i for i, domain in enumerate((
    "Category", "Brand", "Color", "Design", "Function", "Material",
    "Pattern", "Shape", "Smell", "Taste", "Style", "Time", "Location", "IP",
    "Audience", "Event", "Nature", "Organization", "Quantity", "Modifier"))}


@dataclass
class _QueryEncoding:
    """Everything on the concept side that is independent of the title."""

    concept: np.ndarray            # CNN states, (m, conv_dim)
    left: np.ndarray               # att_w1 projection of those states
    knowledge: np.ndarray          # Eq. 15 sequence, (n, dim)
    pyramid_pre: list[np.ndarray]  # knowledge @ W_k per pyramid layer
    row_bounds: list[tuple[int, int]]


@dataclass
class _DocEncoding:
    """Everything on the title side, cacheable per frozen catalog entry."""

    title_raw: np.ndarray          # word embeddings, (t, dim)
    title: np.ndarray              # CNN states, (t, conv_dim)
    right: np.ndarray              # att_w2 projection of those states
    col_bounds: list[tuple[int, int]]


class KnowledgeMatcher(NeuralMatcher):
    """Figure 8, end to end.

    Args:
        vocab: Shared vocabulary.
        pos_tagger: POS feature channel.
        ner_lookup: Word -> NER label id.
        num_ner_labels: NER label-set size.
        knowledge_lookup: Word -> gloss vector; ``None`` disables the
            knowledge branch's gloss/class extensions ("Ours" row).
        knowledge_dim: Gloss-vector dimension.
        dim: Word-embedding width.
        conv_dim: CNN output channels.
        pyramid_layers: K of the matching pyramid.
        seed: Weight-init seed.
    """

    fast_path = True

    def __init__(self, vocab: Vocab, pos_tagger: PosTagger,
                 ner_lookup: NerLookup, num_ner_labels: int,
                 knowledge_lookup: KnowledgeLookup | None = None,
                 gloss_tokens: dict[str, list[str]] | None = None,
                 max_gloss_tokens: int = 6,
                 knowledge_dim: int = 16, dim: int = 16, conv_dim: int = 16,
                 pyramid_layers: int = 2, seed: int = 0,
                 pretrained: np.ndarray | None = None):
        super().__init__(vocab, dim, seed, "knowledge", pretrained)
        #: Raw gloss content words per concept word.  The paper encodes
        #: glosses with a production-grade Doc2vec; at laptop scale the
        #: compressed vector is weak, so the knowledge sequence of Eq. 15
        #: additionally carries the gloss words' own embeddings — the
        #: "moon cakes" tokens from the mid-autumn-festival gloss can then
        #: match the title directly inside the pyramid, which is exactly
        #: the paper's Section 7.6 case study.
        self._gloss_tokens = gloss_tokens or {}
        self.max_gloss_tokens = max_gloss_tokens
        rng = self.rng
        self.pos_tagger = pos_tagger
        self.ner_lookup = ner_lookup
        self._feature_id_cache: dict[str, tuple[int, int]] = {}
        self._feature_cache_limit = _FEATURE_CACHE_LIMIT
        self.use_knowledge = knowledge_lookup is not None
        self._knowledge = knowledge_lookup
        self.knowledge_dim = knowledge_dim
        pos_dim = 4
        ner_dim = 4
        input_dim = dim + pos_dim + ner_dim
        self.pos_embedding = ParameterTable(PosTagger.num_tags(), pos_dim, rng)
        self.ner_embedding = ParameterTable(num_ner_labels, ner_dim, rng)
        self.concept_cnn = Conv1d(input_dim, conv_dim, 3, rng)
        self.title_cnn = Conv1d(input_dim, conv_dim, 3, rng)
        # Eq. 11 parameters.
        self.att_w1 = Linear(conv_dim, conv_dim, rng, bias=False)
        self.att_w2 = Linear(conv_dim, conv_dim, rng, bias=False)
        self.att_v = Linear(conv_dim, 1, rng, bias=False)
        # Knowledge branch: project gloss vectors and class ids to dim.
        if self.use_knowledge:
            self.gloss_projection = Linear(knowledge_dim, dim, rng)
            self.class_embedding = ParameterTable(len(_DOMAIN_IDS) + 1, dim, rng)
        self.pyramid_layers = pyramid_layers
        self.pyramid_w = Parameter(rng.normal(0.0, 0.3,
                                              size=(pyramid_layers, dim, dim)))
        cells = 2 * 4
        self.pyramid_mlp = MLP([pyramid_layers * cells, 16, 8], rng,
                               activation="relu")
        # Eq. 18: MLP over [c; i; ci]; the elementwise product c*i is the
        # usual interaction feature matching heads carry.
        self.head = MLP([3 * conv_dim + 8, 16, 1], rng, activation="relu")

    # ------------------------------------------------------------- encoders
    def _feature_ids(self, tokens: Sequence[str]
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Per-token ``(pos_ids, ner_ids)``, memoized per token.

        POS tagging and the NER lookup are pure per-token functions, so
        one bounded dict (:data:`_FEATURE_CACHE_LIMIT` entries, never
        invalidated) replaces re-tagging every pair's tokens from
        scratch on the scoring hot path.
        """
        cache = self._feature_id_cache
        pos_ids = np.empty(len(tokens), dtype=np.intp)
        ner_ids = np.empty(len(tokens), dtype=np.intp)
        for i, token in enumerate(tokens):
            ids = cache.get(token)
            if ids is None:
                ids = (PosTagger.tag_id(self.pos_tagger.tag_word(token)),
                       int(self.ner_lookup(token)))
                if len(cache) < self._feature_cache_limit:
                    cache[token] = ids
            pos_ids[i] = ids[0]
            ner_ids[i] = ids[1]
        return pos_ids, ner_ids

    def _features(self, tokens) -> Tensor:
        """(1, T, dim+pos+ner) input features of one side."""
        word = self._embed(tokens)
        pos_ids, ner_ids = self._feature_ids(list(tokens))
        pos = self.pos_embedding(pos_ids).reshape(1, len(tokens), -1)
        ner = self.ner_embedding(ner_ids).reshape(1, len(tokens), -1)
        return concat([word, pos, ner], axis=2)

    def _attend(self, concept: Tensor, title: Tensor) -> tuple[Tensor, Tensor]:
        """Eqs. 11-14: attention matrix -> pooled vectors of both sides."""
        m, d = concept.shape
        t = title.shape[0]
        left = self.att_w1(concept).reshape(m, 1, d)
        right = self.att_w2(title).reshape(1, t, d)
        attention = self.att_v((left + right).tanh()).reshape(m, t)
        concept_weights = attention.sum(axis=1).softmax(axis=0)  # (m,)
        title_weights = attention.sum(axis=0).softmax(axis=0)    # (t,)
        concept_vector = concept_weights @ concept
        title_vector = title_weights @ title
        return concept_vector, title_vector

    def _knowledge_sequence(self, example: MatchingExample) -> Tensor:
        """The {w, k, cls} sequence of Eq. 15's surroundings, (n, dim)."""
        tokens = list(example.concept.tokens)
        pieces = [self._embed(tokens)[0]]
        if self.use_knowledge:
            gloss_vectors = []
            expansion: list[str] = []
            for token in tokens:
                vector = self._knowledge(token)
                if vector is None:
                    vector = np.zeros(self.knowledge_dim)
                gloss_vectors.append(np.asarray(vector, dtype=np.float64))
                for gloss_word in self._gloss_tokens.get(token, ()):
                    if gloss_word not in expansion and gloss_word not in tokens:
                        expansion.append(gloss_word)
            gloss = Tensor(np.stack(gloss_vectors))
            pieces.append(self.gloss_projection(gloss))
            if expansion:
                limit = self.max_gloss_tokens * len(tokens)
                pieces.append(self._embed(expansion[:limit])[0])
            class_ids = [_DOMAIN_IDS.get(part.domain, len(_DOMAIN_IDS))
                         for part in example.concept.parts]
            if class_ids:
                pieces.append(self.class_embedding(np.asarray(class_ids)))
        return concat(pieces, axis=0)

    def _pyramid(self, example: MatchingExample, title: Tensor) -> Tensor:
        """Eqs. 16-17: K matching matrices, grid-pooled and merged."""
        knowledge = self._knowledge_sequence(example)      # (n, dim)
        features = []
        n = knowledge.shape[0]
        t = title.shape[0]
        row_bounds = _grid_bounds(n, 2)
        col_bounds = _grid_bounds(t, 4)
        for k in range(self.pyramid_layers):
            matrix = (knowledge @ self.pyramid_w[k]) @ title.transpose()
            for row_start, row_stop in row_bounds:
                for col_start, col_stop in col_bounds:
                    block = matrix[row_start:row_stop, col_start:col_stop]
                    features.append(block.max(axis=0).max(axis=0).reshape(1))
        return self.pyramid_mlp(concat(features, axis=0))

    def logit(self, example: MatchingExample) -> Tensor:
        concept_tokens = list(example.concept.tokens)
        title_tokens = list(example.item.title_tokens)
        concept = self.concept_cnn(self._features(concept_tokens))[0]
        title_embedded_raw = self._embed(title_tokens)[0]
        title = self.title_cnn(self._features(title_tokens))[0]
        concept_vector, title_vector = self._attend(concept, title)
        pyramid_vector = self._pyramid(example, title_embedded_raw)
        combined = concat([concept_vector, title_vector,
                           concept_vector * title_vector, pyramid_vector],
                          axis=0)
        return self.head(combined).reshape(())

    # -------------------------------------------------- inference fast path
    def _features_array(self, tokens: list[str]) -> np.ndarray:
        """Functional mirror of :meth:`_features`, ``(T, dim+pos+ner)``."""
        session = self.inference_session()
        word = session.embed("embedding.weight", self._token_ids(tokens))
        pos_ids, ner_ids = self._feature_ids(tokens)
        pos = session.embed("pos_embedding", pos_ids)
        ner = session.embed("ner_embedding", ner_ids)
        return np.concatenate([word, pos, ner], axis=1)

    def _knowledge_array(self, tokens: list[str]) -> np.ndarray:
        """Functional mirror of :meth:`_knowledge_sequence` for raw text.

        Raw serving pairs carry no
        :class:`~repro.matching.dataset.ConceptText` parts
        (``pair_from_texts`` builds them with ``parts=()``), so the
        class-id extension is structurally absent here — exactly as it
        is in the taped path for the same input.
        """
        session = self.inference_session()
        pieces = [session.embed("embedding.weight", self._token_ids(tokens))]
        if self.use_knowledge:
            gloss_vectors = []
            expansion: list[str] = []
            for token in tokens:
                vector = self._knowledge(token)
                if vector is None:
                    vector = np.zeros(self.knowledge_dim)
                gloss_vectors.append(np.asarray(vector, dtype=np.float64))
                for gloss_word in self._gloss_tokens.get(token, ()):
                    if gloss_word not in expansion and gloss_word not in tokens:
                        expansion.append(gloss_word)
            pieces.append(session.linear(np.stack(gloss_vectors),
                                         "gloss_projection"))
            if expansion:
                limit = self.max_gloss_tokens * len(tokens)
                pieces.append(session.embed(
                    "embedding.weight", self._token_ids(expansion[:limit])))
        return np.concatenate(pieces, axis=0)

    def encode_query(self, query_tokens) -> _QueryEncoding:
        session = self.inference_session()
        tokens = list(query_tokens)
        concept = session.conv1d(self._features_array(tokens), "concept_cnn")
        knowledge = self._knowledge_array(tokens)
        pyramid_w = session.weight("pyramid_w")
        return _QueryEncoding(
            concept=concept,
            left=session.linear(concept, "att_w1"),
            knowledge=knowledge,
            pyramid_pre=[knowledge @ pyramid_w[k]
                         for k in range(self.pyramid_layers)],
            row_bounds=_grid_bounds(knowledge.shape[0], 2),
        )

    def encode_doc(self, doc_tokens) -> _DocEncoding:
        session = self.inference_session()
        tokens = list(doc_tokens)
        title_raw = session.embed("embedding.weight", self._token_ids(tokens))
        title = session.conv1d(self._features_array(tokens), "title_cnn")
        return _DocEncoding(
            title_raw=title_raw,
            title=title,
            right=session.linear(title, "att_w2"),
            col_bounds=_grid_bounds(title_raw.shape[0], 4),
        )

    def _pool_logits(self, query_state: _QueryEncoding,
                     doc_encodings) -> np.ndarray:
        session = self.inference_session()
        score_weight = session.weight("att_v.weight")
        cells = len(query_state.row_bounds) * 4
        pyramid_cells = np.empty(self.pyramid_layers * cells)
        logits = np.empty(len(doc_encodings))
        for i, doc in enumerate(doc_encodings):
            concept_vector, title_vector = additive_attention_pool(
                query_state.left, doc.right, score_weight,
                query_state.concept, doc.title)
            cell = 0
            for pre in query_state.pyramid_pre:
                matrix = pre @ doc.title_raw.T
                for row_start, row_stop in query_state.row_bounds:
                    for col_start, col_stop in doc.col_bounds:
                        pyramid_cells[cell] = matrix[
                            row_start:row_stop, col_start:col_stop].max()
                        cell += 1
            pyramid_vector = session.mlp(pyramid_cells, "pyramid_mlp", "relu")
            combined = np.concatenate([
                concept_vector, title_vector,
                concept_vector * title_vector, pyramid_vector])
            logits[i] = session.mlp(combined, "head", "relu")[0]
        return logits


class ParameterTable(Parameter):
    """A small embedding table usable as a plain Parameter.

    (Distinct from :class:`repro.ml.Embedding` so that Figure 8's auxiliary
    channels stay lightweight — no range validation, gather only.)
    """

    def __new__(cls, *args, **kwargs):  # Parameter defines no __new__; keep default
        return super().__new__(cls)

    def __init__(self, rows: int, dim: int, rng: np.random.Generator):
        super().__init__(rng.normal(0.0, 0.1, size=(rows, dim)))

    def __call__(self, ids: np.ndarray) -> Tensor:
        return self.gather_rows(np.asarray(ids))
