"""Matching dataset construction (Section 7.6).

Training positives come from click logs (the paper: "strong matching rules
and user click logs"); negatives from unclicked impressions and random
sampling.  The test set is oracle-labelled per concept — the paper sampled
400 concepts and had annotators label candidate pairs — and doubles as the
per-concept ranking pool for P@10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DataError
from ..synth.clicklog import ClickEvent
from ..synth.items import SynthItem, item_matches_concept
from ..synth.world import ConceptSpec, World


@dataclass(frozen=True)
class MatchingExample:
    """One (concept, item, label) pair."""

    concept: ConceptSpec
    item: SynthItem
    label: int


@dataclass(frozen=True)
class ConceptText:
    """Concept-side stand-in when only the text is known (serving traffic).

    Duck-types the slice of :class:`~repro.synth.world.ConceptSpec` the
    matchers read — ``tokens`` and ``parts`` — so a raw query can flow
    through ``logit`` without a ground-truth world behind it.
    """

    tokens: tuple[str, ...]
    parts: tuple = ()

    @property
    def text(self) -> str:
        return " ".join(self.tokens)


@dataclass(frozen=True)
class ItemText:
    """Item-side stand-in carrying only a title (serving traffic)."""

    title_tokens: tuple[str, ...]
    index: int = -1

    @property
    def title(self) -> str:
        return " ".join(self.title_tokens)


def pair_from_texts(query_tokens, title_tokens, label: int = 0
                    ) -> MatchingExample:
    """A scoreable example from two raw token sequences.

    The serving layer rescores BM25 candidates through this — no
    :class:`~repro.synth.world.World`, no click log, just text on both
    sides.
    """
    return MatchingExample(
        concept=ConceptText(tokens=tuple(query_tokens)),
        item=ItemText(title_tokens=tuple(title_tokens)),
        label=label)


@dataclass
class MatchingDataset:
    """Train pairs plus a grouped test set for ranking metrics.

    Attributes:
        train: Click-derived training pairs.
        test: Oracle-labelled pairs (balanced-ish).
        test_by_concept: concept text -> examples, for P@10.
    """

    train: list[MatchingExample] = field(default_factory=list)
    test: list[MatchingExample] = field(default_factory=list)
    test_by_concept: dict[str, list[MatchingExample]] = field(
        default_factory=dict)


def build_matching_dataset(world: World, concepts: list[ConceptSpec],
                           items: list[SynthItem], clicks: list[ClickEvent],
                           rng: np.random.Generator,
                           test_concepts: int = 30,
                           candidates_per_test_concept: int = 30,
                           extra_random_negatives: int = 200) -> MatchingDataset:
    """Assemble the dataset.

    Test concepts are held out from training entirely so the evaluation
    measures generalisation to unseen scenarios.

    Raises:
        DataError: If there are no good concepts or no clicks.
    """
    good = [c for c in concepts if c.good]
    if not good:
        raise DataError("no good concepts to build a matching dataset from")
    if not clicks:
        raise DataError("empty click log")
    rng.shuffle(good)
    test_specs = good[:min(test_concepts, max(1, len(good) // 3))]
    test_texts = {spec.text for spec in test_specs}

    dataset = MatchingDataset()
    seen: set[tuple[str, int, int]] = set()
    for event in clicks:
        spec = concepts[event.concept_index]
        if spec.text in test_texts:
            continue
        label = int(event.clicked)
        key = (spec.text, event.item_index, label)
        if key in seen:
            continue
        seen.add(key)
        dataset.train.append(MatchingExample(spec, items[event.item_index],
                                             label))
    train_specs = [c for c in good if c.text not in test_texts]
    for _ in range(extra_random_negatives):
        spec = train_specs[int(rng.integers(len(train_specs)))]
        item = items[int(rng.integers(len(items)))]
        label = int(item_matches_concept(world, item, spec))
        if label == 0:
            dataset.train.append(MatchingExample(spec, item, 0))

    for spec in test_specs:
        examples = _test_candidates(world, spec, items, rng,
                                    candidates_per_test_concept)
        if not examples:
            continue
        dataset.test.extend(examples)
        dataset.test_by_concept[spec.text] = examples
    if not dataset.test:
        raise DataError("no test examples could be labelled")
    return dataset


def _test_candidates(world: World, spec: ConceptSpec, items: list[SynthItem],
                     rng: np.random.Generator,
                     count: int) -> list[MatchingExample]:
    """Oracle-labelled candidate pool: all relevant items (up to half the
    pool) padded with random irrelevant ones."""
    relevant = [item for item in items
                if item_matches_concept(world, item, spec)]
    if not relevant:
        return []
    rng.shuffle(relevant)
    positives = relevant[:max(1, count // 2)]
    examples = [MatchingExample(spec, item, 1) for item in positives]
    attempts = 0
    while len(examples) < count and attempts < count * 20:
        attempts += 1
        item = items[int(rng.integers(len(items)))]
        if item_matches_concept(world, item, spec):
            continue
        examples.append(MatchingExample(spec, item, 0))
    rng.shuffle(examples)
    return examples
