"""Shared plumbing for neural matching models."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import DataError, NotFittedError
from ..ml import Embedding, Module
from ..ml.tensor import Tensor, no_grad
from ..nlp.vocab import Vocab
from ..utils.rng import spawn_rng
from .dataset import MatchingExample


def matching_vocab(examples: Sequence[MatchingExample]) -> Vocab:
    """Vocabulary over concept and title tokens of a pair collection."""
    sentences = []
    for example in examples:
        sentences.append(list(example.concept.tokens))
        sentences.append(list(example.item.title_tokens))
    return Vocab.from_corpus(sentences)


class NeuralMatcher(Module):
    """Base class: shared embedding table and the scoring interface.

    Args:
        vocab: Token vocabulary covering both sides.
        dim: Word-embedding width.
        seed: Weight-init seed.
        pretrained: Optional pretrained embedding matrix.
        name: RNG stream name (per-subclass).
    """

    def __init__(self, vocab: Vocab, dim: int, seed: int, name: str,
                 pretrained: np.ndarray | None = None):
        super().__init__()
        self.vocab = vocab
        self.dim = dim
        self.rng = spawn_rng(seed, "matcher", name)
        self.embedding = Embedding(len(vocab), dim, self.rng,
                                   pretrained=pretrained)
        self._fitted = False

    def _embed(self, tokens: Sequence[str]) -> Tensor:
        """(1, T, dim) embeddings of a token sequence."""
        if not tokens:
            raise DataError("cannot embed an empty sequence")
        ids = np.asarray(self.vocab.ids(list(tokens)))[None, :]
        return self.embedding(ids)

    def logit(self, example: MatchingExample) -> Tensor:
        raise NotImplementedError

    def score_pairs(self, examples: Sequence[MatchingExample]) -> np.ndarray:
        """Match probabilities for a batch of pairs (no grad)."""
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been trained")
        with no_grad():
            logits = np.asarray([self.logit(e).item() for e in examples])
        return 1.0 / (1.0 + np.exp(-logits))
