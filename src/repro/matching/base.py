"""Shared plumbing for neural matching models."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import DataError, NotFittedError
from ..ml import Embedding, Module
from ..ml.tensor import Tensor, no_grad
from ..nlp.vocab import Vocab
from ..utils.rng import spawn_rng
from .dataset import MatchingExample, pair_from_texts


def matching_vocab(examples: Sequence[MatchingExample]) -> Vocab:
    """Vocabulary over concept and title tokens of a pair collection."""
    sentences = []
    for example in examples:
        sentences.append(list(example.concept.tokens))
        sentences.append(list(example.item.title_tokens))
    return Vocab.from_corpus(sentences)


class NeuralMatcher(Module):
    """Base class: shared embedding table and the scoring interface.

    Args:
        vocab: Token vocabulary covering both sides.
        dim: Word-embedding width.
        seed: Weight-init seed.
        pretrained: Optional pretrained embedding matrix.
        name: RNG stream name (per-subclass).
    """

    def __init__(self, vocab: Vocab, dim: int, seed: int, name: str,
                 pretrained: np.ndarray | None = None):
        super().__init__()
        self.vocab = vocab
        self.dim = dim
        self.rng = spawn_rng(seed, "matcher", name)
        self.embedding = Embedding(len(vocab), dim, self.rng,
                                   pretrained=pretrained)
        self._fitted = False

    def _embed(self, tokens: Sequence[str]) -> Tensor:
        """(1, T, dim) embeddings of a token sequence."""
        if not tokens:
            raise DataError("cannot embed an empty sequence")
        ids = np.asarray(self.vocab.ids(list(tokens)))[None, :]
        return self.embedding(ids)

    def logit(self, example: MatchingExample) -> Tensor:
        raise NotImplementedError

    def score_pairs(self, examples: Sequence[MatchingExample]) -> np.ndarray:
        """Match probabilities for a batch of pairs (no grad)."""
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been trained")
        with no_grad():
            logits = np.asarray([self.logit(e).item() for e in examples])
        return 1.0 / (1.0 + np.exp(-logits))

    def score_text(self, query_tokens: Sequence[str],
                   title_tokens: Sequence[str]) -> float:
        """Match probability for one raw text pair (no grad).

        The serving re-rank entry point: no ground-truth
        :class:`~repro.synth.world.ConceptSpec`/item behind the pair, just
        two token sequences (query vs concept text, or concept vs title).
        """
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been trained")
        with no_grad():
            logit = self.logit(pair_from_texts(query_tokens,
                                               title_tokens)).item()
        if logit >= 0.0:
            return 1.0 / (1.0 + math.exp(-logit))
        odds = math.exp(logit)  # stable for very negative logits
        return odds / (1.0 + odds)
