"""Shared plumbing for neural matching models."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..errors import DataError, NotFittedError
from ..ml import Embedding, Module
from ..ml.inference import InferenceSession, stable_sigmoid
from ..ml.tensor import Tensor, no_grad
from ..nlp.vocab import Vocab
from ..utils.rng import spawn_rng
from .dataset import MatchingExample, pair_from_texts


def matching_vocab(examples: Sequence[MatchingExample]) -> Vocab:
    """Vocabulary over concept and title tokens of a pair collection."""
    sentences = []
    for example in examples:
        sentences.append(list(example.concept.tokens))
        sentences.append(list(example.item.title_tokens))
    return Vocab.from_corpus(sentences)


class NeuralMatcher(Module):
    """Base class: shared embedding table and the scoring interface.

    Args:
        vocab: Token vocabulary covering both sides.
        dim: Word-embedding width.
        seed: Weight-init seed.
        pretrained: Optional pretrained embedding matrix.
        name: RNG stream name (per-subclass).
    """

    #: Whether this matcher implements the functional batched inference
    #: path (:meth:`encode_query`/:meth:`encode_doc`/:meth:`_pool_logits`).
    #: Matchers without one still serve :meth:`score_pool` through the
    #: per-pair fallback; the serving layer uses the flag to decide
    #: whether doc-side encodings are worth caching.
    fast_path = False

    #: Whether this matcher exposes flat dense vectors
    #: (:meth:`query_vector`/:meth:`doc_vector`) usable as retrieval
    #: embeddings.  Interaction-heavy matchers score pairs jointly and
    #: have no meaningful single-side vector; dense and hybrid candidate
    #: generation (:mod:`repro.retrieval`) is gated on this flag.
    dense_vectors = False

    def __init__(self, vocab: Vocab, dim: int, seed: int, name: str,
                 pretrained: np.ndarray | None = None):
        super().__init__()
        self.vocab = vocab
        self.dim = dim
        self.rng = spawn_rng(seed, "matcher", name)
        self.embedding = Embedding(len(vocab), dim, self.rng,
                                   pretrained=pretrained)
        self._fitted = False

    def _token_ids(self, tokens: Sequence[str]) -> np.ndarray:
        """Vocabulary ids of a non-empty token sequence."""
        if not tokens:
            raise DataError("cannot embed an empty sequence")
        return np.asarray(self.vocab.ids(list(tokens)))

    def _embed(self, tokens: Sequence[str]) -> Tensor:
        """(1, T, dim) embeddings of a token sequence."""
        return self.embedding(self._token_ids(tokens)[None, :])

    def logit(self, example: MatchingExample) -> Tensor:
        raise NotImplementedError

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been trained")

    def score_pairs(self, examples: Sequence[MatchingExample]) -> np.ndarray:
        """Match probabilities for a batch of pairs (no grad)."""
        self._require_fitted()
        with no_grad():
            logits = np.asarray([self.logit(e).item() for e in examples])
        return stable_sigmoid(logits)

    def score_text(self, query_tokens: Sequence[str],
                   title_tokens: Sequence[str]) -> float:
        """Match probability for one raw text pair (no grad).

        The serving re-rank entry point: no ground-truth
        :class:`~repro.synth.world.ConceptSpec`/item behind the pair, just
        two token sequences (query vs concept text, or concept vs title).
        """
        self._require_fitted()
        with no_grad():
            logit = self.logit(pair_from_texts(query_tokens,
                                               title_tokens)).item()
        return float(stable_sigmoid(logit))

    # -------------------------------------------------- batched inference
    def inference_session(self) -> InferenceSession:
        """The matcher's functional weight session, extracted lazily once.

        Weight arrays update in place during training, so one session
        stays valid for the module's lifetime; a second concurrent
        creation is benign (identical views).
        """
        session = self.__dict__.get("_inference_session")
        if session is None:
            session = InferenceSession(self)
            self._inference_session = session
        return session

    def encode_query(self, query_tokens: Sequence[str]) -> Any:
        """Query-side encoding reused across a whole candidate pool.

        Fast-path matchers (``fast_path = True``) return an opaque state
        object holding everything on the query side that does not depend
        on the document — features, encoder output, attention
        projections.  The base class has no fast path and returns
        ``None``.
        """
        return None

    def encode_doc(self, doc_tokens: Sequence[str]) -> Any:
        """Doc-side encoding, cacheable by the serving layer.

        Legal to cache for as long as the weights do not change (the
        serving layer caches per frozen store + prepared model).  ``None``
        when the matcher has no fast path.
        """
        return None

    def _pool_logits(self, query_state: Any,
                     doc_encodings: Sequence[Any]) -> np.ndarray:
        """Fast-path logits for one query state against encoded docs."""
        raise NotImplementedError

    # ------------------------------------------------- dense retrieval side
    def query_vector(self, query_tokens: Sequence[str]) -> np.ndarray | None:
        """Query-side embedding for dense first-stage retrieval.

        Vector-capable matchers (``dense_vectors = True``) return a flat
        float vector in the same space as :meth:`doc_vector`, so an ANN
        index over doc vectors ranks candidates by the matcher's own
        similarity.  The base class returns ``None`` (no dense side).
        """
        return None

    def doc_vector(self, doc_tokens: Sequence[str],
                   encoding: Any = None) -> np.ndarray | None:
        """Doc-side embedding for dense first-stage retrieval.

        Args:
            doc_tokens: The document's token sequence.
            encoding: An optional :meth:`encode_doc` result for the same
                tokens; vector-capable matchers extract the vector from it
                instead of re-running the encoder (the serving layer feeds
                its frozen-catalog doc-encoding cache through here when
                building a dense index).

        ``None`` when the matcher has no dense side.
        """
        return None

    def score_pool(self, query_tokens: Sequence[str],
                   doc_token_lists: Sequence[Sequence[str]],
                   doc_encodings: Sequence[Any] | None = None) -> np.ndarray:
        """Match probabilities for one query against a candidate pool.

        Equivalent to ``[score_text(query_tokens, d) for d in docs]`` —
        the parity suite asserts identical scores — but the query side is
        encoded **once** and reused across all candidates, and fast-path
        matchers run entirely on tape-free numpy kernels
        (:mod:`repro.ml.inference`), skipping per-op graph-node
        allocation.  Matchers without a fast path fall back to per-pair
        ``logit`` under ``no_grad``.

        Args:
            query_tokens: The shared query side.
            doc_token_lists: One token sequence per pool candidate.
            doc_encodings: Optional pre-computed :meth:`encode_doc`
                results aligned with ``doc_token_lists`` (``None`` slots
                are encoded on the fly).  The serving layer passes its
                doc-side cache through here.

        Returns:
            Probabilities, shape ``(len(doc_token_lists),)``.
        """
        self._require_fitted()
        docs = [list(tokens) for tokens in doc_token_lists]
        if not docs:
            return np.zeros(0)
        if not self.fast_path:
            with no_grad():
                logits = np.asarray([
                    self.logit(pair_from_texts(query_tokens, tokens)).item()
                    for tokens in docs
                ])
            return stable_sigmoid(logits)
        query_state = self.encode_query(query_tokens)
        if doc_encodings is None:
            doc_encodings = [None] * len(docs)
        encoded = [
            encoding if encoding is not None else self.encode_doc(tokens)
            for tokens, encoding in zip(docs, doc_encodings)
        ]
        return stable_sigmoid(np.asarray(self._pool_logits(query_state,
                                                           encoded)))
