"""BM25 lexical-matching baseline (first row of Table 6).

Purely term-based: it cannot bridge semantic drift ("mid-autumn festival
gifts" vs "moon cakes"), which is exactly why the paper includes it as the
floor baseline.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

import numpy as np

from ..errors import DataError, NotFittedError
from .dataset import MatchingExample


class BM25Matcher:
    """Okapi BM25 over item titles.

    Args:
        k1: Term-frequency saturation.
        b: Length normalisation.
    """

    def __init__(self, k1: float = 1.5, b: float = 0.75):
        self.k1 = k1
        self.b = b
        self._idf: dict[str, float] = {}
        self._average_length = 0.0
        self._fitted = False

    def fit(self, examples: Sequence[MatchingExample]) -> "BM25Matcher":
        """Collect document statistics from the training items' titles."""
        titles = {example.item.index: example.item.title_tokens
                  for example in examples}
        if not titles:
            raise DataError("BM25 needs at least one title")
        document_frequency: Counter[str] = Counter()
        total_length = 0
        for tokens in titles.values():
            total_length += len(tokens)
            document_frequency.update(set(tokens))
        n_docs = len(titles)
        self._average_length = total_length / n_docs
        self._idf = {
            term: math.log(1.0 + (n_docs - freq + 0.5) / (freq + 0.5))
            for term, freq in document_frequency.items()}
        self._fitted = True
        return self

    def score(self, query_tokens: Sequence[str],
              title_tokens: Sequence[str]) -> float:
        """BM25 score of a query against one title."""
        if not self._fitted:
            raise NotFittedError("BM25 has not been fitted")
        counts = Counter(title_tokens)
        length_norm = self.k1 * (
            1.0 - self.b + self.b * len(title_tokens)
            / max(self._average_length, 1e-9))
        score = 0.0
        for term in query_tokens:
            frequency = counts.get(term, 0)
            if frequency == 0:
                continue
            idf = self._idf.get(term, math.log(2.0))
            score += idf * frequency * (self.k1 + 1.0) / (frequency + length_norm)
        return score

    def score_pairs(self, examples: Sequence[MatchingExample]) -> np.ndarray:
        """Scores for a batch of (concept, item) pairs."""
        return np.asarray([
            self.score(example.concept.tokens, example.item.title_tokens)
            for example in examples])
