"""BM25 lexical matching (first row of Table 6) and retrieval.

Purely term-based: it cannot bridge semantic drift ("mid-autumn festival
gifts" vs "moon cakes"), which is exactly why the paper includes it as the
floor baseline.  Two faces of the same scoring function live here:

- :class:`BM25Matcher` — the Table 6 *pair scorer* (score one query
  against one given title);
- :class:`BM25Index` — a *retriever* with a real inverted index: fit once
  over a document collection, then ``top_k(query_tokens)`` walks only the
  postings of the query terms instead of scoring every document.  This is
  the candidate-generation shape the paper uses before deep matching
  (Section 6 retrieves candidates, then verifies).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Mapping, Sequence

import numpy as np

from ..errors import DataError, NotFittedError
from .dataset import MatchingExample

#: IDF fallback for query terms unseen at fit time.
_UNSEEN_IDF = math.log(2.0)


def _idf_table(document_frequency: Mapping[str, int],
               n_docs: int) -> dict[str, float]:
    return {
        term: math.log(1.0 + (n_docs - freq + 0.5) / (freq + 0.5))
        for term, freq in document_frequency.items()}


class BM25Matcher:
    """Okapi BM25 over item titles.

    Args:
        k1: Term-frequency saturation.
        b: Length normalisation.
    """

    def __init__(self, k1: float = 1.5, b: float = 0.75):
        self.k1 = k1
        self.b = b
        self._idf: dict[str, float] = {}
        self._average_length = 0.0
        # token tuple -> (term counts, length norm); filled at fit time so
        # score_pairs never recounts a title it has already seen.  Only
        # fit-time titles are memoised: scoring must not grow the cache,
        # or serving-style traffic over unseen titles leaks memory.
        self._doc_cache: dict[tuple[str, ...], tuple[Counter, float]] = {}
        self._fitted = False

    def fit(self, examples: Sequence[MatchingExample]) -> "BM25Matcher":
        """Collect document statistics from the training items' titles.

        Per-document term counts (and length norms) are precomputed here
        and cached, keyed by the title's token tuple.  The cache is
        bounded by the training set: titles first seen at ``score`` time
        are counted on the fly without being memoised.
        """
        titles = {example.item.index: example.item.title_tokens
                  for example in examples}
        if not titles:
            raise DataError("BM25 needs at least one title")
        document_frequency: Counter[str] = Counter()
        total_length = 0
        for tokens in titles.values():
            total_length += len(tokens)
            document_frequency.update(set(tokens))
        n_docs = len(titles)
        self._average_length = total_length / n_docs
        self._idf = _idf_table(document_frequency, n_docs)
        self._fitted = True
        self._doc_cache = {}
        for tokens in titles.values():
            key = tuple(tokens)
            if key not in self._doc_cache:
                self._doc_cache[key] = (Counter(key), self._length_norm(len(key)))
        return self

    def _length_norm(self, n_tokens: int) -> float:
        return self.k1 * (1.0 - self.b + self.b * n_tokens
                          / max(self._average_length, 1e-9))

    def _cached_doc(self, tokens: Sequence[str]) -> tuple[Counter, float]:
        """Term counts + length norm for a title.

        Fit-time titles come from the cache; unseen titles are counted on
        the fly and deliberately *not* memoised — ``score`` is called on
        arbitrary query traffic, and memoising every unseen title would
        grow the cache without bound.
        """
        key = tuple(tokens)
        cached = self._doc_cache.get(key)
        if cached is None:
            cached = (Counter(key), self._length_norm(len(key)))
        return cached

    def score(self, query_tokens: Sequence[str],
              title_tokens: Sequence[str]) -> float:
        """BM25 score of a query against one title."""
        if not self._fitted:
            raise NotFittedError("BM25 has not been fitted")
        counts, length_norm = self._cached_doc(title_tokens)
        score = 0.0
        for term in query_tokens:
            frequency = counts.get(term, 0)
            if frequency == 0:
                continue
            idf = self._idf.get(term, _UNSEEN_IDF)
            score += idf * frequency * (self.k1 + 1.0) / (frequency + length_norm)
        return score

    def score_pairs(self, examples: Sequence[MatchingExample]) -> np.ndarray:
        """Scores for a batch of (concept, item) pairs."""
        return np.asarray([
            self.score(example.concept.tokens, example.item.title_tokens)
            for example in examples])


class BM25Index:
    """Inverted-index BM25 retriever over an id-keyed document collection.

    Unlike :class:`BM25Matcher` (which scores a given pair), this answers
    "which documents best match this query" without touching documents
    that share no term with it: scoring walks only the postings lists of
    the query terms, so ``top_k`` is O(sum of query-term posting lengths),
    not O(collection).

    Args:
        k1: Term-frequency saturation.
        b: Length normalisation.
    """

    def __init__(self, k1: float = 1.5, b: float = 0.75):
        self.k1 = k1
        self.b = b
        self._doc_ids: list = []
        self._postings: dict[str, list[tuple[int, int]]] = {}
        self._norms: list[float] = []
        self._idf: dict[str, float] = {}
        # Raw token counts per document; needed by add_documents to
        # recompute the corpus statistics.  None on an index rehydrated
        # from a pre-"lengths" snapshot state (read-only: refit to grow).
        self._lengths: list[int] | None = []
        self._fitted = False

    def fit(self, documents: Mapping[object, Sequence[str]]) -> "BM25Index":
        """Index a document collection (id -> token sequence).

        Document term counts are computed once here; queries never
        re-tokenise or re-count documents.
        """
        if not documents:
            raise DataError("BM25Index needs at least one document")
        self._doc_ids = list(documents)
        document_frequency: Counter[str] = Counter()
        term_counts: list[Counter] = []
        lengths: list[int] = []
        for tokens in documents.values():
            counts = Counter(tokens)
            term_counts.append(counts)
            lengths.append(len(tokens))
            document_frequency.update(counts.keys())
        n_docs = len(self._doc_ids)
        average_length = sum(lengths) / n_docs
        self._idf = _idf_table(document_frequency, n_docs)
        self._norms = [
            self.k1 * (1.0 - self.b + self.b * length
                       / max(average_length, 1e-9))
            for length in lengths]
        self._postings = {}
        for position, counts in enumerate(term_counts):
            for term, frequency in counts.items():
                self._postings.setdefault(term, []).append(
                    (position, frequency))
        self._lengths = lengths
        self._fitted = True
        return self

    def add_documents(
            self, documents: Mapping[object, Sequence[str]]) -> "BM25Index":
        """Extend the fitted index with new documents, refit-identically.

        New documents take the positions after the existing collection
        and the corpus statistics are recomputed over the grown
        collection: document frequencies are recovered from the postings
        lists, idf is rebuilt, and *every* norm is re-derived from the
        stored raw lengths and the new average length.  The result is
        bit-identical to ``fit`` over the concatenated collection —
        scores, rankings and serialised state alike.

        Raises:
            NotFittedError: If the index has not been fitted.
            DataError: On a duplicate document id, or when the index was
                rehydrated from a state without raw document lengths
                (older snapshots) — refit from the full collection then.
        """
        if not self._fitted:
            raise NotFittedError("BM25Index has not been fitted")
        if not documents:
            return self
        if self._lengths is None:
            raise DataError(
                "BM25Index state lacks raw document lengths; "
                "incremental add is unavailable — refit instead")
        existing = set(self._doc_ids)
        clashes = [doc_id for doc_id in documents if doc_id in existing]
        if clashes:
            raise DataError(
                f"documents already indexed: {clashes[:3]!r}"
                f"{'...' if len(clashes) > 3 else ''}")
        start = len(self._doc_ids)
        lengths = list(self._lengths)
        for position, (doc_id, tokens) in enumerate(documents.items(),
                                                    start=start):
            counts = Counter(tokens)
            lengths.append(len(tokens))
            self._doc_ids.append(doc_id)
            for term, frequency in counts.items():
                self._postings.setdefault(term, []).append(
                    (position, frequency))
        # Global statistics shift with every addition (n_docs, average
        # length, per-term df), so idf and all norms are recomputed; the
        # df of each term is exactly its postings length.
        n_docs = len(self._doc_ids)
        document_frequency = {
            term: len(postings)
            for term, postings in self._postings.items()}
        average_length = sum(lengths) / n_docs
        self._idf = _idf_table(document_frequency, n_docs)
        self._norms = [
            self.k1 * (1.0 - self.b + self.b * length
                       / max(average_length, 1e-9))
            for length in lengths]
        self._lengths = lengths
        return self

    def __len__(self) -> int:
        return len(self._doc_ids)

    def to_state(self) -> dict[str, Any]:
        """The fitted index as a JSON-serialisable dict.

        Everything ``fit`` computed — postings, norms, idf — is captured,
        so :meth:`from_state` rehydrates an identically-scoring index
        without re-tokenising or re-counting a single document.  Snapshot
        warm starts (see :mod:`repro.kg.serialize`) persist this next to
        the net.

        Raises:
            NotFittedError: If the index has not been fitted.
        """
        if not self._fitted:
            raise NotFittedError("BM25Index has not been fitted")
        return {
            "k1": self.k1,
            "b": self.b,
            "doc_ids": list(self._doc_ids),
            "postings": {term: [[position, frequency]
                                for position, frequency in postings]
                         for term, postings in self._postings.items()},
            "norms": list(self._norms),
            "idf": dict(self._idf),
            "lengths": list(self._lengths)
            if self._lengths is not None else None,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "BM25Index":
        """Rehydrate a fitted index from :meth:`to_state` output.

        Raises:
            DataError: If the state is missing fields or malformed.
        """
        try:
            index = cls(k1=float(state["k1"]), b=float(state["b"]))
            index._doc_ids = list(state["doc_ids"])
            index._postings = {
                term: [(int(position), int(frequency))
                       for position, frequency in postings]
                for term, postings in state["postings"].items()}
            index._norms = [float(norm) for norm in state["norms"]]
            index._idf = {term: float(value)
                          for term, value in state["idf"].items()}
            # Older snapshots predate the lengths field; such an index
            # rehydrates read-only (add_documents raises, callers refit).
            lengths = state.get("lengths")
            index._lengths = ([int(length) for length in lengths]
                              if lengths is not None else None)
        except (KeyError, TypeError, ValueError) as error:
            raise DataError(f"malformed BM25 index state: {error}") from error
        index._fitted = True
        return index

    def _accumulate(self, query_tokens: Sequence[str]) -> dict[int, float]:
        """Position -> BM25 score over the query terms' postings only.

        The shared scoring kernel behind :meth:`scores` and :meth:`top_k`:
        walks each query term's postings list once, accumulating gains per
        document position.  Positions sharing no term with the query are
        absent (their score is exactly 0.0).
        """
        if not self._fitted:
            raise NotFittedError("BM25Index has not been fitted")
        accumulated: dict[int, float] = {}
        for term, query_frequency in Counter(query_tokens).items():
            postings = self._postings.get(term)
            if postings is None:
                continue
            idf = self._idf[term] * query_frequency
            for position, frequency in postings:
                gain = idf * frequency * (self.k1 + 1.0) \
                    / (frequency + self._norms[position])
                accumulated[position] = accumulated.get(position, 0.0) + gain
        return accumulated

    def scores(self, query_tokens: Sequence[str]) -> dict:
        """Nonzero BM25 scores: doc id -> score, via postings only.

        Documents sharing no term with the query are absent (their score
        is exactly 0.0).
        """
        return {self._doc_ids[position]: score
                for position, score in self._accumulate(query_tokens).items()}

    def score(self, query_tokens: Sequence[str], doc_id) -> float:
        """BM25 score of the query against one indexed document."""
        return self.scores(query_tokens).get(doc_id, 0.0)

    def top_k(self, query_tokens: Sequence[str], k: int = 10) -> list[tuple]:
        """The ``k`` best-matching (doc id, score) pairs, best first.

        Only documents with a nonzero score are returned (there may be
        fewer than ``k``).  Ties break by indexing order, which makes the
        ranking identical to an exhaustive argsort over all documents.
        """
        accumulated = self._accumulate(query_tokens)
        best = sorted(accumulated.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
        return [(self._doc_ids[position], score) for position, score in best]
