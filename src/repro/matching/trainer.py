"""Shared training/evaluation harness for matching models (Table 6)."""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from ..errors import DataError
from ..utils.metrics import f1_score, precision_at_k, roc_auc
from ..utils.rng import spawn_rng
from ..ml import Adam
from ..ml.losses import bce_with_logits
from ..ml.tensor import stack
from ..ml.training import EarlyStopping, minibatches
from .dataset import MatchingDataset, MatchingExample


class Matcher(Protocol):
    """Anything that can score concept-item pairs."""

    def score_pairs(self, examples: Sequence[MatchingExample]) -> np.ndarray:
        ...


def train_matcher(model, train: Sequence[MatchingExample], epochs: int = 3,
                  lr: float = 0.01, batch_size: int = 16, seed: int = 0,
                  early_stopping_patience: int | None = None) -> list[float]:
    """Generic BCE training loop for neural matchers.

    The model must expose ``logit(example) -> Tensor`` and ``parameters()``.

    Args:
        early_stopping_patience: Stop when the training loss has not
            improved for this many epochs (``None`` = fixed epoch count).

    Returns:
        Mean loss per epoch.
    """
    if not train:
        raise DataError("matcher needs training examples")
    rng = spawn_rng(seed, "matcher-train")
    optimizer = Adam(model.parameters(), lr=lr)
    stopper = EarlyStopping(patience=early_stopping_patience) \
        if early_stopping_patience else None
    history: list[float] = []
    for _ in range(epochs):
        total = 0.0
        batches = 0
        for batch in minibatches(train, batch_size, rng):
            optimizer.zero_grad()
            logits = stack([model.logit(example) for example in batch], axis=0)
            targets = np.asarray([example.label for example in batch],
                                 dtype=float)
            loss = bce_with_logits(logits, targets)
            loss.backward()
            optimizer.clip_grad_norm(5.0)
            optimizer.step()
            total += loss.item()
            batches += 1
        history.append(total / batches)
        if stopper is not None and not stopper.update(history[-1]):
            break
    if hasattr(model, "_fitted"):
        model._fitted = True
    return history


def calibrate_threshold(model: Matcher,
                        examples: Sequence[MatchingExample]) -> float:
    """Decision threshold maximising F1 on held-in examples.

    The paper fixes 0.5; tiny models are often badly calibrated, so this
    offers the standard alternative of tuning the cut on training data.
    """
    if not examples:
        raise DataError("cannot calibrate on an empty set")
    scores = np.asarray(model.score_pairs(examples), dtype=float)
    labels = [example.label for example in examples]
    best_cut, best_f1 = 0.5, -1.0
    for cut in np.unique(scores):
        f1 = f1_score(labels, (scores >= cut).astype(int))
        if f1 > best_f1:
            best_cut, best_f1 = float(cut), f1
    return best_cut


def evaluate_matcher(model: Matcher, dataset: MatchingDataset,
                     threshold: float | None = None,
                     k: int = 10) -> dict[str, float]:
    """AUC, F1 and P@k of a matcher on the dataset's test split.

    Args:
        model: Any pair scorer (trained neural model or BM25).
        dataset: Dataset whose ``test`` / ``test_by_concept`` to use.
        threshold: F1 decision threshold.  ``None`` uses the score median,
            which makes F1 comparable across scorers whose outputs are not
            probabilities (BM25).  Table 6 uses 0.5 for probability models.
        k: Ranking cut-off for P@k (the paper reports P@10).
    """
    if not dataset.test:
        raise DataError("dataset has no test examples")
    scores = np.asarray(model.score_pairs(dataset.test), dtype=float)
    labels = [example.label for example in dataset.test]
    auc = roc_auc(labels, scores)
    cut = float(np.median(scores)) if threshold is None else threshold
    predictions = (scores >= cut).astype(int)
    f1 = f1_score(labels, predictions)

    precisions = []
    for examples in dataset.test_by_concept.values():
        concept_scores = np.asarray(model.score_pairs(examples), dtype=float)
        order = np.argsort(-concept_scores, kind="mergesort")
        relevance = [examples[i].label for i in order]
        precisions.append(precision_at_k(relevance, k))
    return {"auc": float(auc), "f1": float(f1),
            "p@10": float(np.mean(precisions))}
