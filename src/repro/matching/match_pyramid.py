"""MatchPyramid baseline [21] (Table 6).

Text matching as image recognition: the word-by-word interaction matrix is
pooled over a fixed grid (dynamic pooling) and fed to an MLP.  The original
uses 2-D convolutions; at our sequence lengths (concepts of 2-5 words,
titles of ~10) a direct grid max-pool over the interaction image preserves
the architecture's character at a fraction of the cost.
"""

from __future__ import annotations

import numpy as np

from ..ml import MLP
from ..ml.tensor import Tensor, concat
from ..nlp.vocab import Vocab
from .base import NeuralMatcher
from .dataset import MatchingExample


def _grid_bounds(length: int, cells: int) -> list[tuple[int, int]]:
    """Split [0, length) into ``cells`` contiguous non-empty-ish chunks."""
    bounds = []
    for cell in range(cells):
        start = (cell * length) // cells
        stop = ((cell + 1) * length) // cells
        if stop <= start:
            stop = min(length, start + 1)
        bounds.append((start, stop))
    return bounds


class MatchPyramidMatcher(NeuralMatcher):
    """Interaction-matrix matcher with dynamic grid pooling.

    Args:
        vocab: Shared vocabulary.
        dim: Embedding width.
        grid: (rows, cols) of the dynamic pooling grid.
        seed: Weight-init seed.
    """

    def __init__(self, vocab: Vocab, dim: int = 16,
                 grid: tuple[int, int] = (2, 4), seed: int = 0,
                 pretrained: np.ndarray | None = None):
        super().__init__(vocab, dim, seed, "match-pyramid", pretrained)
        self.grid = grid
        cells = grid[0] * grid[1]
        self.head = MLP([cells, 16, 1], self.rng, activation="relu")

    def interaction(self, example: MatchingExample) -> Tensor:
        """(m, l) dot-product interaction matrix."""
        concept = self._embed(example.concept.tokens)[0]     # (m, d)
        title = self._embed(example.item.title_tokens)[0]    # (l, d)
        return concept @ title.transpose()

    def logit(self, example: MatchingExample) -> Tensor:
        matrix = self.interaction(example)
        rows, cols = matrix.shape
        row_bounds = _grid_bounds(rows, self.grid[0])
        col_bounds = _grid_bounds(cols, self.grid[1])
        cells = []
        for row_start, row_stop in row_bounds:
            for col_start, col_stop in col_bounds:
                block = matrix[row_start:row_stop, col_start:col_stop]
                cells.append(block.max(axis=0).max(axis=0).reshape(1))
        pooled = concat(cells, axis=0)
        return self.head(pooled).reshape(())
