"""Experiment T6 — Table 6: concept-item semantic matching.

Paper rows (AUC / F1 / P@10):

    BM25             -      / -      / 0.7681
    DSSM             0.7885 / 0.6937 / 0.7971
    MatchPyramid     0.8127 / 0.7352 / 0.7813
    RE2              0.8664 / 0.7052 / 0.8977
    Ours             0.8610 / 0.7532 / 0.9015
    Ours+Knowledge   0.8713 / 0.7769 / 0.9048
"""

from __future__ import annotations

from dataclasses import dataclass

from ..concepts.classifier import lexicon_ner_lookup
from ..matching import (
    BM25Matcher, build_matching_dataset, DSSMMatcher, evaluate_matcher,
    KnowledgeMatcher, MatchPyramidMatcher, RE2Matcher, train_matcher,
)
from ..matching.base import matching_vocab
from ..synth.clicklog import simulate_clicks
from ..utils.rng import spawn_rng
from .common import ExperimentWorld, format_rows

PAPER = {
    "bm25": {"auc": None, "f1": None, "p@10": 0.7681},
    "dssm": {"auc": 0.7885, "f1": 0.6937, "p@10": 0.7971},
    "matchpyramid": {"auc": 0.8127, "f1": 0.7352, "p@10": 0.7813},
    "re2": {"auc": 0.8664, "f1": 0.7052, "p@10": 0.8977},
    "ours": {"auc": 0.8610, "f1": 0.7532, "p@10": 0.9015},
    "ours+knowledge": {"auc": 0.8713, "f1": 0.7769, "p@10": 0.9048},
}

MODELS = ("bm25", "dssm", "matchpyramid", "re2", "ours", "ours+knowledge")


@dataclass
class MatchingComparison:
    metrics: dict[str, dict[str, float]]


def run(ew: ExperimentWorld, epochs: int = 6, max_train: int = 1200,
        test_concepts: int = 20, impressions: int = 30,
        seed_offset: int = 0) -> MatchingComparison:
    """Train and evaluate all six matchers on the same dataset."""
    rng = spawn_rng(ew.scale.seed, "table6")
    items = ew.corpus.items
    clicks = simulate_clicks(ew.world, ew.concepts, items,
                             impressions_per_concept=impressions)
    dataset = build_matching_dataset(ew.world, ew.concepts, items, clicks,
                                     rng, test_concepts=test_concepts,
                                     candidates_per_test_concept=24,
                                     extra_random_negatives=max_train // 3)
    train = dataset.train[:max_train]
    vocab = matching_vocab(dataset.train + dataset.test)
    pos = ew.pos_tagger
    ner_lookup, num_ner = lexicon_ner_lookup(ew.lexicon)
    seed = ew.scale.seed + seed_offset
    dim = ew.scale.embedding_dim

    metrics: dict[str, dict[str, float]] = {}

    bm25 = BM25Matcher().fit(train)
    metrics["bm25"] = evaluate_matcher(bm25, dataset, threshold=None)

    def build(name: str):
        if name == "dssm":
            return DSSMMatcher(vocab, dim=dim, hidden=dim, seed=seed)
        if name == "matchpyramid":
            return MatchPyramidMatcher(vocab, dim=dim, seed=seed)
        if name == "re2":
            return RE2Matcher(vocab, dim=dim, hidden=dim, seed=seed)
        if name == "ours":
            return KnowledgeMatcher(vocab, pos, ner_lookup, num_ner,
                                    dim=dim, conv_dim=dim, seed=seed)
        return KnowledgeMatcher(vocab, pos, ner_lookup, num_ner,
                                knowledge_lookup=ew.gloss_vector,
                                gloss_tokens=ew.gloss_kb.content_word_map(),
                                knowledge_dim=ew.gloss_doc2vec.dim,
                                dim=dim, conv_dim=dim, seed=seed)

    for name in ("dssm", "matchpyramid", "re2", "ours", "ours+knowledge"):
        model = build(name)
        train_matcher(model, train, epochs=epochs, lr=0.015, seed=seed)
        metrics[name] = evaluate_matcher(model, dataset, threshold=0.5)
    return MatchingComparison(metrics=metrics)


def format_report(result: MatchingComparison) -> str:
    rows = []
    for name in MODELS:
        m = result.metrics[name]
        paper = PAPER[name]
        rows.append((
            name, f"{m['auc']:.4f}", f"{m['f1']:.4f}", f"{m['p@10']:.4f}",
            f"{paper['auc']:.4f}" if paper["auc"] else "-",
            f"{paper['p@10']:.4f}"))
    return format_rows(
        "Table 6 — concept-item semantic matching",
        ("model", "AUC", "F1", "P@10", "paper AUC", "paper P@10"),
        rows,
        paper_note="knowledge-aware model best; knowledge adds on top")
