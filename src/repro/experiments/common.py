"""Shared setup for the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import RunScale
from ..nlp.doc2vec import Doc2Vec
from ..nlp.embeddings import SkipGramEmbeddings
from ..nlp.ngram_lm import BidirectionalLanguageModel
from ..nlp.pos import PosTagger
from ..nlp.vocab import Vocab
from ..synth.corpus import Corpus, build_corpus
from ..synth.glosses import build_gloss_kb, GlossKB
from ..synth.lexicon import build_lexicon, Lexicon
from ..synth.world import ConceptSpec, World
from ..utils.rng import spawn_rng


@dataclass
class ExperimentWorld:
    """Everything the experiments share: world, corpus, embeddings, glosses.

    Attributes:
        scale: The run-scale preset used.
        world / lexicon / corpus: The synthetic substrate.
        concepts: Good concepts woven into the corpus.
        vocab: Word vocabulary over the full corpus.
        embeddings: SGNS word embeddings (the GloVe substitute).
        language_model: Bidirectional n-gram LM (the BERT substitute).
        gloss_kb: The knowledge base (Wikipedia substitute).
        gloss_doc2vec: Doc2vec fitted on the glosses.
        pos_tagger: POS tagger seeded with the lexicon.
    """

    scale: RunScale
    world: World
    lexicon: Lexicon
    corpus: Corpus
    concepts: list[ConceptSpec]
    vocab: Vocab
    embeddings: SkipGramEmbeddings
    language_model: BidirectionalLanguageModel
    gloss_kb: GlossKB
    gloss_doc2vec: Doc2Vec
    pos_tagger: PosTagger
    _gloss_vectors: dict[str, np.ndarray] = field(default_factory=dict)
    _centered: np.ndarray | None = None

    def gloss_vector(self, word: str) -> np.ndarray | None:
        """Doc2vec vector of a word's gloss (None when no gloss exists)."""
        if word in self._gloss_vectors:
            return self._gloss_vectors[word]
        if not self.gloss_kb.has(word):
            return None
        index = self.gloss_kb.surfaces().index(word)
        vector = self.gloss_doc2vec.document_vector(index)
        self._gloss_vectors[word] = vector
        return vector

    def phrase_vector(self, surface: str) -> np.ndarray:
        """Mean centered word embedding of a phrase (projection input)."""
        if self._centered is None:
            self._centered = self.embeddings.centered_matrix()
        ids = [self.vocab.id(word) for word in surface.split()]
        return self._centered[ids].mean(axis=0)


def build_experiment_world(scale: RunScale, n_concepts: int = 120,
                           embedding_epochs: int = 4,
                           gloss_dim: int = 16) -> ExperimentWorld:
    """Build the shared substrate once per experiment session.

    Args:
        scale: Size preset.
        n_concepts: Good concepts woven into the corpus.
        embedding_epochs: SGNS epochs (2 is plenty at our corpus size).
        gloss_dim: Doc2vec dimension for glosses.
    """
    lexicon = build_lexicon(seed=scale.seed, n_brands=scale.n_brands,
                            n_ips=scale.n_ips)
    world = World(lexicon, seed=scale.seed)
    rng = spawn_rng(scale.seed, "experiments")
    concepts = world.sample_good_concepts(rng, n_concepts)
    corpus = build_corpus(world, concepts, scale)
    sentences = corpus.sentences()
    vocab = Vocab.from_corpus(sentences)
    embeddings = SkipGramEmbeddings(vocab, dim=scale.embedding_dim, window=2,
                                    negatives=4, seed=scale.seed)
    embeddings.train(sentences, epochs=embedding_epochs)
    language_model = BidirectionalLanguageModel().fit(sentences)
    gloss_kb = build_gloss_kb(world)
    gloss_doc2vec = Doc2Vec(dim=gloss_dim, epochs=6, seed=scale.seed)
    gloss_doc2vec.fit(gloss_kb.documents())
    pos_tagger = PosTagger(lexicon.pos_lexicon())
    return ExperimentWorld(scale=scale, world=world, lexicon=lexicon,
                           corpus=corpus, concepts=concepts, vocab=vocab,
                           embeddings=embeddings,
                           language_model=language_model, gloss_kb=gloss_kb,
                           gloss_doc2vec=gloss_doc2vec, pos_tagger=pos_tagger)


def format_rows(title: str, header: tuple[str, ...],
                rows: list[tuple], paper_note: str = "") -> str:
    """A fixed-width text table for benchmark output."""
    widths = [max(len(str(header[i])),
                  max((len(str(row[i])) for row in rows), default=0))
              for i in range(len(header))]
    lines = [title]
    if paper_note:
        lines.append(f"(paper: {paper_note})")
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
