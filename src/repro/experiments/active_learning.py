"""Experiment T3 / F9R — active-learning sampling strategies.

Table 3 compares Random / US / CS / UCS.  *Random* is "training using the
whole candidate pool without active learning" — it labels everything
(500k).  Each AL strategy iterates Algorithm 1 until MAP stops improving
and is scored on (a) how many labels it consumed at that point and (b) the
best MAP it reached.  The paper finds UCS the most economical (325k
labels, -35% vs Random) with the best MAP; Figure 9 (right) shows the
best-MAP comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hypernym.active import ActiveLearner, STRATEGIES
from ..hypernym.dataset import build_dataset, unlabeled_pool
from ..utils.rng import spawn_rng
from .common import ExperimentWorld, format_rows

PAPER = {
    "random": {"labeled": "500k", "map": 45.30},
    "us": {"labeled": "375k", "map": 45.73},
    "cs": {"labeled": "400k", "map": 45.22},
    "ucs": {"labeled": "325k", "map": 46.32},
}


@dataclass
class StrategyOutcome:
    """Aggregated outcome of one strategy across repeats."""

    strategy: str
    labels_used: float
    best_map: float
    runs: list = field(default_factory=list)

    @property
    def reduction_vs_pool(self) -> float:
        """Label savings relative to labelling the whole pool (Random)."""
        if not self.runs:
            return 0.0
        pool_size = self.runs[0].pool_size
        return 1.0 - self.labels_used / pool_size


@dataclass
class _SingleRun:
    pool_size: int
    labels_used: int
    best_map: float


@dataclass
class ActiveLearningComparison:
    outcomes: dict[str, StrategyOutcome]
    pool_size: int


def run(ew: ExperimentWorld, pool_size: int = 700, k_per_iteration: int = 70,
        max_iterations: int = 8, alpha: float = 0.7, patience: int = 3,
        repeats: int = 3, epochs: int = 15,
        strategies: tuple[str, ...] = STRATEGIES) -> ActiveLearningComparison:
    """Run the comparison, averaged over ``repeats`` pool draws."""
    truth = set(ew.lexicon.hypernym_pairs("Category"))
    outcomes = {s: StrategyOutcome(s, 0.0, 0.0) for s in strategies}
    for repeat in range(repeats):
        rng = spawn_rng(ew.scale.seed, "al-data", str(repeat))
        dataset = build_dataset(ew.lexicon, rng, negatives_per_positive=10,
                                test_fraction=0.3)
        pool = unlabeled_pool(ew.lexicon, rng, pool_size,
                              positive_boost=0.12, deceptive_rate=0.25)
        learner = ActiveLearner(
            ew.phrase_vector, dim=ew.scale.embedding_dim,
            label_fn=lambda a, b: (a, b) in truth, dataset=dataset,
            k_per_iteration=k_per_iteration, alpha=alpha, patience=patience,
            seed=ew.scale.seed + repeat, epochs=epochs, k_layers=3)
        for strategy in strategies:
            if strategy == "random":
                # No active learning: label the entire pool, train once.
                labelled = learner._label(list(pool))
                models = learner._train(labelled)
                from ..hypernym.active import ActiveLearningResult
                result = ActiveLearningResult(strategy="random")
                best = learner._evaluate(models, result, len(labelled))
                single = _SingleRun(len(pool), len(labelled), best)
            else:
                result = learner.run(list(pool), strategy,
                                     max_iterations=max_iterations)
                single = _SingleRun(len(pool), result.labels_used,
                                    result.best_map)
            outcomes[strategy].runs.append(single)
    for outcome in outcomes.values():
        outcome.labels_used = float(np.mean([r.labels_used for r in outcome.runs]))
        outcome.best_map = float(np.mean([r.best_map for r in outcome.runs]))
    return ActiveLearningComparison(outcomes=outcomes, pool_size=pool_size)


def format_report(comparison: ActiveLearningComparison) -> str:
    rows = []
    for strategy, outcome in comparison.outcomes.items():
        paper = PAPER.get(strategy, {})
        rows.append((strategy.upper(),
                     f"{outcome.labels_used:.0f}",
                     f"{outcome.reduction_vs_pool:.0%}",
                     f"{outcome.best_map:.4f}",
                     paper.get("labeled", "-"),
                     paper.get("map", "-")))
    return format_rows(
        f"Table 3 / Fig 9 (right) — AL strategies (pool={comparison.pool_size})",
        ("strategy", "labels used", "saved", "best MAP",
         "paper labels", "paper MAP"),
        rows,
        paper_note="UCS most economical (325k vs 500k, -35%) and best MAP")
