"""Experiment runners regenerating the paper's tables and figures.

Each module exposes a ``run(...)`` function returning structured results
and a ``format_report(...)`` helper that prints the measurement next to
the paper's published numbers.  The ``benchmarks/`` directory wraps these
with pytest-benchmark; the functions are equally usable from a notebook
or script.

| Module                  | Paper artefact                     |
|-------------------------|------------------------------------|
| table2_statistics       | Table 2 (net statistics)           |
| coverage                | §7.1 (75% vs 30% needs coverage)   |
| mining_yield            | §7.2 (candidates/accepted per round)|
| fig9_negatives          | Figure 9 left (MAP vs N)           |
| active_learning         | Table 3 + Figure 9 right           |
| table4_classification   | Table 4 (classifier ablation)      |
| table5_tagging          | Table 5 (tagger ablation)          |
| table6_matching         | Table 6 (matcher comparison)       |
| search_relevance        | §8.1.1 (isA improves relevance)    |
"""

from .common import ExperimentWorld, build_experiment_world

__all__ = ["ExperimentWorld", "build_experiment_world"]
