"""Experiment T4 — Table 4: e-commerce concept classification ablation.

Paper rows (precision on a balanced test set):

    Baseline (LSTM + Self Attention)   0.870
    +Wide                              0.900
    +Wide & BERT                       0.915
    +Wide & BERT & Knowledge           0.935
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..concepts.classifier import ConceptClassifier, lexicon_ner_lookup
from ..concepts.features import WideFeatureExtractor
from ..nlp.vocab import Vocab
from ..synth.world import ConceptSpec
from ..utils.rng import spawn_rng
from .common import ExperimentWorld, format_rows

PAPER = {
    "baseline": 0.870,
    "+wide": 0.900,
    "+wide&bert": 0.915,
    "+wide&bert&knowledge": 0.935,
}

CONFIGS = (
    ("baseline", dict(use_wide=False, use_ppl=False, use_knowledge=False)),
    ("+wide", dict(use_wide=True, use_ppl=False, use_knowledge=False)),
    ("+wide&bert", dict(use_wide=True, use_ppl=True, use_knowledge=False)),
    ("+wide&bert&knowledge",
     dict(use_wide=True, use_ppl=True, use_knowledge=True)),
)


@dataclass
class ClassificationAblation:
    metrics: dict[str, dict[str, float]]  # config -> evaluate() output

    def precision(self, config: str) -> float:
        return self.metrics[config]["precision"]


def _violated_rule(ew: ExperimentWorld, spec: ConceptSpec) -> str:
    """The compatibility rule instance an implausible candidate violates."""
    return ew.world.compatible(spec.parts)[1]


def _split_bad(ew: ExperimentWorld, bad_pool: list[ConceptSpec],
               n_each: tuple[int, int],
               implausible_share: float) -> tuple[list[ConceptSpec],
                                                  list[ConceptSpec]]:
    """Train/test bad splits with *disjoint implausibility rule instances*.

    At Alibaba scale the classifier meets commonsense violations it never
    saw labelled — exactly what external knowledge is for.  At our scale
    the rule tables are small, so unless instances are held out, text
    models simply memorise the bad pairs and the knowledge ablation
    cannot show.  Instances are split by a stable hash of the violated
    rule string.
    """
    n_train, n_test = n_each
    implausible = [s for s in bad_pool if s.defect == "implausible"]
    other = [s for s in bad_pool if s.defect != "implausible"]
    train_rules = [s for s in implausible
                   if zlib.crc32(_violated_rule(ew, s).encode()) % 2 == 0]
    test_rules = [s for s in implausible
                  if zlib.crc32(_violated_rule(ew, s).encode()) % 2 == 1]
    n_impl_train = int(n_train * implausible_share)
    n_impl_test = int(n_test * implausible_share)
    train = train_rules[:n_impl_train] + other[:n_train - n_impl_train]
    rest = other[n_train - n_impl_train:]
    test = test_rules[:n_impl_test] + rest[:n_test - n_impl_test]
    return train, test


def run(ew: ExperimentWorld, n_train_each: int = 150, n_test_each: int = 90,
        epochs: int = 4, implausible_share: float = 0.5,
        n_seeds: int = 3, seed_offset: int = 0) -> ClassificationAblation:
    """Train all four ablation configurations on identical splits, with
    metrics averaged over ``n_seeds`` weight initialisations."""
    rng = spawn_rng(ew.scale.seed, "table4")
    total_each = n_train_each + n_test_each
    good = ew.world.sample_good_concepts(rng, total_each)
    bad_pool = ew.world.sample_bad_concepts(rng, total_each * 3)
    bad_train, bad_test = _split_bad(ew, bad_pool,
                                     (n_train_each, n_test_each),
                                     implausible_share)
    train = good[:n_train_each] + bad_train
    test = good[n_train_each:] + bad_test
    train_texts = [s.text for s in train]
    train_labels = [int(s.good) for s in train]
    test_texts = [s.text for s in test]
    test_labels = [int(s.good) for s in test]

    vocab = Vocab.from_corpus([t.split() for t in train_texts + test_texts])
    ner_lookup, num_ner = lexicon_ner_lookup(ew.lexicon)
    sentences = ew.corpus.sentences()

    metrics: dict[str, dict[str, float]] = {}
    for name, flags in CONFIGS:
        wide = None
        if flags["use_wide"]:
            wide = WideFeatureExtractor(ew.language_model, sentences,
                                        use_perplexity=flags["use_ppl"])
        knowledge = ew.gloss_vector if flags["use_knowledge"] else None
        runs: list[dict[str, float]] = []
        for seed_index in range(n_seeds):
            seed = ew.scale.seed + seed_offset + 53 * seed_index
            model = ConceptClassifier(
                vocab, ew.pos_tagger, ner_lookup, num_ner,
                wide_extractor=wide, knowledge_lookup=knowledge,
                gloss_kb=ew.gloss_kb if flags["use_knowledge"] else None,
                knowledge_dim=ew.gloss_doc2vec.dim,
                word_dim=ew.scale.embedding_dim, char_dim=6,
                hidden_dim=ew.scale.hidden_dim, seed=seed)
            model.fit(train_texts, train_labels, epochs=epochs, lr=0.015,
                      seed=seed)
            runs.append(model.evaluate(test_texts, test_labels))
        metrics[name] = {key: float(sum(r[key] for r in runs) / len(runs))
                         for key in runs[0]}
    return ClassificationAblation(metrics=metrics)


def format_report(result: ClassificationAblation) -> str:
    rows = []
    for name, _ in CONFIGS:
        m = result.metrics[name]
        rows.append((name, f"{m['precision']:.3f}", f"{m['accuracy']:.3f}",
                     f"{PAPER[name]:.3f}"))
    return format_rows(
        "Table 4 — concept classification ablation",
        ("model", "precision", "accuracy", "paper precision"),
        rows, paper_note="each added component improves precision")
