"""Experiment T2 — Table 2: statistics of the constructed net."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import RunScale
from ..kg.stats import StoreStats
from ..pipeline.build import build_alicoco, BuildResult

#: The paper's headline numbers (for side-by-side reporting only; the
#: reproduction runs at synthetic scale).
PAPER = {
    "primitive_concepts": 2_853_276,
    "ecommerce_concepts": 5_262_063,
    "items": "3 billion",
    "avg_primitive_per_item": 14,
    "avg_ecommerce_per_item": 135,
    "linked_item_fraction": 0.98,
}


@dataclass
class Table2Result:
    stats: StoreStats
    build: BuildResult


def run(scale: RunScale, n_concepts: int | None = None) -> Table2Result:
    """Build the net and collect its statistics."""
    build = build_alicoco(scale, n_concepts=n_concepts)
    return Table2Result(stats=build.store.stats(), build=build)


def format_report(result: Table2Result) -> str:
    stats = result.stats
    lines = [
        "Table 2 — AliCoCo statistics (reproduction scale vs paper)",
        f"{'row':<30}{'ours':>12}  {'paper':>12}",
        f"{'# primitive concepts':<30}{stats.primitive_concepts:>12}  "
        f"{PAPER['primitive_concepts']:>12}",
        f"{'# e-commerce concepts':<30}{stats.ecommerce_concepts:>12}  "
        f"{PAPER['ecommerce_concepts']:>12}",
        f"{'# items':<30}{stats.items:>12}  {PAPER['items']:>12}",
        f"{'items linked':<30}{stats.linked_item_fraction:>11.1%}  "
        f"{PAPER['linked_item_fraction']:>11.1%}",
        f"{'avg primitive cpts / item':<30}"
        f"{stats.avg_primitive_per_item:>12.1f}  "
        f"{PAPER['avg_primitive_per_item']:>12}",
        f"{'avg e-commerce cpts / item':<30}"
        f"{stats.avg_ecommerce_per_item:>12.1f}  "
        f"{PAPER['avg_ecommerce_per_item']:>12}",
        "",
        stats.summary(),
    ]
    return "\n".join(lines)
