"""Experiment S8.2 — cognitive recommendation vs. item-based CF.

Section 8.2.1 reports that concept-card recommendation "has already gone
into production ... with high click-through rate" and that "this new form
of recommendation brings more novelty and further improve user
satisfaction".  Offline stand-ins:

- *need hit rate@k* — does the top-k list contain items the user's latent
  scenario actually needs? (satisfaction proxy);
- *novelty* — share of recommended items lexically unrelated to the
  history (the survey's novelty claim);
- *explainability* — share of recommendations carrying a concept-level
  reason rather than "similar to items you viewed".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps.recommend import CognitiveRecommender, ItemCFRecommender
from ..apps.reasons import recommendation_reason
from ..config import RunScale
from ..pipeline.build import build_alicoco
from ..synth.sessions import cf_training_sessions, simulate_sessions
from ..utils.rng import spawn_rng
from .common import format_rows

PAPER_NOTE = ("production CTR/GMV high; user survey reports more novelty "
              "and satisfaction")


@dataclass
class RecommenderScores:
    hit_rate: float
    novelty: float
    explained: float


@dataclass
class RecommendationComparison:
    item_cf: RecommenderScores
    cognitive: RecommenderScores
    cf_novel_need_hit: float
    cognitive_novel_need_hit: float
    users: int


def run(scale: RunScale, n_train_users: int = 60, n_test_users: int = 40,
        top_k: int = 8,
        novel_need_fraction: float = 0.4) -> RecommendationComparison:
    """Build the net, simulate users, compare both recommenders.

    A ``novel_need_fraction`` share of the anchor concepts is excluded
    from CF's training logs — the paper's critique is exactly that CF
    "prevents the recommender system from jumping out of historical
    behaviors"; needs never seen in the logs expose it.
    """
    built = build_alicoco(scale)
    rng = spawn_rng(scale.seed, "recommendation")
    texts = sorted(built.concept_ids)
    rng.shuffle(texts)
    cut = int(len(texts) * (1.0 - novel_need_fraction))
    seen_needs = set(texts[:cut])
    novel_needs = set(texts[cut:])

    train_sessions = simulate_sessions(built.store, built.concept_ids, rng,
                                       n_users=n_train_users,
                                       allowed_needs=seen_needs)
    test_sessions = simulate_sessions(built.store, built.concept_ids, rng,
                                      n_users=n_test_users)
    cf = ItemCFRecommender(cf_training_sessions(train_sessions))
    cognitive = CognitiveRecommender(built.store, card_items=top_k)
    novel_cf_hits: list[bool] = []
    novel_cog_hits: list[bool] = []

    cf_hits = cf_novel = cf_explained = 0.0
    cog_hits = cog_novel = cog_explained = 0.0
    for session in test_sessions:
        future = set(session.future)

        cf_recs = cf.recommend(session.history, top_k=top_k)
        cf_hits += bool(future & set(cf_recs))
        cf_novel += cognitive.novelty(session.history, cf_recs)
        cf_explained += _explained_share(built.store, cf_recs,
                                         session.history)

        cards = cognitive.recommend_cards(session.history, top_k=2)
        cog_recs = [item.id for card in cards
                    for item in card.items][:top_k]
        cog_hits += bool(future & set(cog_recs))
        cog_novel += cognitive.novelty(session.history, cog_recs)
        cog_explained += _explained_share(built.store, cog_recs,
                                          session.history)
        if session.need_text in novel_needs:
            novel_cf_hits.append(bool(future & set(cf_recs)))
            novel_cog_hits.append(bool(future & set(cog_recs)))

    n = len(test_sessions)
    return RecommendationComparison(
        item_cf=RecommenderScores(cf_hits / n, cf_novel / n,
                                  cf_explained / n),
        cognitive=RecommenderScores(cog_hits / n, cog_novel / n,
                                    cog_explained / n),
        cf_novel_need_hit=float(np.mean(novel_cf_hits)) if novel_cf_hits else 0.0,
        cognitive_novel_need_hit=(float(np.mean(novel_cog_hits))
                                  if novel_cog_hits else 0.0),
        users=n)


def _explained_share(store, recommendations: list[str],
                     history: list[str]) -> float:
    """Share of recommendations with a concept-level reason."""
    if not recommendations:
        return 0.0
    explained = sum(
        1 for item_id in recommendations
        if not recommendation_reason(store, item_id, history)
        .startswith("similar to"))
    return explained / len(recommendations)


def format_report(result: RecommendationComparison) -> str:
    rows = [
        ("item CF [24]", f"{result.item_cf.hit_rate:.1%}",
         f"{result.item_cf.novelty:.1%}", f"{result.item_cf.explained:.1%}"),
        ("cognitive (ours)", f"{result.cognitive.hit_rate:.1%}",
         f"{result.cognitive.novelty:.1%}",
         f"{result.cognitive.explained:.1%}"),
    ]
    table = format_rows(
        f"S8.2.1 — recommendation comparison over {result.users} users",
        ("recommender", "need hit@8", "novelty", "explainable"),
        rows, paper_note=PAPER_NOTE)
    novel = format_rows(
        "need hit@8 on needs absent from the CF training logs",
        ("recommender", "novel-need hit@8"),
        [("item CF [24]", f"{result.cf_novel_need_hit:.1%}"),
         ("cognitive (ours)", f"{result.cognitive_novel_need_hit:.1%}")],
        paper_note="CF cannot jump out of historical behaviors")
    return table + "\n\n" + novel
