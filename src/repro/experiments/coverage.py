"""Experiment S7.1 — user-needs coverage: AliCoCo vs the former ontology.

The paper: "AliCoCo covers over 75% of shopping needs on average in
continuous 30 days, while this number is only 30% for the former
ontology."
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.coverage import (
    alicoco_vocabulary, CoverageEvaluator, CoverageReport, cpv_vocabulary,
)
from .common import ExperimentWorld, format_rows

PAPER = {"alicoco": 0.75, "cpv": 0.30}


@dataclass
class CoverageResult:
    alicoco: CoverageReport
    cpv: CoverageReport


def run(ew: ExperimentWorld) -> CoverageResult:
    """Evaluate both vocabularies on the same query stream."""
    queries = ew.corpus.queries
    concept_texts = [spec.text for spec in ew.concepts]
    alicoco = CoverageEvaluator(
        alicoco_vocabulary(ew.lexicon, concept_texts), "AliCoCo")
    cpv = CoverageEvaluator(cpv_vocabulary(ew.lexicon), "former CPV ontology")
    return CoverageResult(alicoco=alicoco.evaluate(queries),
                          cpv=cpv.evaluate(queries))


def format_report(result: CoverageResult) -> str:
    rows = []
    for report, paper in ((result.alicoco, PAPER["alicoco"]),
                          (result.cpv, PAPER["cpv"])):
        rows.append((report.name, f"{report.query_coverage:.1%}",
                     f"{report.token_coverage:.1%}", f"{paper:.0%}"))
    table = format_rows(
        "S7.1 — coverage of user needs (query stream)",
        ("ontology", "needs covered", "token coverage", "paper"),
        rows, paper_note="AliCoCo ~75% vs former ontology ~30%")
    families = sorted(result.alicoco.by_family)
    family_rows = [(family,
                    f"{result.alicoco.by_family.get(family, 0):.1%}",
                    f"{result.cpv.by_family.get(family, 0):.1%}")
                   for family in families]
    breakdown = format_rows("by query family", ("family", "AliCoCo", "CPV"),
                            family_rows)
    return table + "\n\n" + breakdown
