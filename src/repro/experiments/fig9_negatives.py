"""Experiment F9L — Figure 9 (left): MAP vs negative-sample ratio N.

The paper sweeps the ratio of negatives per positive during projection-
model training and finds MAP "improves and achieves best around 100".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hypernym.dataset import build_dataset
from ..hypernym.projection import ProjectionModel
from ..utils.rng import spawn_rng
from .common import ExperimentWorld, format_rows

PAPER_SHAPE = "MAP rises with N and peaks around N=100"


@dataclass
class NegativeSweepResult:
    points: list[tuple[int, float]]  # (N, test MAP)

    def best_n(self) -> int:
        return max(self.points, key=lambda point: point[1])[0]


def run(ew: ExperimentWorld, ratios: tuple[int, ...] = (1, 5, 10, 20, 40, 80),
        epochs: int = 12, k_layers: int = 4,
        n_seeds: int = 3) -> NegativeSweepResult:
    """Train projection models per negative ratio; MAP averaged over seeds
    (tiny models are noisy, the paper averages over a huge test set)."""
    points: list[tuple[int, float]] = []
    for ratio in ratios:
        maps = []
        for seed_index in range(n_seeds):
            rng = spawn_rng(ew.scale.seed, "fig9", str(ratio),
                            str(seed_index))
            dataset = build_dataset(ew.lexicon, rng,
                                    negatives_per_positive=ratio)
            model = ProjectionModel(ew.phrase_vector,
                                    dim=ew.scale.embedding_dim,
                                    k_layers=k_layers,
                                    seed=ew.scale.seed + seed_index)
            model.fit(dataset.train, epochs=epochs,
                      seed=ew.scale.seed + seed_index)
            metrics = model.evaluate(dataset, seed=ew.scale.seed)
            maps.append(metrics["map"])
        points.append((ratio, float(sum(maps) / len(maps))))
    return NegativeSweepResult(points=points)


def format_report(result: NegativeSweepResult) -> str:
    rows = [(n, f"{map_score:.4f}") for n, map_score in result.points]
    return format_rows("Figure 9 (left) — MAP vs negative ratio N",
                       ("N", "MAP"), rows, paper_note=PAPER_SHAPE)
