"""Experiment S8.1 — search relevance with isA knowledge.

The paper: AliCoCo's 10x larger isA data "improves the performance of the
semantic matching model by 1% on AUC" and drops relevance bad cases by 4%.
We measure the relevance AUC of query-item pairs with and without isA
expansion over the built net.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..apps.search import SemanticSearchEngine
from ..pipeline.build import build_alicoco, BuildResult
from ..config import RunScale
from ..utils.metrics import roc_auc
from ..utils.rng import spawn_rng
from .common import format_rows

PAPER = {"auc_gain": 0.01, "bad_case_drop": 0.04}


@dataclass
class RelevanceResult:
    auc_with_isa: float
    auc_without_isa: float
    bad_cases_with: int
    bad_cases_without: int

    @property
    def auc_gain(self) -> float:
        return self.auc_with_isa - self.auc_without_isa


def _relevance_pairs(build: BuildResult, rng: np.random.Generator,
                     n_pairs: int) -> list[tuple[str, str, int]]:
    """(query, item node id, relevant) pairs with ground truth.

    Relevant pairs query an item's category *head or cover hypernym*
    (vocabulary-gap cases included); irrelevant pairs query an unrelated
    category.
    """
    lexicon = build.lexicon
    hypernym_of = dict(lexicon.hypernym_pairs("Category"))
    items = build.corpus.items
    pairs: list[tuple[str, str, int]] = []
    categories = lexicon.domain_surfaces("Category")
    for _ in range(n_pairs):
        item = items[int(rng.integers(len(items)))]
        node_id = build.item_ids[item.index]
        if rng.random() < 0.5:
            query = item.category
            if rng.random() < 0.5:
                query = hypernym_of.get(item.category, item.head)
            pairs.append((query, node_id, 1))
        else:
            other = categories[int(rng.integers(len(categories)))]
            if other == item.category or \
                    hypernym_of.get(other) == item.category or \
                    hypernym_of.get(item.category) == other or \
                    other.endswith(item.head):
                continue
            pairs.append((other, node_id, 0))
    return pairs


def run(scale: RunScale, n_pairs: int = 800) -> RelevanceResult:
    """Score relevance pairs with and without isA expansion."""
    build = build_alicoco(scale)
    rng = spawn_rng(scale.seed, "relevance")
    pairs = _relevance_pairs(build, rng, n_pairs)
    with_isa = SemanticSearchEngine(build.store, use_isa_expansion=True)
    without = SemanticSearchEngine(build.store, use_isa_expansion=False)

    labels = [label for _, _, label in pairs]
    scores_with = [with_isa.relevance(q, build.store.get(i))
                   for q, i, _ in pairs]
    scores_without = [without.relevance(q, build.store.get(i))
                      for q, i, _ in pairs]
    # A "bad case" is a truly relevant pair scored as fully irrelevant.
    bad_with = sum(1 for (_, _, label), score in zip(pairs, scores_with)
                   if label == 1 and score == 0.0)
    bad_without = sum(1 for (_, _, label), score in zip(pairs, scores_without)
                      if label == 1 and score == 0.0)
    return RelevanceResult(
        auc_with_isa=roc_auc(labels, scores_with),
        auc_without_isa=roc_auc(labels, scores_without),
        bad_cases_with=bad_with, bad_cases_without=bad_without)


def format_report(result: RelevanceResult) -> str:
    rows = [
        ("without isA", f"{result.auc_without_isa:.4f}",
         result.bad_cases_without),
        ("with isA", f"{result.auc_with_isa:.4f}", result.bad_cases_with),
        ("delta", f"{result.auc_gain:+.4f}",
         result.bad_cases_with - result.bad_cases_without),
    ]
    return format_rows(
        "S8.1.1 — search relevance with AliCoCo isA data",
        ("setting", "AUC", "bad cases"),
        rows, paper_note="+1% AUC offline; -4% relevance bad cases online")
