"""Scaling study: construction cost and net statistics vs catalog size.

Not a paper table, but the paper's deployment story (billions of items,
98% linked) raises the obvious systems question: how do build time and
relation counts grow with the catalog?  Linear-ish growth in items and
item-relations validates that the construction pipeline has no
super-linear bottleneck at reproduction scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from ..config import RunScale
from ..pipeline.build import build_alicoco
from .common import format_rows


@dataclass(frozen=True)
class ScalePoint:
    """Measurements for one catalog size.

    ``match_seconds`` / ``isa_seconds`` come from the build's stage
    timers and isolate the two construction hot paths (item-concept
    matching and concept-isA discovery) from corpus generation.
    """

    n_items: int
    build_seconds: float
    relations_total: int
    item_relations: int
    linked_fraction: float
    match_seconds: float = 0.0
    isa_seconds: float = 0.0


@dataclass
class ScalingResult:
    points: list[ScalePoint]

    def items_axis(self) -> list[int]:
        return [p.n_items for p in self.points]


def run(base: RunScale, item_counts: tuple[int, ...] = (60, 120, 240, 480),
        n_concepts: int = 60,
        use_candidate_index: bool = True) -> ScalingResult:
    """Build the net at several catalog sizes and record cost/shape.

    Args:
        use_candidate_index: Route the build through the inverted
            candidate indexes (default); ``False`` measures the
            brute-force all-pairs path for comparison.
    """
    points: list[ScalePoint] = []
    for n_items in item_counts:
        scale = replace(base, n_items=n_items)
        start = time.perf_counter()
        built = build_alicoco(scale, n_concepts=n_concepts,
                              use_candidate_index=use_candidate_index)
        elapsed = time.perf_counter() - start
        stats = built.store.stats()
        points.append(ScalePoint(
            n_items=n_items, build_seconds=elapsed,
            relations_total=stats.relations_total,
            item_relations=stats.item_primitive + stats.item_ecommerce,
            linked_fraction=stats.linked_item_fraction,
            match_seconds=built.timings.seconds("item-matching"),
            isa_seconds=built.timings.seconds("concept-isa")))
    return ScalingResult(points=points)


def format_report(result: ScalingResult) -> str:
    rows = [(p.n_items, f"{p.build_seconds:.2f}s",
             f"{p.match_seconds * 1e3:.0f}ms", f"{p.isa_seconds * 1e3:.1f}ms",
             p.relations_total, p.item_relations, f"{p.linked_fraction:.0%}")
            for p in result.points]
    return format_rows(
        "Scaling — construction cost vs catalog size",
        ("items", "build time", "match stage", "isA stage", "relations",
         "item relations", "linked"),
        rows,
        paper_note="the paper links 98% of >3B items; growth must stay "
                   "linear-ish in the catalog (matching runs indexed "
                   "retrieval-then-verify)")
