"""Experiment T5 — Table 5: e-commerce concept tagging ablation.

Paper rows (P / R / F1):

    Baseline (BiLSTM + CRF)      0.8573 / 0.8474 / 0.8523
    +Fuzzy CRF                   0.8731 / 0.8665 / 0.8703
    +Fuzzy CRF & Knowledge       0.8796 / 0.8748 / 0.8772
"""

from __future__ import annotations

from dataclasses import dataclass

from ..concepts.tagging import build_text_matrix, ConceptTagger
from ..nlp.vocab import Vocab
from ..synth.world import ConceptPart, ConceptSpec
from ..utils.rng import spawn_rng
from .common import ExperimentWorld, format_rows


def distant_gold(ew: ExperimentWorld, spec: ConceptSpec) -> ConceptSpec:
    """Distant-supervision view of a concept's gold labels (Section 5.3).

    The paper enlarges tagging data by distant supervision: ambiguous
    surfaces get a single arbitrary sense from the lexicon (the real
    intent is unknown without annotation).  The strict CRF is forced to
    learn that arbitrary label; the fuzzy CRF trains over all valid
    senses — which is exactly Figure 7's point.
    """
    parts = []
    changed = False
    for part in spec.parts:
        domains = sorted(set(ew.lexicon.domains_of(part.surface)))
        if len(domains) > 1 and domains[0] != part.domain:
            parts.append(ConceptPart(part.surface, domains[0]))
            changed = True
        else:
            parts.append(part)
    if not changed:
        return spec
    return ConceptSpec(spec.text, tuple(parts), spec.pattern, spec.good)

PAPER = {
    "baseline": (0.8573, 0.8474, 0.8523),
    "+fuzzy": (0.8731, 0.8665, 0.8703),
    "+fuzzy&knowledge": (0.8796, 0.8748, 0.8772),
}

CONFIGS = (
    ("baseline", dict(use_fuzzy=False, use_knowledge=False)),
    ("+fuzzy", dict(use_fuzzy=True, use_knowledge=False)),
    ("+fuzzy&knowledge", dict(use_fuzzy=True, use_knowledge=True)),
)


@dataclass
class TaggingAblation:
    metrics: dict[str, dict[str, float]]

    def f1(self, config: str) -> float:
        return self.metrics[config]["f1"]


def run(ew: ExperimentWorld, n_train: int = 110, n_test: int = 70,
        epochs: int = 2, ambiguity_boost: int = 3,
        held_out_fraction: float = 0.18, n_seeds: int = 3) -> TaggingAblation:
    """Train the three ablation configurations on identical splits; metrics
    averaged over ``n_seeds`` weight initialisations.

    Two difficulty sources mirror the paper's setting:

    - ``ambiguity_boost`` replicates test concepts containing ambiguous
      surfaces ("village"), where the fuzzy CRF's multi-path training
      pays off;
    - ``held_out_fraction`` of concept words never occur in tagger
      training but do occur in the *corpus*, so only the text-augmented
      (knowledge) channel carries usable evidence for them — the paper's
      motivation for mapping words back to the corpus.
    """
    rng = spawn_rng(ew.scale.seed, "table5")
    specs = ew.world.sample_good_concepts(rng, 2 * (n_train + n_test))

    content_words = sorted({token for spec in specs
                            for part in spec.parts
                            for token in part.surface.split()})
    rng.shuffle(content_words)
    held_out = set(content_words[:int(len(content_words) * held_out_fraction)])

    def has_held_out(spec) -> bool:
        return any(token in held_out for token in spec.tokens)

    train_pool = [s for s in specs if not has_held_out(s)]
    test_pool = [s for s in specs if has_held_out(s)]
    # Training labels come from distant supervision (ambiguous surfaces get
    # an arbitrary sense); evaluation uses the true intended senses.
    train = [distant_gold(ew, s) for s in train_pool[:n_train]]
    test = (test_pool + [s for s in train_pool[n_train:]])[:n_test]

    def is_hard(spec) -> bool:
        """An ambiguous surface whose intended sense differs from the
        arbitrary distant-supervision sense — Figure 7's cases."""
        return distant_gold(ew, spec) is not spec

    extra_hard = [s for s in specs if is_hard(s) and s not in train][:12]
    ambiguous_test = [s for s in test + extra_hard
                      if any(ew.lexicon.is_ambiguous(t) for t in s.tokens)]
    test = test + extra_hard + ambiguous_test * ambiguity_boost

    sentences = ew.corpus.sentences() + [list(s.tokens) for s in specs]
    vocab = Vocab.from_corpus(sentences)
    words = {w for s in specs for w in s.tokens}
    text_matrix = build_text_matrix(sentences, words,
                                    dim=ew.gloss_doc2vec.dim,
                                    seed=ew.scale.seed)

    metrics: dict[str, dict[str, float]] = {}
    for name, flags in CONFIGS:
        runs: list[dict[str, float]] = []
        for seed_index in range(n_seeds):
            model = ConceptTagger(
                vocab, ew.lexicon, ew.pos_tagger,
                text_matrix=text_matrix if flags["use_knowledge"] else None,
                text_dim=ew.gloss_doc2vec.dim, use_fuzzy=flags["use_fuzzy"],
                word_dim=ew.scale.embedding_dim, char_dim=6,
                hidden_dim=ew.scale.hidden_dim,
                seed=ew.scale.seed + 31 * seed_index)
            model.fit(train, epochs=epochs, lr=0.015,
                      seed=ew.scale.seed + 31 * seed_index)
            runs.append(model.evaluate(test))
        metrics[name] = {key: float(sum(r[key] for r in runs) / len(runs))
                         for key in runs[0]}
    return TaggingAblation(metrics=metrics)


def format_report(result: TaggingAblation) -> str:
    rows = []
    for name, _ in CONFIGS:
        m = result.metrics[name]
        paper_p, paper_r, paper_f1 = PAPER[name]
        rows.append((name, f"{m['precision']:.4f}", f"{m['recall']:.4f}",
                     f"{m['f1']:.4f}", f"{paper_f1:.4f}"))
    return format_rows(
        "Table 5 — concept tagging ablation",
        ("model", "precision", "recall", "F1", "paper F1"),
        rows, paper_note="fuzzy CRF then knowledge each improve F1")
