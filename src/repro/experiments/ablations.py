"""Extra ablations for design choices DESIGN.md calls out.

Not tables in the paper, but experiments the paper's design implies:

- ``ucs_alpha`` — Algorithm 1's α mixes uncertainty and high-confidence
  sampling; the paper fixes one value, we sweep it.
- ``distant_filter`` — Section 7.2 keeps only perfectly-matched sentences
  for distant supervision; we measure discovery with and without that
  filter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.coverage import alicoco_vocabulary, CoverageEvaluator
from ..hypernym.active import ActiveLearner
from ..hypernym.dataset import build_dataset, unlabeled_pool
from ..mining.bilstm_crf import BiLSTMCRFMiner, LabelSet
from ..mining.distant import DistantSupervisionBuilder
from ..nlp.phrase_mining import PhraseMiner
from ..nlp.vocab import Vocab
from ..utils.rng import spawn_rng
from .common import ExperimentWorld, format_rows


# --------------------------------------------------------------- UCS alpha
@dataclass
class AlphaSweepResult:
    points: list[tuple[float, float, int]]  # (alpha, best MAP, labels used)


def run_ucs_alpha(ew: ExperimentWorld,
                  alphas: tuple[float, ...] = (0.3, 0.5, 0.7, 0.9),
                  pool_size: int = 600,
                  k_per_iteration: int = 60) -> AlphaSweepResult:
    """Sweep the UCS mixing weight α."""
    rng = spawn_rng(ew.scale.seed, "ucs-alpha")
    dataset = build_dataset(ew.lexicon, rng, negatives_per_positive=10,
                            test_fraction=0.3)
    pool = unlabeled_pool(ew.lexicon, rng, pool_size, positive_boost=0.12,
                          deceptive_rate=0.25)
    truth = set(ew.lexicon.hypernym_pairs("Category"))
    points = []
    for alpha in alphas:
        learner = ActiveLearner(
            ew.phrase_vector, dim=ew.scale.embedding_dim,
            label_fn=lambda a, b: (a, b) in truth, dataset=dataset,
            k_per_iteration=k_per_iteration, alpha=alpha, patience=2,
            seed=ew.scale.seed, epochs=12, k_layers=3)
        result = learner.run(list(pool), "ucs", max_iterations=6)
        points.append((alpha, result.best_map, result.labels_used))
    return AlphaSweepResult(points=points)


def format_ucs_alpha(result: AlphaSweepResult) -> str:
    rows = [(f"{alpha:.1f}", f"{map_score:.4f}", labels)
            for alpha, map_score, labels in result.points]
    return format_rows(
        "Ablation — UCS mixing weight α (uncertain share)",
        ("alpha", "best MAP", "labels used"), rows,
        paper_note="α balances US and CS inside Algorithm 1, line 10")


# ----------------------------------------------------------- distant filter
@dataclass
class DistantFilterResult:
    with_filter: tuple[int, int]      # (train sentences, accepted concepts)
    without_filter: tuple[int, int]


def run_distant_filter(ew: ExperimentWorld,
                       max_sentences: int = 900) -> DistantFilterResult:
    """Train the miner with and without the perfect-match filter and count
    verified discoveries of held-out concepts."""
    sentences = ew.corpus.sentences()[:max_sentences]
    rng = spawn_rng(ew.scale.seed, "distant-filter")
    surfaces = ew.lexicon.surfaces()
    rng.shuffle(surfaces)
    cut = int(len(surfaces) * 0.7)
    known = set(surfaces[:cut])
    truth: dict[str, set[str]] = {}
    for entry in ew.lexicon.entries:
        truth.setdefault(entry.surface, set()).add(entry.domain)

    outcomes = {}
    for require_full in (True, False):
        builder = DistantSupervisionBuilder(ew.lexicon, known_surfaces=known,
                                            require_full_coverage=require_full)
        tagged, _ = builder.build(sentences)
        vocab = Vocab.from_corpus(sentences)
        label_set = LabelSet.from_data(tagged)
        miner = BiLSTMCRFMiner(vocab, label_set,
                               embedding_dim=ew.scale.embedding_dim,
                               hidden_dim=ew.scale.hidden_dim,
                               seed=ew.scale.seed)
        miner.fit(tagged, epochs=2, seed=ew.scale.seed)
        accepted = set()
        for tokens in sentences:
            for surface, domain in miner.extract_spans(tokens):
                if surface not in known and domain in truth.get(surface, ()):
                    accepted.add((surface, domain))
        outcomes[require_full] = (len(tagged), len(accepted))
    return DistantFilterResult(with_filter=outcomes[True],
                               without_filter=outcomes[False])


# ----------------------------------------------------- concept sources
@dataclass
class ConceptSourceResult:
    """Scenario-query coverage per concept source (Section 5.2.1)."""

    generation_only: float
    mining_only: float
    both: float


def run_concept_sources(ew: ExperimentWorld,
                        mined_top_k: int = 150) -> ConceptSourceResult:
    """Coverage contribution of the two candidate sources.

    The paper generates e-commerce concepts both by mining text and by
    combining primitive concepts through patterns, arguing the pattern
    route reaches combinations "not easy to be mined from texts".  This
    ablation measures scenario-query coverage with each source alone.
    """
    scenario_queries = [q for q in ew.corpus.queries
                        if q.family in ("scenario", "problem")]
    generated_texts = [spec.text for spec in ew.concepts]
    miner = PhraseMiner(max_length=4, min_frequency=3)
    mined_texts = [phrase.text for phrase
                   in miner.mine(ew.corpus.sentences(), top_k=mined_top_k)]

    def coverage(concept_texts: list[str]) -> float:
        evaluator = CoverageEvaluator(
            alicoco_vocabulary(ew.lexicon, concept_texts), "ablate")
        return evaluator.evaluate(scenario_queries).query_coverage

    return ConceptSourceResult(generation_only=coverage(generated_texts),
                               mining_only=coverage(mined_texts),
                               both=coverage(generated_texts + mined_texts))


def format_concept_sources(result: ConceptSourceResult) -> str:
    rows = [
        ("pattern combination only", f"{result.generation_only:.1%}"),
        ("corpus mining only", f"{result.mining_only:.1%}"),
        ("both sources", f"{result.both:.1%}"),
    ]
    return format_rows(
        "Ablation — concept candidate sources (§5.2.1)",
        ("source", "scenario-needs coverage"), rows,
        paper_note="patterns reach combinations text mining cannot")


def format_distant_filter(result: DistantFilterResult) -> str:
    rows = [
        ("perfect-match only (paper)", result.with_filter[0],
         result.with_filter[1]),
        ("keep partial matches", result.without_filter[0],
         result.without_filter[1]),
    ]
    return format_rows(
        "Ablation — distant-supervision sentence filter (§7.2)",
        ("training data", "train sentences", "verified discoveries"), rows,
        paper_note="partial matches teach the miner to label new words O")
