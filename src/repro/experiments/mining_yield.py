"""Experiment S7.2 — vocabulary-mining yield per round.

The paper: "In each epoch of processing 5M sentences, our mining model is
able to discover around 64K new candidate concepts on average.  After
manually checking ... around 10K correct concepts can be added into our
vocabulary in each round" — i.e. a ~16% acceptance rate and a lexicon
that keeps growing round over round.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mining.pipeline import MiningPipeline, MiningRound
from .common import ExperimentWorld, format_rows

PAPER = {"candidates_per_round": 64_000, "accepted_per_round": 10_000,
         "acceptance_rate": 10_000 / 64_000}


@dataclass
class MiningYieldResult:
    rounds: list[MiningRound]
    known_before: int


def run(ew: ExperimentWorld, rounds: int = 2, held_out_fraction: float = 0.3,
        epochs: int = 2, max_sentences: int = 1500) -> MiningYieldResult:
    """Run the mining loop over the experiment corpus."""
    pipeline = MiningPipeline(ew.lexicon,
                              held_out_fraction=held_out_fraction,
                              seed=ew.scale.seed)
    known_before = len(pipeline.known)
    sentences = ew.corpus.sentences()[:max_sentences]
    results = pipeline.run(sentences, rounds=rounds, epochs=epochs,
                           embedding_dim=ew.scale.embedding_dim,
                           hidden_dim=ew.scale.hidden_dim)
    return MiningYieldResult(rounds=results, known_before=known_before)


def format_report(result: MiningYieldResult) -> str:
    rows = []
    for round_result in result.rounds:
        rows.append((round_result.round_index,
                     round_result.train_sentences,
                     len(round_result.candidates),
                     len(round_result.accepted),
                     f"{round_result.acceptance_rate:.1%}",
                     round_result.known_after))
    return format_rows(
        "S7.2 — iterative vocabulary mining yield",
        ("round", "train sents", "candidates", "accepted", "accept rate",
         "known after"),
        rows,
        paper_note="~64K candidates -> ~10K accepted per round (~16%)")
