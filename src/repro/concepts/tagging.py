"""E-commerce concept tagging (Section 5.3, Figures 6-7, Table 5).

Links a mined e-commerce concept to the primitive-concept layer by
labelling each word with its domain — short-text NER.  The model is the
paper's: word features (pretrained embedding + char-CNN + POS embedding)
through a BiLSTM; each hidden state is concatenated with a *text-augmented*
embedding (Doc2vec over the word's corpus contexts) and self-attended; a
*fuzzy CRF* (Eq. 8) trains against all valid label sequences for ambiguous
words like "village" (Location or Style).

Ablation flags map to Table 5's rows:

- Baseline: ``use_fuzzy=False, text_matrix=None``
- +Fuzzy CRF: ``use_fuzzy=True``
- +Fuzzy CRF & Knowledge: additionally pass ``text_matrix``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import DataError, NotFittedError
from ..ml import (
    AdditiveSelfAttention, Adam, BiLSTM, Conv1d, Embedding, Linear, Module,
)
from ..ml.tensor import Tensor, concat, no_grad
from ..nlp.crf import LinearChainCRF
from ..nlp.doc2vec import Doc2Vec
from ..nlp.pos import PosTagger
from ..nlp.vocab import Vocab
from ..synth.lexicon import Lexicon
from ..synth.world import ConceptSpec
from ..utils.rng import spawn_rng
from .classifier import lexicon_ner_lookup  # noqa: F401  (re-export neighbour)


def build_text_matrix(corpus_sentences: list[list[str]], words: set[str],
                      dim: int = 16, window: int = 3, max_contexts: int = 20,
                      seed: int = 0) -> dict[str, np.ndarray]:
    """The TM of Figure 6: per-word Doc2vec vectors of corpus contexts.

    Each word's occurrences contribute a window of surrounding tokens; the
    concatenated windows form one document per word, encoded with PV-DBOW.
    """
    contexts: dict[str, list[str]] = {word: [] for word in words}
    counts: dict[str, int] = {word: 0 for word in words}
    for sentence in corpus_sentences:
        for position, token in enumerate(sentence):
            if token not in contexts or counts[token] >= max_contexts:
                continue
            counts[token] += 1
            lo = max(0, position - window)
            hi = min(len(sentence), position + window + 1)
            contexts[token].extend(
                sentence[i] for i in range(lo, hi) if i != position)
    ordered = sorted(word for word in contexts if contexts[word])
    documents = [contexts[word] for word in ordered]
    if not documents:
        return {}
    model = Doc2Vec(dim=dim, epochs=8, seed=seed).fit(documents)
    return {word: model.document_vector(i).copy()
            for i, word in enumerate(ordered)}


class TaggingLabels:
    """IOB label set over the lexicon's domains."""

    def __init__(self, domains: Sequence[str]):
        labels = ["O"]
        for domain in sorted(set(domains)):
            labels.append(f"B-{domain}")
            labels.append(f"I-{domain}")
        self._itos = labels
        self._stoi = {label: i for i, label in enumerate(labels)}

    def __len__(self) -> int:
        return len(self._itos)

    def id(self, label: str) -> int:
        try:
            return self._stoi[label]
        except KeyError:
            raise DataError(f"unknown tagging label {label!r}") from None

    def label(self, label_id: int) -> str:
        return self._itos[label_id]


class ConceptTagger(Module):
    """The Figure 6 model.

    Args:
        word_vocab: Vocabulary over concept words.
        lexicon: Used for the fuzzy CRF's allowed-label sets (which senses
            each surface can take).
        pos_tagger: POS feature channel.
        text_matrix: Word -> Doc2vec context vector, or ``None`` to disable
            the knowledge/text augmentation.
        text_dim: Dimension of the text-matrix vectors.
        use_fuzzy: Train with the fuzzy CRF instead of the strict CRF.
        word_dim / char_dim / hidden_dim: Widths.
        pretrained_words: Optional pretrained word-embedding matrix.
        seed: Weight-init seed.
    """

    def __init__(self, word_vocab: Vocab, lexicon: Lexicon,
                 pos_tagger: PosTagger,
                 text_matrix: dict[str, np.ndarray] | None = None,
                 text_dim: int = 16, use_fuzzy: bool = True,
                 word_dim: int = 16, char_dim: int = 8, hidden_dim: int = 12,
                 pretrained_words: np.ndarray | None = None, seed: int = 0):
        super().__init__()
        rng = spawn_rng(seed, "concept-tagger")
        self.word_vocab = word_vocab
        self.lexicon = lexicon
        self.pos_tagger = pos_tagger
        self.use_fuzzy = use_fuzzy
        self.use_knowledge = text_matrix is not None
        self._text_matrix = text_matrix or {}
        self.text_dim = text_dim
        domains = sorted({entry.domain for entry in lexicon.entries})
        self.labels = TaggingLabels(domains)

        chars = sorted({c for token in word_vocab.tokens() for c in token})
        self.char_vocab = Vocab(chars)
        self.char_embedding = Embedding(len(self.char_vocab), char_dim, rng)
        self.char_cnn = Conv1d(char_dim, char_dim, 3, rng)

        pos_dim = 4
        self.word_embedding = Embedding(len(word_vocab), word_dim, rng,
                                        pretrained=pretrained_words)
        self.pos_embedding = Embedding(PosTagger.num_tags(), pos_dim, rng)
        encoder_input = word_dim + char_dim + pos_dim
        self.encoder = BiLSTM(encoder_input, hidden_dim, rng)
        attention_input = 2 * hidden_dim + (text_dim if self.use_knowledge else 0)
        self.attention = AdditiveSelfAttention(attention_input, hidden_dim, rng)
        self.projection = Linear(attention_input, len(self.labels), rng)
        self.crf = LinearChainCRF(len(self.labels), rng)
        self._fitted = False

    # -------------------------------------------------------------- encoding
    def _char_feature(self, word: str) -> Tensor:
        ids = np.asarray([self.char_vocab.id(c) for c in word])[None, :]
        convolved = self.char_cnn(self.char_embedding(ids))
        return convolved.max(axis=1)[0]  # (char_dim,)

    def emissions(self, tokens: Sequence[str]) -> Tensor:
        """Per-token emission scores over the IOB label set."""
        if not tokens:
            raise DataError("cannot tag an empty concept")
        word_ids = np.asarray(self.word_vocab.ids(list(tokens)))[None, :]
        pos_ids = np.asarray([PosTagger.tag_id(t)
                              for t in self.pos_tagger.tag(list(tokens))])[None, :]
        char_features = concat(
            [self._char_feature(t).reshape(1, 1, -1) for t in tokens], axis=1)
        word_input = concat([self.word_embedding(word_ids), char_features,
                             self.pos_embedding(pos_ids)], axis=2)
        hidden = self.encoder(word_input)
        if self.use_knowledge:
            vectors = []
            for token in tokens:
                vector = self._text_matrix.get(token)
                if vector is None:
                    vector = np.zeros(self.text_dim)
                vectors.append(np.asarray(vector, dtype=np.float64))
            augmented = Tensor(np.stack(vectors)[None, :, :])
            hidden = concat([hidden, augmented], axis=2)
        attended = self.attention(hidden)
        return self.projection(attended)[0]

    # ------------------------------------------------------------- training
    def allowed_labels(self, tokens: Sequence[str],
                       gold: Sequence[str]) -> list[list[int]]:
        """Fuzzy allowed-label sets (Fig 7): the gold label plus, for
        surfaces with several lexicon senses, the same position in each
        alternative domain."""
        allowed: list[list[int]] = []
        for token, label in zip(tokens, gold):
            options = {self.labels.id(label)}
            if label != "O":
                prefix = label[:2]
                for entry in self.lexicon.senses(token):
                    options.add(self.labels.id(f"{prefix}{entry.domain}"))
            allowed.append(sorted(options))
        return allowed

    def loss(self, spec: ConceptSpec) -> Tensor:
        """CRF loss of one gold-tagged concept (fuzzy when enabled)."""
        tokens = list(spec.tokens)
        gold = spec.iob_labels()
        emissions = self.emissions(tokens)
        if self.use_fuzzy:
            return self.crf.fuzzy_nll(emissions,
                                      self.allowed_labels(tokens, gold))
        return self.crf.nll(emissions, [self.labels.id(label) for label in gold])

    def fit(self, specs: Sequence[ConceptSpec], epochs: int = 4,
            lr: float = 0.01, seed: int = 0) -> list[float]:
        """Train on gold-tagged concepts; returns mean loss per epoch."""
        specs = [s for s in specs if s.parts]
        if not specs:
            raise DataError("tagger needs concepts with gold parts")
        rng = spawn_rng(seed, "concept-tagger-train")
        optimizer = Adam(self.parameters(), lr=lr)
        history: list[float] = []
        for _ in range(epochs):
            order = rng.permutation(len(specs))
            total = 0.0
            for index in order:
                optimizer.zero_grad()
                loss = self.loss(specs[index])
                loss.backward()
                optimizer.clip_grad_norm(5.0)
                optimizer.step()
                total += loss.item()
            history.append(total / len(specs))
        self._fitted = True
        return history

    def predict(self, tokens: Sequence[str]) -> list[str]:
        """Viterbi-decode IOB labels for a concept."""
        if not self._fitted:
            raise NotFittedError("tagger has not been trained")
        with no_grad():
            emissions = self.emissions(tokens).numpy()
        return [self.labels.label(i) for i in self.crf.decode(emissions)]

    def evaluate(self, specs: Sequence[ConceptSpec]) -> dict[str, float]:
        """Micro span precision/recall/F1 against gold parts (Table 5)."""
        tp = fp = fn = 0
        for spec in specs:
            gold_spans = set(_spans(spec.iob_labels()))
            predicted_spans = set(_spans(self.predict(list(spec.tokens))))
            tp += len(gold_spans & predicted_spans)
            fp += len(predicted_spans - gold_spans)
            fn += len(gold_spans - predicted_spans)
        precision = tp / (tp + fp) if (tp + fp) else 0.0
        recall = tp / (tp + fn) if (tp + fn) else 0.0
        f1 = 2 * precision * recall / (precision + recall) \
            if (precision + recall) else 0.0
        return {"precision": precision, "recall": recall, "f1": f1}


def iob_spans(labels: Sequence[str]) -> list[tuple[int, int, str]]:
    """(start, stop, domain) spans of an IOB label sequence.

    Public face of the span parser — the serving layer turns predicted
    labels into linked concept mentions through this.
    """
    return _spans(labels)


def _spans(labels: Sequence[str]) -> list[tuple[int, int, str]]:
    """(start, stop, domain) spans of an IOB sequence."""
    spans: list[tuple[int, int, str]] = []
    start = -1
    domain = ""
    for position, label in enumerate(labels):
        if label.startswith("B-"):
            if start >= 0:
                spans.append((start, position, domain))
            start = position
            domain = label[2:]
        elif label.startswith("I-") and start >= 0 and label[2:] == domain:
            continue
        else:
            if start >= 0:
                spans.append((start, position, domain))
            start = -1
            domain = ""
    if start >= 0:
        spans.append((start, len(labels), domain))
    return spans


def span_f1(gold: Sequence[str], predicted: Sequence[str]) -> float:
    """Span-level F1 between two IOB sequences (helper for tests)."""
    gold_spans = set(_spans(gold))
    predicted_spans = set(_spans(predicted))
    tp = len(gold_spans & predicted_spans)
    fp = len(predicted_spans - gold_spans)
    fn = len(gold_spans - predicted_spans)
    precision = tp / (tp + fp) if (tp + fp) else 0.0
    recall = tp / (tp + fn) if (tp + fn) else 0.0
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)
