"""The five criteria of a good e-commerce concept (Section 5.1).

Four of the five are checkable with language models and heuristics
(the paper: "For the other four criteria, character-level and word-level
language models and some heuristic rules are able to meet the goal");
*plausibility* needs the knowledge-enhanced classifier.  This module
implements the heuristic four; its report feeds the Wide side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nlp.char_lm import CharTrigramModel
from ..nlp.ngram_lm import BidirectionalLanguageModel


@dataclass(frozen=True)
class CriteriaReport:
    """Outcome of the heuristic criteria checks.

    Attributes:
        has_commerce_meaning: At least one token is commerce vocabulary
            (criterion 1).
        coherent: Perplexity under the coherence threshold (criterion 2).
        clear: No conjoined same-role mentions like "kids and infants"
            (criterion 4).
        correct: Every token is a known word — typos fail (criterion 5).
        perplexity: The bidirectional perplexity used for coherence.
    """

    has_commerce_meaning: bool
    coherent: bool
    clear: bool
    correct: bool
    perplexity: float

    @property
    def passes_heuristics(self) -> bool:
        return (self.has_commerce_meaning and self.coherent and self.clear
                and self.correct)


class CriteriaChecker:
    """Heuristic checker for criteria 1, 2, 4 and 5.

    Args:
        commerce_vocabulary: Surfaces with e-commerce meaning (the known
            primitive-concept vocabulary).
        known_words: All words considered correctly spelled.
        language_model: Fitted bidirectional LM for coherence scoring.
        audience_words: Words whose conjunction makes a concept unclear.
        perplexity_threshold: Coherence cut-off.
    """

    def __init__(self, commerce_vocabulary: set[str], known_words: set[str],
                 language_model: BidirectionalLanguageModel,
                 audience_words: set[str],
                 perplexity_threshold: float = 2000.0,
                 char_model: CharTrigramModel | None = None,
                 char_perplexity_threshold: float = 14.0):
        self._commerce = set(commerce_vocabulary)
        self._known = set(known_words)
        self._lm = language_model
        self._audiences = set(audience_words)
        self._threshold = perplexity_threshold
        #: Optional char LM: an unknown word still counts as correct when
        #: its character sequence is word-like (new brand names etc.);
        #: typos spike the char perplexity instead.
        self._char_model = char_model
        self._char_threshold = char_perplexity_threshold

    def check(self, text: str) -> CriteriaReport:
        """Run the four heuristic criteria on a candidate phrase."""
        tokens = text.split()
        commerce_tokens = [t for t in tokens if t in self._commerce]
        multiword_commerce = any(
            " ".join(tokens[i:j]) in self._commerce
            for i in range(len(tokens)) for j in range(i + 2, len(tokens) + 1))
        has_meaning = bool(commerce_tokens) or multiword_commerce
        perplexity = self._lm.perplexity(tokens) if tokens else float("inf")
        coherent = perplexity < self._threshold
        clear = self._check_clarity(tokens)
        correct = all(self._token_correct(token) for token in tokens)
        return CriteriaReport(has_commerce_meaning=has_meaning,
                              coherent=coherent, clear=clear,
                              correct=correct, perplexity=perplexity)

    def _token_correct(self, token: str) -> bool:
        if token in self._known:
            return True
        if self._char_model is None:
            return False
        return self._char_model.perplexity(token) < self._char_threshold

    def _check_clarity(self, tokens: list[str]) -> bool:
        """Flags "X for kids and infants" style mixed-subject phrases."""
        for position, token in enumerate(tokens):
            if token != "and":
                continue
            before = tokens[position - 1] if position > 0 else ""
            after = tokens[position + 1] if position + 1 < len(tokens) else ""
            if before in self._audiences and after in self._audiences:
                return False
        return True
