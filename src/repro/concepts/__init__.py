"""E-commerce concepts (Section 5): generation, classification, tagging.

E-commerce concepts are short phrases describing shopping scenarios.  This
subpackage covers their lifecycle:

- :mod:`criteria` — the five quality criteria of Section 5.1;
- :mod:`generation` — candidate generation by corpus phrase mining and
  primitive-concept pattern combination (Section 5.2.1 / Table 1);
- :mod:`features` — the Wide side's pre-calculated features;
- :mod:`classifier` — the knowledge-enhanced Wide&Deep quality classifier
  (Section 5.2.2 / Figure 5 / Table 4);
- :mod:`tagging` — the text-augmented NER model with fuzzy CRF that links
  concepts to primitive concepts (Section 5.3 / Figures 6-7 / Table 5).
"""

from .criteria import CriteriaChecker, CriteriaReport
from .generation import CandidateGenerator
from .features import WideFeatureExtractor
from .classifier import ConceptClassifier
from .tagging import ConceptTagger, span_f1
from .patterns import GenerationPattern, PATTERNS

__all__ = [
    "CriteriaChecker", "CriteriaReport", "CandidateGenerator",
    "WideFeatureExtractor", "ConceptClassifier", "ConceptTagger", "span_f1",
    "GenerationPattern", "PATTERNS",
]
