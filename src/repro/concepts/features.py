"""Wide-side features for concept classification (Figure 5, left).

The paper's Wide features: number of characters and words, BERT perplexity
(our bidirectional n-gram substitute), and word popularity in e-commerce
text.  The perplexity column can be switched off to reproduce the
"+Wide" vs "+Wide & BERT" ablation rows of Table 4.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from ..nlp.ngram_lm import BidirectionalLanguageModel


class WideFeatureExtractor:
    """Extracts the fixed-size wide feature vector of a candidate phrase.

    Args:
        language_model: Fitted bidirectional LM ("BERT" perplexity).
        corpus_sentences: Corpus for word-popularity statistics.
        use_perplexity: Include the perplexity feature (the BERT column).
    """

    def __init__(self, language_model: BidirectionalLanguageModel,
                 corpus_sentences: list[list[str]],
                 use_perplexity: bool = True):
        self._lm = language_model
        self._use_ppl = use_perplexity
        counts: Counter[str] = Counter()
        for sentence in corpus_sentences:
            counts.update(sentence)
        self._counts = counts
        self._total = sum(counts.values()) or 1

    @property
    def dim(self) -> int:
        return 6 if self._use_ppl else 5

    def extract(self, text: str) -> np.ndarray:
        """Feature vector: [n_chars, n_words, mean-pop, min-pop, oov] and,
        when enabled, log-perplexity."""
        tokens = text.split()
        n_chars = len(text.replace(" ", ""))
        n_words = len(tokens)
        popularity = [self._counts.get(token, 0) / self._total
                      for token in tokens]
        mean_pop = float(np.mean(popularity)) if popularity else 0.0
        min_pop = float(np.min(popularity)) if popularity else 0.0
        oov = sum(1 for token in tokens if self._counts.get(token, 0) == 0)
        features = [n_chars / 20.0, n_words / 5.0,
                    math.log1p(mean_pop * 1e4), math.log1p(min_pop * 1e4),
                    float(oov)]
        if self._use_ppl:
            perplexity = self._lm.perplexity(tokens) if tokens else 1e9
            features.append(math.log1p(perplexity) / 10.0)
        return np.asarray(features, dtype=np.float64)

    def extract_batch(self, texts: list[str]) -> np.ndarray:
        """Stacked features, shape ``(len(texts), dim)``."""
        return np.stack([self.extract(text) for text in texts])
