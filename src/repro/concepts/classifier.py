"""Knowledge-enhanced Wide&Deep concept classifier (Section 5.2.2, Fig 5).

Deep side: a char-level BiLSTM (c1) plus a word-level module where word,
POS and NER embeddings go through a BiLSTM and self-attention; with
knowledge enabled, each word's external gloss vector (Doc2vec over the
knowledge base) goes through its own self-attention and is concatenated
before max-pooling (c2).  Wide side: pre-calculated features through two
FC layers (c3).  Final score: MLP over [c1; c2; c3], trained point-wise
with the negative log-likelihood of Eq. 3.

The ablation rows of Table 4 map to constructor flags:

- Baseline (LSTM + Self Attention): ``use_wide=False, use_knowledge=False``
- +Wide: ``use_wide=True`` with a perplexity-free feature extractor
- +Wide & BERT: ``use_wide=True`` with perplexity in the features
- +Wide & BERT & Knowledge: additionally ``use_knowledge=True``
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import DataError, NotFittedError
from ..ml import (
    AdditiveSelfAttention, Adam, BiLSTM, Embedding, MLP, Module,
)
from ..ml.losses import bce_with_logits
from ..ml.tensor import Tensor, concat, no_grad, stack
from ..nlp.pos import PosTagger
from ..nlp.vocab import Vocab
from ..utils.rng import spawn_rng
from .features import WideFeatureExtractor

KnowledgeLookup = Callable[[str], np.ndarray | None]
NerLookup = Callable[[str], int]


def lexicon_ner_lookup(lexicon) -> tuple[NerLookup, int]:
    """NER-label lookup from a lexicon: one id per domain, plus AMBIGUOUS
    and OUTSIDE.  Returns (lookup, number of labels)."""
    domains = sorted({entry.domain for entry in lexicon.entries})
    ids = {domain: i for i, domain in enumerate(domains)}
    ambiguous_id = len(domains)
    outside_id = len(domains) + 1

    def lookup(word: str) -> int:
        senses = lexicon.senses(word)
        if not senses:
            return outside_id
        sense_domains = {entry.domain for entry in senses}
        if len(sense_domains) > 1:
            return ambiguous_id
        return ids[next(iter(sense_domains))]

    return lookup, len(domains) + 2


class ConceptClassifier(Module):
    """The Figure 5 model.

    Args:
        word_vocab: Vocabulary over concept words.
        pos_tagger: POS tagger for the POS-embedding channel.
        ner_lookup: Word -> NER label id (see :func:`lexicon_ner_lookup`).
        num_ner_labels: Size of the NER label set.
        wide_extractor: Wide-feature extractor, or ``None`` to disable the
            Wide side.
        knowledge_lookup: Word -> gloss vector (or None), or ``None`` to
            disable the knowledge module.
        knowledge_dim: Dimension of gloss vectors.
        word_dim / char_dim / hidden_dim: Embedding and encoder widths.
        pretrained_words: Optional pretrained word-embedding matrix.
        seed: Weight-init seed.
    """

    def __init__(self, word_vocab: Vocab, pos_tagger: PosTagger,
                 ner_lookup: NerLookup, num_ner_labels: int,
                 wide_extractor: WideFeatureExtractor | None = None,
                 knowledge_lookup: KnowledgeLookup | None = None,
                 gloss_kb=None, knowledge_dim: int = 16, word_dim: int = 16,
                 char_dim: int = 8, hidden_dim: int = 12,
                 pretrained_words: np.ndarray | None = None, seed: int = 0):
        super().__init__()
        rng = spawn_rng(seed, "concept-classifier")
        self.word_vocab = word_vocab
        self.pos_tagger = pos_tagger
        self.ner_lookup = ner_lookup
        self.use_wide = wide_extractor is not None
        self.use_knowledge = knowledge_lookup is not None
        self._wide = wide_extractor
        self._knowledge = knowledge_lookup
        #: Optional GlossKB for symbolic commonsense checks over gloss
        #: negation markers — the reproduction's stand-in for the
        #: commonsense reasoning the paper's model learns from gloss text.
        self._gloss_kb = gloss_kb if self.use_knowledge else None
        self.knowledge_dim = knowledge_dim

        chars = sorted({c for token in word_vocab.tokens() for c in token})
        self.char_vocab = Vocab(chars + [" "])
        self.char_embedding = Embedding(len(self.char_vocab), char_dim, rng)
        self.char_lstm = BiLSTM(char_dim, hidden_dim, rng)

        pos_dim = 4
        ner_dim = 4
        self.word_embedding = Embedding(len(word_vocab), word_dim, rng,
                                        pretrained=pretrained_words)
        self.pos_embedding = Embedding(PosTagger.num_tags(), pos_dim, rng)
        self.ner_embedding = Embedding(num_ner_labels, ner_dim, rng)
        word_input = word_dim + pos_dim + ner_dim
        self.word_lstm = BiLSTM(word_input, hidden_dim, rng)
        self.word_attention = AdditiveSelfAttention(2 * hidden_dim,
                                                    hidden_dim, rng)
        deep_dim = 2 * hidden_dim
        if self.use_knowledge:
            self.knowledge_attention = AdditiveSelfAttention(
                knowledge_dim, hidden_dim, rng)
            deep_dim += knowledge_dim

        final_dim = 2 * hidden_dim + deep_dim  # c1 + c2
        if self.use_wide:
            wide_hidden = 8
            self.wide_mlp = MLP([self._wide.dim, wide_hidden, wide_hidden],
                                rng, activation="relu")
            final_dim += wide_hidden
        if self._gloss_kb is not None:
            final_dim += 2  # symbolic incompatibility features
        self.head = MLP([final_dim, hidden_dim, 1], rng, activation="tanh")
        self._fitted = False

    # ------------------------------------------------------------- encoding
    def _char_ids(self, text: str) -> np.ndarray:
        return np.asarray([self.char_vocab.id(c) for c in text])[None, :]

    def _encode(self, text: str) -> Tensor:
        """Final concatenated representation [c1; c2; (c3)] of one phrase."""
        tokens = text.split()
        if not tokens:
            raise DataError("cannot classify an empty phrase")
        # c1: char-level BiLSTM, mean-pooled.
        char_states = self.char_lstm(self.char_embedding(self._char_ids(text)))
        c1 = char_states.mean(axis=1)[0]

        # c2: knowledge-enhanced word module.
        word_ids = np.asarray(self.word_vocab.ids(tokens))[None, :]
        pos_ids = np.asarray([PosTagger.tag_id(t)
                              for t in self.pos_tagger.tag(tokens)])[None, :]
        ner_ids = np.asarray([self.ner_lookup(t) for t in tokens])[None, :]
        word_input = concat([self.word_embedding(word_ids),
                             self.pos_embedding(pos_ids),
                             self.ner_embedding(ner_ids)], axis=2)
        hidden = self.word_lstm(word_input)
        attended = self.word_attention(hidden)
        if self.use_knowledge:
            gloss_vectors = []
            for token in tokens:
                vector = self._knowledge(token)
                if vector is None:
                    vector = np.zeros(self.knowledge_dim)
                gloss_vectors.append(np.asarray(vector, dtype=np.float64))
            knowledge = Tensor(np.stack(gloss_vectors)[None, :, :])
            knowledge = self.knowledge_attention(knowledge)
            attended = concat([attended, knowledge], axis=2)
        c2 = attended.max(axis=1)[0]

        pieces = [c1, c2]
        if self.use_wide:
            wide = Tensor(self._wide.extract(text))
            pieces.append(self.wide_mlp(wide))
        if self._gloss_kb is not None:
            flag, rate = self._gloss_kb.incompatibility_features(tokens)
            pieces.append(Tensor(np.array([flag, rate])))
        return concat(pieces, axis=0)

    def logit(self, text: str) -> Tensor:
        """Pre-sigmoid quality score of one candidate."""
        return self.head(self._encode(text)).reshape(())

    # -------------------------------------------------------------- training
    def fit(self, texts: Sequence[str], labels: Sequence[int],
            epochs: int = 5, lr: float = 0.01, batch_size: int = 16,
            seed: int = 0) -> list[float]:
        """Train point-wise (Eq. 3); returns mean loss per epoch."""
        if len(texts) != len(labels):
            raise DataError("texts/labels length mismatch")
        if not texts:
            raise DataError("classifier needs training data")
        rng = spawn_rng(seed, "concept-classifier-train")
        optimizer = Adam(self.parameters(), lr=lr)
        history: list[float] = []
        for _ in range(epochs):
            order = rng.permutation(len(texts))
            total = 0.0
            batches = 0
            for start in range(0, len(texts), batch_size):
                batch = order[start:start + batch_size]
                optimizer.zero_grad()
                logits = stack([self.logit(texts[i]) for i in batch], axis=0)
                targets = np.asarray([labels[i] for i in batch], dtype=float)
                loss = bce_with_logits(logits, targets)
                loss.backward()
                optimizer.clip_grad_norm(5.0)
                optimizer.step()
                total += loss.item()
                batches += 1
            history.append(total / batches)
        self._fitted = True
        return history

    def predict_proba(self, texts: Sequence[str]) -> np.ndarray:
        """Quality probabilities for candidates (no grad)."""
        if not self._fitted:
            raise NotFittedError("classifier has not been trained")
        with no_grad():
            logits = np.asarray([self.logit(text).item() for text in texts])
        return 1.0 / (1.0 + np.exp(-logits))

    def evaluate(self, texts: Sequence[str], labels: Sequence[int],
                 threshold: float = 0.5) -> dict[str, float]:
        """Precision / recall / accuracy at a threshold (Table 4 reports
        precision on a balanced test set)."""
        probabilities = self.predict_proba(texts)
        predictions = (probabilities >= threshold).astype(int)
        gold = np.asarray(labels, dtype=int)
        tp = int(np.sum((predictions == 1) & (gold == 1)))
        fp = int(np.sum((predictions == 1) & (gold == 0)))
        fn = int(np.sum((predictions == 0) & (gold == 1)))
        precision = tp / (tp + fp) if (tp + fp) else 0.0
        recall = tp / (tp + fn) if (tp + fn) else 0.0
        accuracy = float(np.mean(predictions == gold))
        return {"precision": precision, "recall": recall,
                "accuracy": accuracy}
