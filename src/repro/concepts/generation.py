"""Candidate generation (Section 5.2.1).

Two sources, exactly as in the paper:

1. *mining raw concepts from texts* — AutoPhrase-style quality phrases from
   queries, titles, reviews and guides;
2. *combining existing primitive concepts* with mined-then-crafted patterns
   (Table 1), which reaches combinations too unusual to appear in text
   ("indoor barbecue").

Both sources emit unvetted candidates; the classifier (Section 5.2.2)
filters them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nlp.phrase_mining import PhraseMiner
from ..synth.world import ConceptSpec, World


@dataclass(frozen=True)
class GenerationReport:
    """Where the candidate pool came from."""

    mined: int
    combined: int

    @property
    def total(self) -> int:
        return self.mined + self.combined


class CandidateGenerator:
    """Produces the raw candidate pool for concept classification.

    Args:
        world: Ground-truth world (pattern combination samples from its
            primitive-concept lexicon; ground-truth labels ride along for
            the oracle, the classifier never sees them).
        min_phrase_frequency: Phrase-mining frequency floor.
    """

    def __init__(self, world: World, min_phrase_frequency: int = 3):
        self.world = world
        self._miner = PhraseMiner(max_length=4,
                                  min_frequency=min_phrase_frequency)

    def mine_from_corpus(self, sentences: list[list[str]],
                         top_k: int = 100) -> list[str]:
        """Quality phrases mined from corpus text (source 1)."""
        phrases = self._miner.mine(sentences, top_k=top_k)
        return [phrase.text for phrase in phrases]

    def combine_primitives(self, rng: np.random.Generator, n_good: int,
                           n_bad: int) -> list[ConceptSpec]:
        """Pattern-combined candidates (source 2), good and bad mixed.

        The bad share mirrors what pattern combination really produces
        before filtering: implausible combos, shuffles, typos, etc.
        """
        return self.world.sample_concepts(rng, n_good, n_bad)

    def generate(self, sentences: list[list[str]], rng: np.random.Generator,
                 n_good: int, n_bad: int,
                 mined_top_k: int = 100) -> tuple[list[ConceptSpec], list[str],
                                                  GenerationReport]:
        """Full candidate pool: combined specs plus raw mined phrases.

        Returns:
            (combined specs with ground truth, mined phrase texts, report).
        """
        combined = self.combine_primitives(rng, n_good, n_bad)
        mined = self.mine_from_corpus(sentences, top_k=mined_top_k)
        return combined, mined, GenerationReport(mined=len(mined),
                                                 combined=len(combined))
