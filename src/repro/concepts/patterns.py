"""The concept-generation patterns of Table 1.

The paper combines primitive concepts of specific classes through
"automatically mined then manually crafted patterns".  This module is the
declarative registry of the patterns the world generator implements (in
:mod:`repro.synth.world`), each with a good and a bad example in the
spirit of Table 1 — bad examples are what the Section 5.2.2 classifier
exists to filter out.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GenerationPattern:
    """One Table-1 pattern.

    Attributes:
        name: Identifier matching ``ConceptSpec.pattern``.
        template: Class-slot template in Table 1's notation.
        good_example: A plausible product of the pattern.
        bad_example: An implausible/defective product.
        generator: Name of the ``World`` method implementing it.
    """

    name: str
    template: str
    good_example: str
    bad_example: str
    generator: str


#: The pattern registry; names match ``repro.synth.world.World``'s
#: generator outputs (``ConceptSpec.pattern``).
PATTERNS: tuple[GenerationPattern, ...] = (
    GenerationPattern(
        "location-event", "[class: Location] [class: Event]",
        "outdoor barbecue", "classroom barbecue", "_gen_location_event"),
    GenerationPattern(
        "gift", "[class: Time->Holiday] gifts for [class: Audience]",
        "christmas gifts for grandpa", "gifts grandpa for christmas",
        "_gen_gift"),
    GenerationPattern(
        "function-category-event",
        "[class: Function] [class: Category] for [class: Event]",
        "warm hat for traveling", "warm sneakers for swimming",
        "_gen_func_cat_event"),
    GenerationPattern(
        "style-season-category",
        "[class: Style] [class: Time->Season] [class: Category]",
        "british-style winter trousers", "casual summer coat",
        "_gen_style_season_cat"),
    GenerationPattern(
        "event-in-location", "[class: Event->Action] in [class: Location]",
        "traveling in european", "bathing in classroom",
        "_gen_event_in_location"),
    GenerationPattern(
        "keep-function-audience",
        "keep [class: Function] for [class: Audience]",
        "keep warm for kids", "keep sexy for baby", "_gen_keep_function"),
    GenerationPattern(
        "category-audience", "[class: Category] for [class: Audience]",
        "health care for olds", "wine for kids", "_gen_category_audience"),
    GenerationPattern(
        "event-essentials", "[class: Event] essentials",
        "barbecue essentials", "-", "_gen_event_essentials"),
    GenerationPattern(
        "pest-control", "get rid of [class: Nature]",
        "get rid of raccoon", "-", "_gen_pest_control"),
)


def pattern_by_name(name: str) -> GenerationPattern:
    """Look up a pattern by its name.

    Raises:
        KeyError: If no pattern carries the name.
    """
    for pattern in PATTERNS:
        if pattern.name == name:
            return pattern
    raise KeyError(f"unknown generation pattern {name!r}")


def format_table1() -> str:
    """Render the registry as the paper's Table 1."""
    width = max(len(p.template) for p in PATTERNS)
    lines = ["Table 1 — patterns used to generate e-commerce concepts",
             f"{'Pattern':<{width}}  {'Good Concept':<32}Bad Concept"]
    for pattern in PATTERNS:
        lines.append(f"{pattern.template:<{width}}  "
                     f"{pattern.good_example:<32}{pattern.bad_example}")
    return "\n".join(lines)
