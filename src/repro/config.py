"""Run-scale presets.

The paper operates at Alibaba scale (billions of items).  The reproduction
runs on a laptop, so every pipeline accepts a :class:`RunScale` that fixes
corpus, catalog and model sizes.  Three presets are provided:

``tiny``
    Unit-test scale; every pipeline finishes in a couple of seconds.
``small``
    Example-script scale; end-to-end construction in well under a minute.
``bench``
    Benchmark scale used to regenerate the paper's tables and figures.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace

from .errors import ConfigError


@dataclass(frozen=True)
class RunScale:
    """Size knobs shared by the synthetic world and the training pipelines.

    Attributes:
        name: Preset name, used in logs and reports.
        n_items: Number of items in the synthetic catalog.
        n_queries: Number of search queries emitted by the corpus generator.
        n_reviews: Number of user reviews emitted by the corpus generator.
        n_guides: Number of shopping-guide documents emitted.
        embedding_dim: Dimension of word embeddings / model hidden states.
        hidden_dim: Hidden dimension of recurrent encoders.
        epochs: Default number of training epochs for neural models.
        seed: Master seed; all randomness in a run flows from it.
        n_brands: Generated brand names in the lexicon (open class).
        n_ips: Generated IP names in the lexicon (open class).
    """

    name: str
    n_items: int
    n_queries: int
    n_reviews: int
    n_guides: int
    embedding_dim: int
    hidden_dim: int
    epochs: int
    seed: int = 7
    n_brands: int = 60
    n_ips: int = 40

    def __post_init__(self) -> None:
        for field in ("n_items", "n_queries", "n_reviews", "n_guides",
                      "embedding_dim", "hidden_dim", "epochs"):
            value = getattr(self, field)
            if value <= 0:
                raise ConfigError(f"RunScale.{field} must be positive, got {value}")

    def with_seed(self, seed: int) -> "RunScale":
        """Return a copy of this preset with a different master seed."""
        return replace(self, seed=seed)

    def fingerprint(self) -> str:
        """Stable short digest of every size knob (including the seed).

        Snapshots embed this in their header so a serving process can
        refuse to warm-start from a net built under a different
        configuration (see :mod:`repro.kg.serialize`).  Two scales
        fingerprint equal iff all their fields are equal.
        """
        payload = ",".join(
            f"{field.name}={getattr(self, field.name)!r}"
            for field in fields(self))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


TINY = RunScale(name="tiny", n_items=120, n_queries=150, n_reviews=80,
                n_guides=30, embedding_dim=16, hidden_dim=16, epochs=3)
SMALL = RunScale(name="small", n_items=600, n_queries=800, n_reviews=400,
                 n_guides=120, embedding_dim=24, hidden_dim=24, epochs=5)
BENCH = RunScale(name="bench", n_items=2000, n_queries=3000, n_reviews=1200,
                 n_guides=400, embedding_dim=32, hidden_dim=32, epochs=8,
                 n_brands=240, n_ips=100)

_PRESETS = {"tiny": TINY, "small": SMALL, "bench": BENCH}


def get_scale(name: str) -> RunScale:
    """Look up a preset by name.

    Args:
        name: One of ``tiny``, ``small``, ``bench``.

    Raises:
        ConfigError: If the name is unknown.
    """
    try:
        return _PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(_PRESETS))
        raise ConfigError(f"unknown scale {name!r}; expected one of: {known}") from None
