"""Distant-supervision data generation (Section 7.2).

"We use a dynamic programming algorithm of max-matching to match words in
the text corpora and then assign each word with its domain label in IOB
scheme using existing primitive concepts.  We filter out sentences whose
matching result is ambiguous and only reserve those that can be perfectly
matched."  This module is exactly that filter.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nlp.segmentation import MaxMatchSegmenter
from ..synth.lexicon import Lexicon


@dataclass(frozen=True)
class TaggedSentence:
    """A training sentence with gold IOB domain labels."""

    tokens: tuple[str, ...]
    labels: tuple[str, ...]


@dataclass(frozen=True)
class DistantSupervisionStats:
    """Bookkeeping of the filter, reported alongside Section 7.2 numbers."""

    total_sentences: int
    kept: int
    dropped_ambiguous: int
    dropped_incomplete: int

    @property
    def keep_rate(self) -> float:
        return self.kept / self.total_sentences if self.total_sentences else 0.0


class DistantSupervisionBuilder:
    """Builds IOB training data by max-matching against a known lexicon.

    Args:
        lexicon: The lexicon of *known* primitive concepts.  Pass a held-out
            split to simulate discovery of genuinely new concepts.
        known_surfaces: Optional restriction — only these surfaces count as
            known (the rest of the lexicon is invisible to the matcher).
        require_full_coverage: If True (paper behaviour) a sentence is kept
            only when *every* token is covered; if False, sentences with
            outside tokens are kept too (an ablation knob).
    """

    def __init__(self, lexicon: Lexicon,
                 known_surfaces: set[str] | None = None,
                 require_full_coverage: bool = False):
        phrase_map: dict[tuple[str, ...], set[str]] = {}
        for entry in lexicon.entries:
            if known_surfaces is not None and entry.surface not in known_surfaces:
                continue
            key = tuple(entry.surface.split())
            phrase_map.setdefault(key, set()).add(entry.domain)
        self._segmenter = MaxMatchSegmenter(phrase_map)
        self._require_full = require_full_coverage

    def build(self, sentences: list[list[str]]) -> tuple[list[TaggedSentence],
                                                         DistantSupervisionStats]:
        """Tag and filter a corpus.

        Returns:
            (kept sentences with labels, filter statistics).
        """
        kept: list[TaggedSentence] = []
        ambiguous = incomplete = 0
        for tokens in sentences:
            if not tokens:
                continue
            result = self._segmenter.segment(tokens)
            if result.ambiguous:
                ambiguous += 1
                continue
            if self._require_full and result.covered < len(tokens):
                incomplete += 1
                continue
            if not result.segments:
                incomplete += 1
                continue
            labels = result.iob_labels(len(tokens))
            kept.append(TaggedSentence(tuple(tokens), tuple(labels)))
        stats = DistantSupervisionStats(
            total_sentences=len(sentences), kept=len(kept),
            dropped_ambiguous=ambiguous, dropped_incomplete=incomplete)
        return kept, stats
