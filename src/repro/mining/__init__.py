"""Primitive-concept vocabulary mining (Section 4.1, Figure 4, Section 7.2).

New concepts of the 20 first-level domains are mined from corpus text as a
sequence-labeling task: distant supervision from the existing lexicon
produces IOB training data (keeping only unambiguous max-matched
sentences), a BiLSTM-CRF labels new text, and spans the lexicon does not
know become candidate concepts for (simulated) human verification.
"""

from .distant import DistantSupervisionBuilder, TaggedSentence
from .bilstm_crf import BiLSTMCRFMiner
from .pipeline import MiningPipeline, MiningRound

__all__ = ["DistantSupervisionBuilder", "TaggedSentence", "BiLSTMCRFMiner",
           "MiningPipeline", "MiningRound"]
