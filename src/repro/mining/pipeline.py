"""The iterative vocabulary-mining loop (Section 7.2).

Round structure, mirroring the paper's continuously-running procedure:

1. distant-supervise IOB data from the *known* lexicon over the corpus;
2. train the BiLSTM-CRF miner;
3. run it over the corpus; spans the known lexicon lacks become candidates
   (the paper: ~64K candidates per epoch of 5M sentences);
4. the oracle (crowdsourcing substitute) verifies candidates; correct ones
   (~10K per round in the paper) are added to the known lexicon;
5. repeat — each round can now match more text.

To make "new" concepts possible at laptop scale, the known lexicon starts
as a random split of the world's true lexicon and the held-out surfaces
are what the miner can genuinely discover from text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DataError
from ..synth.lexicon import Lexicon
from ..utils.rng import spawn_rng
from .bilstm_crf import BiLSTMCRFMiner, LabelSet
from .distant import DistantSupervisionBuilder
from ..nlp.vocab import Vocab


@dataclass
class MiningRound:
    """Outcome of one mining round.

    Attributes:
        round_index: 0-based round number.
        train_sentences: Distant-supervision sentences used.
        candidates: Distinct (surface, domain) spans proposed by the model
            that the known lexicon did not contain.
        accepted: Candidates the oracle confirmed correct.
        known_after: Size of the known-surface set after the round.
    """

    round_index: int
    train_sentences: int
    candidates: list[tuple[str, str]] = field(default_factory=list)
    accepted: list[tuple[str, str]] = field(default_factory=list)
    known_after: int = 0

    @property
    def acceptance_rate(self) -> float:
        return len(self.accepted) / len(self.candidates) if self.candidates else 0.0


class MiningPipeline:
    """Drives the mining loop against a corpus.

    Args:
        lexicon: The full ground-truth lexicon (used for oracle checks).
        held_out_fraction: Share of surfaces hidden from the initial known
            set — the discoverable vocabulary.
        seed: Master seed.
    """

    def __init__(self, lexicon: Lexicon, held_out_fraction: float = 0.3,
                 seed: int = 7):
        if not 0.0 < held_out_fraction < 1.0:
            raise DataError("held_out_fraction must be in (0, 1)")
        self.lexicon = lexicon
        self.seed = seed
        rng = spawn_rng(seed, "mining-split")
        surfaces = lexicon.surfaces()
        rng.shuffle(surfaces)
        cut = int(len(surfaces) * (1.0 - held_out_fraction))
        self.known: set[str] = set(surfaces[:cut])
        self.held_out: set[str] = set(surfaces[cut:])
        self._truth: dict[str, set[str]] = {}
        for entry in lexicon.entries:
            self._truth.setdefault(entry.surface, set()).add(entry.domain)

    def oracle_check(self, surface: str, domain: str) -> bool:
        """Crowdsourcing substitute: is (surface, domain) a true concept?"""
        return domain in self._truth.get(surface, set())

    def run(self, sentences: list[list[str]], rounds: int = 2,
            epochs: int = 2, embedding_dim: int = 24,
            hidden_dim: int = 24) -> list[MiningRound]:
        """Run the loop for a fixed number of rounds.

        Returns:
            Per-round results (candidates, accepted, lexicon growth).
        """
        results: list[MiningRound] = []
        for round_index in range(rounds):
            # The paper keeps only perfectly-matched sentences: a sentence
            # with an unmatched (possibly new) word must NOT enter training,
            # or the model learns to label new concepts as Outside.
            builder = DistantSupervisionBuilder(self.lexicon,
                                                known_surfaces=self.known,
                                                require_full_coverage=True)
            tagged, _ = builder.build(sentences)
            if not tagged:
                raise DataError("distant supervision produced no data")
            vocab = Vocab.from_corpus(sentences)
            label_set = LabelSet.from_data(tagged)
            miner = BiLSTMCRFMiner(vocab, label_set,
                                   embedding_dim=embedding_dim,
                                   hidden_dim=hidden_dim,
                                   seed=self.seed + round_index)
            miner.fit(tagged, epochs=epochs, seed=self.seed + round_index)

            candidates: dict[tuple[str, str], None] = {}
            for tokens in sentences:
                for surface, domain in miner.extract_spans(tokens):
                    if surface not in self.known:
                        candidates.setdefault((surface, domain))
            accepted = [(surface, domain) for surface, domain in candidates
                        if self.oracle_check(surface, domain)]
            for surface, _ in accepted:
                self.known.add(surface)
            results.append(MiningRound(
                round_index=round_index, train_sentences=len(tagged),
                candidates=list(candidates), accepted=accepted,
                known_after=len(self.known)))
        return results
