"""The BiLSTM-CRF sequence labeler of Figure 4.

Word embeddings feed a BiLSTM whose per-token states are projected to
emission scores over the IOB label set; a linear-chain CRF models label
transitions.  Training minimises the CRF negative log-likelihood per
sentence; inference is Viterbi decoding.
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError, NotFittedError
from ..ml import Adam, BiLSTM, Embedding, Linear, Module
from ..ml.tensor import Tensor, no_grad
from ..nlp.crf import LinearChainCRF
from ..nlp.vocab import Vocab
from ..utils.rng import spawn_rng
from .distant import TaggedSentence

OUTSIDE_LABEL = "O"


class LabelSet:
    """Bidirectional mapping between IOB label strings and ids."""

    def __init__(self, labels: list[str]):
        ordered = [OUTSIDE_LABEL] + sorted(set(labels) - {OUTSIDE_LABEL})
        self._itos = ordered
        self._stoi = {label: i for i, label in enumerate(ordered)}

    @classmethod
    def from_data(cls, data: list[TaggedSentence]) -> "LabelSet":
        seen: list[str] = []
        for sentence in data:
            seen.extend(sentence.labels)
        return cls(seen)

    def __len__(self) -> int:
        return len(self._itos)

    def id(self, label: str) -> int:
        try:
            return self._stoi[label]
        except KeyError:
            raise DataError(f"unknown label {label!r}") from None

    def label(self, label_id: int) -> str:
        return self._itos[label_id]


class BiLSTMCRFMiner(Module):
    """BiLSTM-CRF over word tokens (Fig 4).

    Args:
        vocab: Word vocabulary (typically built from the mining corpus).
        label_set: IOB labels over the 20 first-level domains.
        embedding_dim: Word-embedding width.
        hidden_dim: BiLSTM width per direction.
        seed: Weight-init seed.
        pretrained: Optional pretrained embedding matrix.
    """

    def __init__(self, vocab: Vocab, label_set: LabelSet,
                 embedding_dim: int = 24, hidden_dim: int = 24, seed: int = 0,
                 pretrained: np.ndarray | None = None):
        super().__init__()
        rng = spawn_rng(seed, "miner")
        self.vocab = vocab
        self.label_set = label_set
        self.embedding = Embedding(len(vocab), embedding_dim, rng,
                                   pretrained=pretrained)
        self.encoder = BiLSTM(embedding_dim, hidden_dim, rng)
        self.projection = Linear(2 * hidden_dim, len(label_set), rng)
        self.crf = LinearChainCRF(len(label_set), rng)
        self._fitted = False

    def emissions(self, tokens: tuple[str, ...]) -> Tensor:
        """Per-token emission scores, shape ``(len(tokens), num_labels)``."""
        ids = np.asarray([self.vocab.id(t) for t in tokens])[None, :]
        embedded = self.embedding(ids)
        hidden = self.encoder(embedded)
        return self.projection(hidden)[0]

    def loss(self, sentence: TaggedSentence) -> Tensor:
        """CRF negative log-likelihood of one gold-labelled sentence."""
        emissions = self.emissions(sentence.tokens)
        label_ids = [self.label_set.id(label) for label in sentence.labels]
        return self.crf.nll(emissions, label_ids)

    def fit(self, data: list[TaggedSentence], epochs: int = 3,
            lr: float = 0.01, seed: int = 0) -> list[float]:
        """Train on tagged sentences; returns mean loss per epoch.

        Raises:
            DataError: On an empty dataset.
        """
        if not data:
            raise DataError("miner needs at least one training sentence")
        rng = spawn_rng(seed, "miner-train")
        optimizer = Adam(self.parameters(), lr=lr)
        history: list[float] = []
        for _ in range(epochs):
            order = rng.permutation(len(data))
            total = 0.0
            for index in order:
                optimizer.zero_grad()
                loss = self.loss(data[index])
                loss.backward()
                optimizer.clip_grad_norm(5.0)
                optimizer.step()
                total += loss.item()
            history.append(total / len(data))
        self._fitted = True
        return history

    def predict(self, tokens: tuple[str, ...] | list[str]) -> list[str]:
        """Viterbi-decode IOB labels for a sentence."""
        if not self._fitted:
            raise NotFittedError("miner has not been trained")
        if not tokens:
            return []
        with no_grad():
            emissions = self.emissions(tuple(tokens)).numpy()
        ids = self.crf.decode(emissions)
        return [self.label_set.label(i) for i in ids]

    def extract_spans(self, tokens: tuple[str, ...] | list[str]) -> list[tuple[str, str]]:
        """Mined (phrase, domain) spans from a sentence."""
        labels = self.predict(tokens)
        spans: list[tuple[str, str]] = []
        current: list[str] = []
        domain = ""
        for token, label in zip(tokens, labels):
            if label.startswith("B-"):
                if current:
                    spans.append((" ".join(current), domain))
                current = [token]
                domain = label[2:]
            elif label.startswith("I-") and current and label[2:] == domain:
                current.append(token)
            else:
                if current:
                    spans.append((" ".join(current), domain))
                current = []
                domain = ""
        if current:
            spans.append((" ".join(current), domain))
        return spans
