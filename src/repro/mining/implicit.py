"""Implicit commonsense relation mining — the paper's future work #1 & #2.

Section 10: "our future work includes: 1) Complete AliCoCo by mining more
unseen relations containing commonsense knowledge, for example, 'boy's
T-shirts' implies the 'Time' should be 'Summer', even though the term
'summer' does not appear in the concept.  2) Bring probabilities to
relations between concepts and items."

This module mines such relations from catalog statistics: when items of a
category co-occur overwhelmingly with a season / event / audience, a
``suitable_when`` / ``used_for`` / ``used_by`` relation is emitted *with
its empirical probability* — covering both future-work items at once.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from ..errors import DataError
from ..synth.items import SynthItem


@dataclass(frozen=True)
class ImplicitRelation:
    """A mined commonsense relation with a probability.

    Attributes:
        source: Category surface (head noun).
        name: Relation name (``suitable_when`` / ``used_for`` / ``used_by``).
        target: The implied primitive concept surface.
        target_domain: Domain of the target (Time / Event / Audience).
        probability: Empirical P(target | source) over the catalog.
        support: Number of items the estimate is based on.
    """

    source: str
    name: str
    target: str
    target_domain: str
    probability: float
    support: int


class ImplicitRelationMiner:
    """Mines probabilistic commonsense relations from an item catalog.

    Args:
        min_probability: Confidence floor for emitting a relation.
        min_support: Minimum items per category head.
    """

    def __init__(self, min_probability: float = 0.6, min_support: int = 3):
        if not 0.0 < min_probability <= 1.0:
            raise DataError("min_probability must be in (0, 1]")
        self.min_probability = min_probability
        self.min_support = min_support

    def mine(self, items: list[SynthItem]) -> list[ImplicitRelation]:
        """Mine relations over the catalog.

        Raises:
            DataError: On an empty catalog.
        """
        if not items:
            raise DataError("implicit mining needs a non-empty catalog")
        by_head: dict[str, list[SynthItem]] = defaultdict(list)
        for item in items:
            by_head[item.head].append(item)

        relations: list[ImplicitRelation] = []
        for head, group in sorted(by_head.items()):
            if len(group) < self.min_support:
                continue
            relations.extend(self._mine_attribute(
                head, group, "suitable_when", "Time",
                lambda item: item.seasons))
            relations.extend(self._mine_attribute(
                head, group, "used_for", "Event",
                lambda item: item.events))
            relations.extend(self._mine_attribute(
                head, group, "used_by", "Audience",
                lambda item: item.audiences))
        return relations

    def _mine_attribute(self, head: str, group: list[SynthItem], name: str,
                        domain: str, getter) -> list[ImplicitRelation]:
        counts: Counter[str] = Counter()
        for item in group:
            for value in getter(item):
                counts[value] += 1
        total = len(group)
        found = []
        for value, count in sorted(counts.items()):
            probability = count / total
            if probability >= self.min_probability:
                found.append(ImplicitRelation(
                    source=head, name=name, target=value,
                    target_domain=domain, probability=probability,
                    support=total))
        return found

    def implied_concepts(self, relations: list[ImplicitRelation],
                         concept_tokens: list[str]) -> list[ImplicitRelation]:
        """Relations whose source appears in a concept — the "boy's
        T-shirts implies summer" inference over an unseen concept."""
        token_set = set(concept_tokens)
        return [relation for relation in relations
                if relation.source in token_set
                and relation.target not in token_set]
