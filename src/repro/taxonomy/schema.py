"""Domains and schema relations.

The paper defines 20 first-level classes ("domains"), eleven of them
e-commerce specific (Category, Brand, Color, Design, Function, Material,
Pattern, Shape, Smell, Taste, Style) and the rest general-purpose (Time,
Location, IP, Audience, Event, Nature, Organization, Quantity, Modifier).
A schema over the taxonomy declares which relations may hold between which
classes — e.g. *suitable_when* between ``Category->Clothing`` and
``Time->Season``.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The 20 first-level domains, exactly as named in the paper (Section 3 /
#: Table 2).
DOMAINS: tuple[str, ...] = (
    "Category", "Brand", "Color", "Design", "Function", "Material",
    "Pattern", "Shape", "Smell", "Taste", "Style",
    "Time", "Location", "IP", "Audience", "Event",
    "Nature", "Organization", "Quantity", "Modifier",
)

#: Domains that exist specifically for e-commerce (Section 3).
ECOMMERCE_DOMAINS: frozenset[str] = frozenset({
    "Category", "Brand", "Color", "Design", "Function", "Material",
    "Pattern", "Shape", "Smell", "Taste", "Style",
})


@dataclass(frozen=True)
class SchemaRelation:
    """A relation declared between two taxonomy classes.

    Attributes:
        name: Relation name, e.g. ``suitable_when``.
        source_class: Name of the source class (class name, not id).
        target_class: Name of the target class.
    """

    name: str
    source_class: str
    target_class: str


#: Schema relations among classes (Section 2's example plus companions).
SCHEMA_RELATIONS: tuple[SchemaRelation, ...] = (
    SchemaRelation("suitable_when", "Clothing", "Season"),
    SchemaRelation("suitable_when", "Shoes", "Season"),
    SchemaRelation("used_for", "Category", "Occasion"),
    SchemaRelation("used_when", "Category", "Holiday"),
    SchemaRelation("used_by", "Category", "Human"),
    SchemaRelation("used_in", "Category", "Scene"),
    SchemaRelation("has_function", "Category", "Function"),
    SchemaRelation("made_of", "Category", "Material"),
)
