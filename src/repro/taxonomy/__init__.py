"""The AliCoCo taxonomy (Section 3): 20 first-level domains and their
class hierarchy, plus the schema relations defined between classes."""

from .schema import DOMAINS, SCHEMA_RELATIONS, SchemaRelation
from .seed import CATEGORY_TREE, SUBCLASS_TREES
from .builder import build_taxonomy, TaxonomyIndex

__all__ = [
    "DOMAINS", "SCHEMA_RELATIONS", "SchemaRelation",
    "CATEGORY_TREE", "SUBCLASS_TREES",
    "build_taxonomy", "TaxonomyIndex",
]
