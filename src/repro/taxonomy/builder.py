"""Materialise the seed taxonomy into an :class:`AliCoCoStore`."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TaxonomyError
from ..kg.relations import Relation, RelationKind
from ..kg.store import AliCoCoStore
from .schema import DOMAINS, SCHEMA_RELATIONS
from .seed import CATEGORY_TREE, SUBCLASS_TREES


@dataclass
class TaxonomyIndex:
    """Lookup table from class name to class id after building.

    Class names are unique in the seed taxonomy, so a flat map suffices.

    Attributes:
        by_name: class name -> class id.
        leaf_class_of_domain: domain -> the class id new primitive concepts
            of that domain default to (the domain root for flat domains).
    """

    by_name: dict[str, str] = field(default_factory=dict)
    leaf_class_of_domain: dict[str, str] = field(default_factory=dict)

    def id_of(self, class_name: str) -> str:
        """Class id by name.

        Raises:
            TaxonomyError: If the class does not exist.
        """
        try:
            return self.by_name[class_name]
        except KeyError:
            raise TaxonomyError(f"unknown class {class_name!r}") from None


def build_taxonomy(store: AliCoCoStore) -> TaxonomyIndex:
    """Create the 20 domains and their subtrees in ``store``.

    Returns:
        A :class:`TaxonomyIndex` for class-name lookups.

    Raises:
        TaxonomyError: If a class name is defined twice in the seed.
    """
    index = TaxonomyIndex()

    def register(name: str, class_id: str) -> None:
        if name in index.by_name:
            raise TaxonomyError(f"class {name!r} defined twice in the seed")
        index.by_name[name] = class_id

    for domain in DOMAINS:
        root = store.create_class(domain, domain=domain)
        register(domain, root.id)
        index.leaf_class_of_domain[domain] = root.id
        if domain == "Category":
            for second_level, leaves in CATEGORY_TREE.items():
                mid = store.create_class(second_level, domain=domain,
                                         parent_id=root.id)
                register(second_level, mid.id)
                for leaf in leaves:
                    leaf_node = store.create_class(leaf, domain=domain,
                                                   parent_id=mid.id)
                    register(leaf, leaf_node.id)
        elif domain in SUBCLASS_TREES:
            for subclass in SUBCLASS_TREES[domain]:
                node = store.create_class(subclass, domain=domain,
                                          parent_id=root.id)
                register(subclass, node.id)

    for schema in SCHEMA_RELATIONS:
        store.add_relation(Relation(
            RelationKind.SCHEMA,
            index.id_of(schema.source_class),
            index.id_of(schema.target_class),
            name=schema.name))
    return index
