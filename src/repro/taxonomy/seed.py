"""Seed class hierarchy.

The paper's taxonomy was hand-built by domain experts; this module plays
that role for the reproduction.  ``Category`` is by far the largest domain
(the paper gives it ~800 leaf classes); here it gets a three-level tree.
General-purpose domains get shallow subclass lists, and the remaining
domains are leaf classes themselves.
"""

from __future__ import annotations

#: Category subtree: second-level class -> leaf class -> () .
#: Leaf classes index the category *primitive concepts* of the synthetic
#: world (e.g. the concept "dress" instantiates leaf class "Clothing").
CATEGORY_TREE: dict[str, tuple[str, ...]] = {
    "ClothingAndAccessory": ("Clothing", "Shoes", "Accessory"),
    "FoodAndBeverage": ("Snacks", "Beverage", "FreshFood"),
    "HomeAndGarden": ("Furniture", "Decor", "Bedding", "GardenTools",
                      "BathSupplies"),
    "Electronics": ("Phones", "Appliances", "Wearables"),
    "SportsAndOutdoor": ("CampingGear", "BarbecueGear", "Fitness",
                         "SwimGear", "FishingGear"),
    "BeautyAndHealth": ("Skincare", "HealthCare"),
    "ToysAndBaby": ("Toys", "BabyCare"),
    "Kitchen": ("Cookware", "Bakeware", "Tableware"),
    "PetSupplies": ("PetGear",),
    "GiftsAndCards": ("Gifts",),
}

#: Subclasses of the non-Category domains that have any; all other domains
#: act as their own (single) class.
SUBCLASS_TREES: dict[str, tuple[str, ...]] = {
    "Time": ("Season", "Holiday", "TimeOfDay"),
    "Location": ("Scene", "Region"),
    "Audience": ("Human", "Animal"),
    "Event": ("Action", "Occasion"),
    "IP": ("Movie", "Person", "Song"),
    "Nature": ("WildAnimal", "Plant", "Substance"),
}
