"""Model-backed serving: inference-mode guards, tag spans, model bundles.

The paper serves its models online (Sections 5.3 and 6): concept tagging
and concept-item matching answer live traffic, not just offline
experiment scripts.  This module is the glue between trained
:class:`~repro.ml.module.Module` models and
:class:`~repro.serving.AliCoCoService`:

- **the eval-mode guard** — a module enters the service through
  :func:`prepare_serving_module`, which requires it to be fitted, puts it
  in eval mode once, and leaves it there; every inference then passes
  :func:`ensure_inference_mode`, which refuses to serve a module someone
  has flipped back to training mode (training-mode layers such as
  :class:`~repro.ml.Dropout` are stochastic *and* mutate RNG state, which
  would break both determinism and thread safety);
- **tag spans** — :func:`tag_spans` runs the
  :class:`~repro.concepts.tagging.ConceptTagger` under :func:`no_grad`
  and links each IOB span to a primitive-concept node of the served net;
- **model bundles** — :func:`model_bundle_state` /
  :func:`restore_serving_module` wrap
  :func:`repro.ml.serialize.module_state_record` with a model *kind* so a
  snapshot's tagger weights can never be restored into a reranker (and
  vice versa), on top of the record's own architecture-fingerprint check.

Thread-safety contract: a prepared module's forward pass is read-only
(weights are never written outside training), and graph recording is
context-local (:mod:`repro.ml.tensor`), so one prepared module may serve
any number of threads concurrently — provided nobody trains it at the
same time, which :func:`ensure_inference_mode` makes loud instead of
silent whenever the trainer flipped ``training`` back on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..concepts.tagging import ConceptTagger, iob_spans
from ..errors import ConfigError, DataError, NotFittedError
from ..ml.module import Module
from ..ml.serialize import load_module_state, module_state_record

#: Bundle kind for the concept tagger (Section 5.3's model).
TAGGER_KIND = "concept-tagger"
#: Bundle kind for text-pair rerankers (Section 6's matchers).
RERANKER_KIND = "reranker"


@dataclass(frozen=True)
class TagSpan:
    """One tagged mention of a concept phrase, linked into the net.

    Attributes:
        surface: The mention text (tokens joined by spaces).
        domain: Predicted primitive-concept domain (e.g. ``Event``).
        start: Token index where the span starts (inclusive).
        stop: Token index where the span ends (exclusive).
        primitive_id: Id of the served net's primitive concept with this
            (surface, domain), or ``None`` when the mention has no node —
            the model generalises beyond the net's vocabulary.
    """

    surface: str
    domain: str
    start: int
    stop: int
    primitive_id: str | None


def prepare_serving_module(module: Module, name: str) -> Module:
    """Admit a model into the service: must be fitted; enters eval mode.

    Raises:
        NotFittedError: If the module reports it has not been trained.
    """
    if not getattr(module, "_fitted", True):
        raise NotFittedError(
            f"cannot serve untrained model {name!r}; fit it first "
            "(or restore trained weights from a snapshot bundle)"
        )
    module.eval()
    # Extract the functional inference session (tape-free weight views,
    # repro.ml.inference) eagerly, before the first query arrives, so the
    # hot path never pays the named_parameters walk.
    extract_session = getattr(module, "inference_session", None)
    if callable(extract_session):
        extract_session()
    return module


def ensure_inference_mode(module: Module, name: str) -> None:
    """Refuse to serve a module that has left eval mode.

    Raises:
        ConfigError: If any submodule is in training mode — serving a
            training-mode model is nondeterministic (dropout) and mutates
            shared RNG state under concurrent traffic.
    """
    if any(submodule.training for submodule in module.modules()):
        raise ConfigError(
            f"served model {name!r} is in training mode; call .eval() "
            "before serving (a service prepares its models once — this "
            "means someone called .train() on a live served module)"
        )


def tag_spans(
    tagger: ConceptTagger,
    tokens: Sequence[str],
    primitive_index: Mapping[tuple[str, str], str],
) -> tuple[TagSpan, ...]:
    """Tag a token sequence and link spans to primitive-concept nodes.

    Decoding runs under the tagger's own :func:`no_grad` inference path;
    linking is a pure lookup into ``primitive_index``
    ((surface, domain) -> node id over the served net's primitive layer).
    """
    ensure_inference_mode(tagger, "tagger")
    labels = tagger.predict(list(tokens))
    spans = []
    for start, stop, domain in iob_spans(labels):
        surface = " ".join(tokens[start:stop])
        spans.append(
            TagSpan(
                surface=surface,
                domain=domain,
                start=start,
                stop=stop,
                primitive_id=primitive_index.get((surface, domain)),
            )
        )
    return tuple(spans)


def rerank_score(
    model: Module, query_tokens: Sequence[str], doc_tokens: Sequence[str]
) -> float:
    """Model match probability for one (query, document) text pair.

    The scalar oracle: the fast path (:func:`rerank_pool`) must produce
    scores identical to a per-candidate loop over this function.
    """
    ensure_inference_mode(model, "reranker")
    return float(model.score_text(query_tokens, doc_tokens))


def rerank_pool(
    model: Module,
    query_tokens: Sequence[str],
    doc_token_lists: Sequence[Sequence[str]],
    doc_encodings: Sequence[Any] | None = None,
):
    """Model match probabilities for one query against a candidate pool.

    The batched counterpart of :func:`rerank_score`:
    :meth:`~repro.matching.base.NeuralMatcher.score_pool` encodes the
    query side once and reuses it across every candidate, running
    fast-path matchers entirely on the tape-free kernels of
    :mod:`repro.ml.inference`.  ``doc_encodings`` lets the service pass
    cached doc-side encodings through (aligned with ``doc_token_lists``,
    ``None`` slots encoded on the fly).

    Returns:
        A float array, one probability per candidate.
    """
    ensure_inference_mode(model, "reranker")
    return model.score_pool(query_tokens, doc_token_lists,
                            doc_encodings=doc_encodings)


def dense_query_vector(model: Module, query_tokens: Sequence[str]):
    """Query-side retrieval embedding from a served vector-capable matcher.

    The dense first stage's query entry point: the vector lives in the
    same space as :func:`dense_doc_vector`, so an ANN index over doc
    vectors ranks candidates by the served matcher's own similarity.
    """
    ensure_inference_mode(model, "reranker")
    return model.query_vector(query_tokens)


def dense_doc_vector(model: Module, doc_tokens: Sequence[str],
                     encoding: Any = None):
    """Doc-side retrieval embedding, optionally from a cached encoding.

    ``encoding`` accepts an ``encode_doc`` result for the same tokens —
    the service feeds its frozen-catalog doc-encoding cache through here
    when building a dense index, so index construction re-encodes nothing
    the cache already holds.
    """
    ensure_inference_mode(model, "reranker")
    return model.doc_vector(doc_tokens, encoding=encoding)


# ------------------------------------------------------------- model bundles
def model_bundle_state(module: Module, kind: str) -> dict[str, Any]:
    """A snapshot-embeddable record of a served model's trained weights.

    The record's config carries the bundle ``kind`` (and the module's
    class name), both folded into the architecture fingerprint — so a
    restore validates *what* the weights are for, not just their shapes.
    """
    return module_state_record(
        module, config={"kind": kind, "class": type(module).__name__}
    )


def restore_serving_module(
    module: Module, state: Mapping[str, Any], kind: str, name: str
) -> Module:
    """Load a bundle record into a freshly built architecture and serve it.

    The module comes in untrained (weights are about to be replaced); it
    leaves fitted, in eval mode, ready for :func:`ensure_inference_mode`.

    Raises:
        DataError: If the record's kind disagrees with ``kind``, or the
            fingerprint/shape validation in
            :func:`repro.ml.serialize.load_module_state` fails.
    """
    recorded_kind = (state.get("config") or {}).get("kind")
    if recorded_kind != kind:
        raise DataError(
            f"model bundle {name!r} holds a {recorded_kind!r} model, "
            f"expected {kind!r}"
        )
    load_module_state(module, state)
    module._fitted = True
    module.eval()
    return module
