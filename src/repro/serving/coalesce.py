"""Request coalescing: a singleflight micro-batcher for rerank traffic.

Serving traffic is heavy-tailed — hot concepts and hot queries repeat —
and at high concurrency the *same* expensive rerank request is often in
flight several times at once (the classic cache-stampede shape: every
thread misses the result cache before the first one finishes).  The
:class:`Coalescer` collapses that duplicated work: concurrent requests
with the same key are served by **one** computation — one
``score_pool`` call answers the whole batch.  The answers are
bit-identical to serial execution because the computation is
deterministic over a frozen store and frozen weights (the PR 5
bit-identity contract — the coalescer adds no numeric path of its own,
it only *shares* a result that every joiner would have computed
identically).

Mechanics: the first thread to submit a key becomes the **leader** — it
optionally sleeps a small *coalescing window* (letting near-simultaneous
duplicates pile on), computes once, and publishes the result; threads
that find an in-flight leader become **joiners** and just wait on its
event.  Arrivals during the leader's computation still join (maximum
coalescing); arrivals after publication start a fresh flight.  The
leader publishes from a ``finally`` block, so joiners can never hang on
a crashed leader — they re-raise the leader's exception instead
(deterministic validation errors are shared exactly like results).

A window of ``0`` disables the sleep but keeps the singleflight dedup;
that is the latency-neutral default.  A positive window trades a bounded
latency hit on the leader for larger batches under bursty traffic —
``benchmarks/bench_cluster.py`` sweeps the window against throughput.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Hashable

from ..errors import ConfigError


class _Flight:
    """One in-flight computation: leader's slot plus joiner bookkeeping."""

    __slots__ = ("event", "value", "error", "joined")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None
        self.joined = 0


@dataclass(frozen=True)
class CoalescerStats:
    """Frozen coalescing summary.

    Attributes:
        flights: Computations actually executed (leader runs).
        joined: Requests answered by another request's computation.
        requests: Total submissions (``flights + joined``).
        max_batch: Largest number of requests one flight answered.
        window_seconds: The configured coalescing window.
    """

    flights: int
    joined: int
    requests: int
    max_batch: int
    window_seconds: float

    @property
    def mean_batch(self) -> float:
        """Average requests answered per computation (1.0 = no sharing)."""
        return self.requests / self.flights if self.flights else 0.0


class Coalescer:
    """Thread-safe singleflight map with an optional coalescing window.

    Args:
        window_seconds: How long a leader waits for duplicates to pile on
            before computing.  ``0.0`` (default) computes immediately —
            pure in-flight dedup with no added latency.
        sleep: Injectable sleep (tests replace it to keep wall time at
            zero).

    Raises:
        ConfigError: If the window is negative.
    """

    def __init__(self, window_seconds: float = 0.0,
                 sleep: Callable[[float], None] = time.sleep):
        if window_seconds < 0:
            raise ConfigError(
                f"window_seconds must be >= 0, got {window_seconds}"
            )
        self.window_seconds = window_seconds
        self._sleep = sleep
        self._flights: dict[Hashable, _Flight] = {}
        self._lock = threading.Lock()
        self._flight_count = 0
        self._joined = 0
        self._max_batch = 0

    def submit(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Run ``compute`` for ``key``, sharing any in-flight duplicate.

        Exactly one caller per flight executes ``compute``; the rest
        block until it publishes and then return the same object (or
        re-raise the same exception).  Sharing one result object across
        callers is sound for the serving tier because results are
        immutable tuples over a frozen store.
        """
        with self._lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight()
                self._flights[key] = flight
            else:
                flight.joined += 1
                self._joined += 1
        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value
        try:
            if self.window_seconds > 0:
                self._sleep(self.window_seconds)
            flight.value = compute()
            return flight.value
        except BaseException as error:
            flight.error = error
            raise
        finally:
            # Unregister *before* publishing: a request arriving after
            # the event is set must start a fresh flight, never read a
            # completed one.  Joiners already registered keep their
            # reference and read the published slots.
            with self._lock:
                self._flights.pop(key, None)
                self._flight_count += 1
                self._max_batch = max(self._max_batch, 1 + flight.joined)
            flight.event.set()

    def stats(self) -> CoalescerStats:
        """A consistent snapshot of the coalescing counters."""
        with self._lock:
            flights = self._flight_count
            joined = self._joined
            max_batch = self._max_batch
        return CoalescerStats(
            flights=flights,
            joined=joined,
            requests=flights + joined,
            max_batch=max_batch,
            window_seconds=self.window_seconds,
        )
