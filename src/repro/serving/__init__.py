"""Online serving of the net (Section 7's deployment, in miniature).

Construction (:mod:`repro.pipeline`) is offline; this package is the
online half: a read-only, cached, metered query service that warm-starts
from versioned snapshots instead of rebuilding the net.

Quickstart::

    from repro import build_alicoco, TINY
    from repro.serving import AliCoCoService

    service = AliCoCoService.from_build(build_alicoco(TINY))
    service.save_snapshot("net.snapshot.jsonl")
    # ... later, in the serving process:
    service = AliCoCoService.from_snapshot("net.snapshot.jsonl")
    service.search("gifts for mother")
    print(service.stats().format_table())
"""

from .cache import LRUCache
from .service import (
    AliCoCoService,
    BatchResult,
    CONCEPT_INDEX,
    fit_concept_index,
    ServiceConfig,
)
from .stats import EndpointMetrics, EndpointStats, ServiceStats

__all__ = [
    "AliCoCoService",
    "BatchResult",
    "ServiceConfig",
    "CONCEPT_INDEX",
    "fit_concept_index",
    "LRUCache",
    "EndpointMetrics",
    "EndpointStats",
    "ServiceStats",
]
