"""Online serving of the net (Section 7's deployment, in miniature).

Construction (:mod:`repro.pipeline`) is offline; this package is the
online half: a read-only, cached, metered query service that warm-starts
from versioned snapshots instead of rebuilding the net.  Given trained
models it also serves them: concept tagging (``tag``) and neural
re-ranking of graph/BM25 candidates (``items_for_concept_reranked``,
``search_reranked``), with model weights riding the same snapshot as a
model bundle.

Quickstart::

    from repro import build_alicoco, TINY
    from repro.serving import AliCoCoService

    service = AliCoCoService.from_build(build_alicoco(TINY))
    service.save_snapshot("net.snapshot.jsonl")
    # ... later, in the serving process:
    service = AliCoCoService.from_snapshot("net.snapshot.jsonl")
    service.search("gifts for mother")
    print(service.stats().format_table())
"""

from .admission import AdmissionController, AdmissionStats
from .cache import CacheCounters, LRUCache
from .cluster import (
    CLUSTER_META,
    COALESCED_ENDPOINTS,
    AliCoCoCluster,
    ClusterConfig,
    ClusterStats,
)
from .coalesce import Coalescer, CoalescerStats
from .models import (
    RERANKER_KIND,
    TAGGER_KIND,
    TagSpan,
    ensure_inference_mode,
    model_bundle_state,
    prepare_serving_module,
    rerank_pool,
    rerank_score,
    restore_serving_module,
)
from .procpool import (
    ProcessShardPool,
    ProcPoolStats,
    ShardWorkerSpec,
    WorkerStats,
)
from .rpc import ChannelStats, ShardChannel, decode_frame, encode_frame
from .service import (
    AliCoCoService,
    BatchResult,
    CONCEPT_INDEX,
    DENSE_CONCEPT_INDEX,
    DENSE_ITEM_INDEX,
    RERANKER_MODEL,
    TAGGER_MODEL,
    ServingGeneration,
    fit_concept_index,
    save_shard_snapshot,
    shard_service_from_snapshot,
    ServiceConfig,
)
from .shard import (
    PARTITIONED_LAYERS,
    REPLICATED_LAYERS,
    merge_ranked,
    owned_ids,
    owner_shards,
    project_bm25_index,
    shard_of,
    shard_sizes,
    split_concept_index,
    split_store,
)
from .stats import EndpointMetrics, EndpointStats, ServiceStats, endpoint_table

__all__ = [
    "AliCoCoCluster",
    "AliCoCoService",
    "AdmissionController",
    "AdmissionStats",
    "CLUSTER_META",
    "COALESCED_ENDPOINTS",
    "Coalescer",
    "CoalescerStats",
    "ClusterConfig",
    "ClusterStats",
    "ChannelStats",
    "PARTITIONED_LAYERS",
    "ProcPoolStats",
    "ProcessShardPool",
    "REPLICATED_LAYERS",
    "ShardChannel",
    "ShardWorkerSpec",
    "WorkerStats",
    "decode_frame",
    "encode_frame",
    "endpoint_table",
    "merge_ranked",
    "owned_ids",
    "owner_shards",
    "project_bm25_index",
    "save_shard_snapshot",
    "shard_of",
    "shard_service_from_snapshot",
    "shard_sizes",
    "split_concept_index",
    "split_store",
    "BatchResult",
    "ServiceConfig",
    "CONCEPT_INDEX",
    "DENSE_CONCEPT_INDEX",
    "DENSE_ITEM_INDEX",
    "TAGGER_MODEL",
    "RERANKER_MODEL",
    "TAGGER_KIND",
    "RERANKER_KIND",
    "TagSpan",
    "ensure_inference_mode",
    "model_bundle_state",
    "prepare_serving_module",
    "rerank_pool",
    "rerank_score",
    "restore_serving_module",
    "fit_concept_index",
    "CacheCounters",
    "LRUCache",
    "ServingGeneration",
    "EndpointMetrics",
    "EndpointStats",
    "ServiceStats",
]
