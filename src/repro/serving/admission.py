"""Admission control: bounded queueing with 429-style load shedding.

An unbounded serving queue converts overload into unbounded latency —
every queued request waits behind every earlier one, tail latency grows
without limit, and by the time a request is answered its caller has
usually given up.  The :class:`AdmissionController` bounds both axes
instead:

- at most ``max_inflight`` requests execute concurrently;
- at most ``max_queue_depth`` more wait for a slot;
- no request waits longer than ``max_queue_wait_seconds``.

Anything beyond those bounds is **shed** with a typed
:class:`~repro.errors.OverloadedError` (reason ``"queue_full"`` on
arrival, ``"queue_timeout"`` after a bounded wait) — the library's 429.
Shedding is a feature, not a failure: a shed request returns within the
queue-wait bound and tells its caller to back off, while admitted
requests keep their latency distribution intact.

Queue time is *accounted*, not hidden: admitted requests record their
wait in a :class:`~repro.utils.timing.LatencyReservoir` (zero for
requests admitted immediately), shed requests record theirs in a second
reservoir, so the cluster stats report shows where time went —
``queue-wait p99`` rising toward the bound is the saturation signal.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from ..errors import ConfigError, OverloadedError
from ..utils.timing import LatencyReservoir


@dataclass(frozen=True)
class AdmissionStats:
    """Frozen admission-control summary (times in milliseconds).

    Attributes:
        admitted: Requests that received an execution slot.
        shed: Sorted ``(reason, count)`` pairs of rejected requests.
        inflight: Requests executing at snapshot time.
        queued: Requests waiting at snapshot time.
        queue_wait_p50_ms / p95 / p99: Wait-for-slot percentiles over
            admitted requests (immediate admissions count as 0).
        shed_wait_p99_ms: p99 wait of shed requests — bounded by the
            configured queue-wait limit, by construction.
    """

    admitted: int
    shed: tuple[tuple[str, int], ...]
    inflight: int
    queued: int
    queue_wait_p50_ms: float
    queue_wait_p95_ms: float
    queue_wait_p99_ms: float
    shed_wait_p99_ms: float

    @property
    def shed_total(self) -> int:
        """Requests rejected, across both shed reasons."""
        return sum(count for _, count in self.shed)

    @property
    def shed_rate(self) -> float:
        """Shed requests over total arrivals (0.0 before any arrival)."""
        arrivals = self.admitted + self.shed_total
        return self.shed_total / arrivals if arrivals else 0.0


class AdmissionController:
    """Bounded concurrency + bounded queue + bounded wait, or shed.

    Args:
        max_inflight: Concurrent execution slots.
        max_queue_depth: Requests allowed to wait for a slot; ``0``
            sheds immediately whenever all slots are busy.
        max_queue_wait_seconds: Longest a queued request may wait before
            being shed with reason ``"queue_timeout"``.
        reservoir_capacity: Samples retained per wait reservoir.
        seed: Reservoir replacement-RNG seed.
        clock: Injectable monotonic clock (tests pin it).

    Raises:
        ConfigError: On non-positive ``max_inflight`` /
            ``max_queue_wait_seconds`` or negative ``max_queue_depth``.
    """

    def __init__(self, max_inflight: int, max_queue_depth: int,
                 max_queue_wait_seconds: float, *,
                 reservoir_capacity: int = 512, seed: int = 0,
                 clock: Callable[[], float] = time.perf_counter):
        if max_inflight <= 0:
            raise ConfigError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if max_queue_depth < 0:
            raise ConfigError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        if max_queue_wait_seconds <= 0:
            raise ConfigError(
                "max_queue_wait_seconds must be positive, got "
                f"{max_queue_wait_seconds}"
            )
        self.max_inflight = max_inflight
        self.max_queue_depth = max_queue_depth
        self.max_queue_wait_seconds = max_queue_wait_seconds
        self._clock = clock
        self._condition = threading.Condition()
        self._active = 0
        self._queued = 0
        self._admitted = 0
        self._shed: Counter[str] = Counter()
        self.queue_wait = LatencyReservoir(reservoir_capacity, seed=seed)
        self.shed_wait = LatencyReservoir(reservoir_capacity, seed=seed + 1)

    @contextmanager
    def admit(self) -> Iterator[float]:
        """Hold one execution slot for the ``with`` body.

        Yields the queue wait in seconds (0.0 when admitted immediately).

        Raises:
            OverloadedError: If the queue is full on arrival or no slot
                frees up within the queue-wait bound.
        """
        waited = self._acquire()
        try:
            yield waited
        finally:
            self._release()

    def _acquire(self) -> float:
        start = self._clock()
        with self._condition:
            if self._active < self.max_inflight:
                self._active += 1
                self._admitted += 1
                self.queue_wait.record(0.0)
                return 0.0
            if self._queued >= self.max_queue_depth:
                self._shed["queue_full"] += 1
                self.shed_wait.record(self._clock() - start)
                raise OverloadedError(
                    f"overloaded: {self._active} in flight and "
                    f"{self._queued}/{self.max_queue_depth} queued; "
                    "retry with backoff",
                    reason="queue_full",
                )
            self._queued += 1
            deadline = start + self.max_queue_wait_seconds
            try:
                while self._active >= self.max_inflight:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        self._shed["queue_timeout"] += 1
                        self.shed_wait.record(self._clock() - start)
                        # A _release() may have woken *this* waiter; the
                        # shed consumes that notification while the slot
                        # stays free.  Hand it on, or another queued
                        # waiter sleeps next to an idle slot until its
                        # own deadline (the lost-wakeup bug).
                        self._condition.notify()
                        raise OverloadedError(
                            "overloaded: no execution slot freed within "
                            f"{self.max_queue_wait_seconds * 1e3:.0f}ms; "
                            "retry with backoff",
                            reason="queue_timeout",
                        )
                    self._condition.wait(remaining)
                self._active += 1
                self._admitted += 1
            finally:
                self._queued -= 1
            waited = self._clock() - start
            self.queue_wait.record(waited)
            return waited

    def _release(self) -> None:
        with self._condition:
            self._active -= 1
            self._condition.notify()

    @property
    def inflight(self) -> int:
        """Requests currently holding an execution slot."""
        with self._condition:
            return self._active

    @property
    def queued(self) -> int:
        """Requests currently waiting for a slot."""
        with self._condition:
            return self._queued

    def stats(self) -> AdmissionStats:
        """A consistent snapshot of the admission counters.

        Counters *and* wait percentiles are read under the condition
        lock: every counted admission/shed records its wait sample
        before releasing it, so reading the reservoirs after dropping
        the lock could pair ``admitted`` from before a burst with
        percentiles from after it (the torn-snapshot bug).  The
        reservoirs' own locks are leaves — taking them inside the
        condition lock cannot deadlock.
        """
        with self._condition:
            admitted = self._admitted
            shed = tuple(sorted(self._shed.items()))
            inflight = self._active
            queued = self._queued
            wait = self.queue_wait.percentiles_ms()
            shed_wait_p99 = self.shed_wait.percentiles_ms()["p99"]
        return AdmissionStats(
            admitted=admitted,
            shed=shed,
            inflight=inflight,
            queued=queued,
            queue_wait_p50_ms=wait["p50"],
            queue_wait_p95_ms=wait["p95"],
            queue_wait_p99_ms=wait["p99"],
            shed_wait_p99_ms=shed_wait_p99,
        )
