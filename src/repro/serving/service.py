"""The AliCoCo concept query service.

The paper deploys the net behind Alibaba search and recommendation
(Section 7): construction is offline, serving is online.  This module is
the online half for the reproduction — :class:`AliCoCoService` wraps a
frozen (read-only) :class:`~repro.kg.store.AliCoCoStore` and exposes the
production query surface:

- ``items_for_concept`` — the shopping list behind a concept card;
- ``concepts_for_item`` — the concepts an item participates in;
- ``interpretation`` — the primitive-concept senses of a concept;
- ``hypernyms`` — primitive-concept expansion (optionally transitive);
- ``search`` — text -> concept retrieval over a fitted
  :class:`~repro.matching.bm25.BM25Index`;
- ``batch`` — the multi-query entry point.

Model-backed endpoints join the surface when the service is given
trained models (Sections 5.3 and 6 deploy them online):

- ``tag`` — free text -> IOB concept mentions linked to the primitive
  layer, via a served :class:`~repro.concepts.tagging.ConceptTagger`;
- ``items_for_concept_reranked`` — the graph's item candidates rescored
  by a neural matcher (retrieval-then-verify);
- ``search_reranked`` — BM25 concept candidates rescored the same way.

Every endpoint — model-backed ones included — is LRU-cached and records
hit/miss latency percentiles and per-exception-type error counters
(:mod:`repro.serving.stats`), and is addressable through ``batch``.  A
service warm-starts from a versioned snapshot
(:func:`repro.kg.serialize.load_snapshot`) in a fraction of a rebuild:
the store is replayed from disk, the search index is rehydrated from
its serialised state instead of re-fitted, and trained model weights
restore from the snapshot's model bundle instead of re-training.

**Thread safety.**  A service instance may be shared freely across
threads.  The design splits state into two camps:

- *Frozen graph state* — the store, the fitted search index and the
  handler table are immutable after ``__init__`` (the store is
  explicitly frozen: any mutation raises
  :class:`~repro.errors.FrozenStoreError`).  Reads of immutable
  structures need no locks, so the hot query path over the graph is
  lock-free by construction.  This is the invariant that makes the rest
  cheap: if the store could change, every endpoint would need a reader
  lock *and* the cache could serve stale results.
- *Mutable bookkeeping* — the LRU result cache, the per-endpoint
  counters and the latency reservoirs each guard themselves with a
  single internal lock (:class:`~repro.serving.cache.LRUCache`,
  :class:`~repro.serving.stats.EndpointMetrics`,
  :class:`~repro.utils.timing.LatencyReservoir`).  Two threads missing
  the same key may both compute it, but the store is frozen so they
  compute the *same* value and the second ``put`` is a harmless
  refresh.
- *Served models* — prepared once at construction time
  (:func:`~repro.serving.models.prepare_serving_module`: fitted check +
  eval mode) and treated as frozen thereafter.  Inference is read-only
  over the weights and graph recording is context-local
  (:mod:`repro.ml.tensor`), so concurrent model queries need no locks;
  :func:`~repro.serving.models.ensure_inference_mode` turns the one
  forbidden mutation — training a live served module — into a loud
  :class:`~repro.errors.ConfigError` instead of silent nondeterminism.

**Inference fast path.**  The reranked endpoints score their candidate
pool through the batched :func:`~repro.serving.models.rerank_pool`
(query side encoded once, tape-free numpy kernels from
:mod:`repro.ml.inference`) instead of one ``score_text`` call per
candidate.  Doc-side encodings — the per-candidate tensors that depend
only on the candidate's own text — are additionally memoised in a
bounded thread-safe LRU keyed by (epoch, node id).  That cache is
**legal only because served nodes are immutable**: a node's text can
never change once it exists (generational stores only ever *add*
nodes, never mutate or re-use ids), so a cached encoding can never go
stale.  The result cache's no-invalidation property is narrower: it
holds only *within one generation* — a frozen service never leaves
generation 0, so its cache never invalidates at all, while a
generational service retires a whole generation's entries at ``swap()``
by keying them under the new generation id (see **Evolvable serving**
below).  The
served model is equally frozen (prepared once, never trained —
:func:`~repro.serving.models.ensure_inference_mode` enforces it), so
encodings outlive any individual query.  The cache warms lazily as pools
are scored; :meth:`AliCoCoService.warm_doc_cache` (or
``ServiceConfig(prewarm_doc_cache=True)``) pre-encodes the snapshot's
whole catalog up front.  ``ServiceConfig(use_fast_path=False)`` restores
the scalar per-candidate path, kept as the parity oracle: identical
rankings, scores within 1e-9 of the fast path (empirically
bit-identical).

**Pluggable first stage.**  The reranked endpoints' candidate pools come
from a configurable retriever (``ServiceConfig(retriever=...)``):
``"bm25"`` keeps the historical cheap stage (lexical index for concepts,
graph association weights for items); ``"dense"`` swaps in an ANN index
(:data:`~repro.retrieval.DENSE_BACKENDS`) over the served matcher's own
embeddings, built at construction time through the doc-encoding cache;
``"hybrid"`` runs both arms and fuses their *rankings* with Reciprocal
Rank Fusion (:func:`~repro.retrieval.rrf_fuse`) — lexical arms pin exact
term matches, the dense arm bridges semantic drift.  Dense indexes are
frozen with the store, persist inside snapshots
(:data:`DENSE_CONCEPT_INDEX` / :data:`DENSE_ITEM_INDEX`), and
warm-start bit-identically to a fresh fit.

**Evolvable serving.**  A service constructed over a
:class:`~repro.kg.generations.GenerationalStore` serves *generations*
instead of one forever-frozen net.  Every request pins the current
:class:`ServingGeneration` — one immutable bundle of (store view,
search index, dense indexes, primitive index) — at entry and reads only
from it, so no request ever observes a mixed generation.  Writers grow
the store through its ``create_*``/``add_*`` API (buffered in an open
delta, invisible to readers), and :meth:`AliCoCoService.publish` seals
and swaps: indexes extend incrementally where the backend supports it
(BM25 re-derives corpus statistics exactly; brute-force appends;
IVF/HNSW delta-merge) or refit as a fallback, and one attribute
assignment installs the next generation.  Result-cache entries are
keyed by generation id, so a swap retires the old generation's entries
without ever calling a racy ``clear()`` — in-flight requests keep
hitting their pinned generation's keys, and the LRU evicts the retired
entries naturally.  Doc-side encodings survive swaps untouched (nodes
are immutable and ids are never reused);
:meth:`AliCoCoService.invalidate_doc_cache` bumps their epoch for the
deliberate cases (e.g. swapping the served reranker).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import islice
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..concepts.tagging import ConceptTagger
from ..errors import ConfigError, DataError, RelationError, ReproError, error_by_name
from ..kg import query as kgq
from ..kg.generations import GenerationalStore
from ..kg.ids import ECOMMERCE_PREFIX, ITEM_PREFIX, PRIMITIVE_PREFIX, layer_of
from ..kg.relations import RelationKind
from ..kg.serialize import (
    generational_store_from_snapshot,
    load_snapshot,
    save_generations,
    save_snapshot,
)
from ..kg.store import AliCoCoStore
from ..matching.bm25 import BM25Index
from ..matching.retrieval import RETRIEVER_MODES, require_dense_capable
from ..ml.module import Module
from ..retrieval import (
    DEFAULT_RRF_K,
    DENSE_BACKENDS,
    BaseRetriever,
    dense_index_from_state,
    make_dense_index,
    rrf_fuse,
)
from .cache import CacheCounters, LRUCache
from .models import (
    RERANKER_KIND,
    TAGGER_KIND,
    dense_doc_vector,
    dense_query_vector,
    model_bundle_state,
    prepare_serving_module,
    rerank_pool,
    rerank_score,
    restore_serving_module,
    tag_spans,
)
from .stats import EndpointMetrics, ServiceStats

#: Name under which the concept search index is stored in snapshots.
CONCEPT_INDEX = "bm25-concepts"

#: Snapshot index-state name of the dense concept index (search side).
DENSE_CONCEPT_INDEX = "dense-concepts"

#: Snapshot index-state name of the dense item index (matching side).
DENSE_ITEM_INDEX = "dense-items"

#: Snapshot bundle name of the served concept tagger.
TAGGER_MODEL = "concept-tagger"

#: Snapshot bundle name of the served matching reranker.
RERANKER_MODEL = "reranker"

#: Sentinel for cache lookups (results may legitimately be falsy).
_MISS = object()

#: Accepted values for ``batch``'s failure policy.
_ON_ERROR_MODES = ("raise", "envelope")


@dataclass(frozen=True)
class BatchResult:
    """One enveloped sub-query outcome from :meth:`AliCoCoService.batch`.

    Envelope mode (``on_error="envelope"``) returns one of these per
    request, in request order, instead of aborting the whole batch on the
    first failure.  Exactly one of ``value`` / (``error_type``,
    ``error_message``) is populated, selected by ``ok``.

    Attributes:
        ok: Whether the sub-query succeeded.
        value: The endpoint's result when ``ok`` (``None`` otherwise).
        error_type: Exception class name when failed (``None`` otherwise).
        error_message: Stringified exception when failed.
    """

    ok: bool
    value: Any = None
    error_type: str | None = None
    error_message: str | None = None

    def unwrap(self) -> Any:
        """The result value, re-raising the recorded failure if any.

        Failures recorded as :class:`~repro.errors.ReproError` subclasses
        re-raise as their original type (via
        :func:`~repro.errors.error_by_name`); anything else re-raises as
        a plain :class:`~repro.errors.ReproError` carrying the recorded
        type name and message.
        """
        if self.ok:
            return self.value
        klass = error_by_name(self.error_type or "") or ReproError
        if klass is ReproError:
            raise ReproError(f"{self.error_type}: {self.error_message}")
        raise klass(self.error_message)


@dataclass(frozen=True)
class ServiceConfig:
    """Serving knobs.

    Attributes:
        cache_capacity: LRU result-cache entries; ``0`` disables caching.
        search_top_k: Default number of concepts returned by ``search``.
        rerank_pool_k: Candidates pulled from the cheap first stage (graph
            relations or BM25) before the neural reranker rescores them.
            Bounds model work per reranked query.
        reservoir_capacity: Latency samples retained per endpoint and
            cache outcome (see
            :class:`~repro.utils.timing.LatencyReservoir`).
        seed: Seed for the reservoirs' replacement RNG.
        use_fast_path: Score rerank pools through the batched
            :func:`~repro.serving.models.rerank_pool` (query encoded
            once, tape-free kernels).  ``False`` restores the scalar
            per-candidate ``score_text`` loop — the parity oracle, for
            debugging.
        doc_cache_capacity: Doc-side encoding cache entries (see the
            module docstring's fast-path section); ``0`` disables the
            cache (pools still batch, encodings are just not reused
            across queries).
        prewarm_doc_cache: Encode the store's whole catalog into the doc
            cache at construction time instead of lazily on first use.
        retriever: First-stage strategy for the reranked endpoints.
            ``"bm25"`` (default) keeps the historical cheap stage — BM25
            concept candidates for ``search_reranked``, graph association
            ranking for ``items_for_concept_reranked``.  ``"dense"``
            replaces it with an ANN index over the served matcher's
            embeddings; ``"hybrid"`` fuses both arms with Reciprocal Rank
            Fusion.  Dense and hybrid modes need a vector-capable
            reranker (``dense_vectors = True``, e.g. DSSM) — construction
            raises :class:`~repro.errors.ConfigError` otherwise.
        dense_backend: Dense index implementation
            (:data:`~repro.retrieval.DENSE_BACKENDS` name):
            ``"bruteforce"``, ``"ivf"``, or ``"hnsw"``.
        rrf_k: Reciprocal Rank Fusion constant (hybrid mode).
        hybrid_weights: (dense arm, lexical/graph arm) RRF multipliers.
    """

    cache_capacity: int = 4096
    search_top_k: int = 10
    rerank_pool_k: int = 50
    reservoir_capacity: int = 512
    seed: int = 0
    use_fast_path: bool = True
    doc_cache_capacity: int = 8192
    prewarm_doc_cache: bool = False
    retriever: str = "bm25"
    dense_backend: str = "bruteforce"
    rrf_k: int = DEFAULT_RRF_K
    hybrid_weights: tuple[float, float] = (1.0, 1.0)

    def __post_init__(self) -> None:
        if self.cache_capacity < 0:
            raise ConfigError(f"cache_capacity must be >= 0, got {self.cache_capacity}")
        if self.doc_cache_capacity < 0:
            raise ConfigError(
                f"doc_cache_capacity must be >= 0, got {self.doc_cache_capacity}"
            )
        if self.search_top_k <= 0:
            raise ConfigError(f"search_top_k must be positive, got {self.search_top_k}")
        if self.rerank_pool_k <= 0:
            raise ConfigError(
                f"rerank_pool_k must be positive, got {self.rerank_pool_k}"
            )
        if self.reservoir_capacity <= 0:
            raise ConfigError(
                f"reservoir_capacity must be positive, got {self.reservoir_capacity}"
            )
        if self.retriever not in RETRIEVER_MODES:
            expected = ", ".join(repr(mode) for mode in RETRIEVER_MODES)
            raise ConfigError(
                f"unknown retriever {self.retriever!r}; expected one of: {expected}"
            )
        if self.dense_backend not in DENSE_BACKENDS:
            expected = ", ".join(repr(name) for name in sorted(DENSE_BACKENDS))
            raise ConfigError(
                f"unknown dense_backend {self.dense_backend!r}; "
                f"expected one of: {expected}"
            )
        if self.rrf_k <= 0:
            raise ConfigError(f"rrf_k must be positive, got {self.rrf_k}")
        if len(tuple(self.hybrid_weights)) != 2:
            raise ConfigError(
                "hybrid_weights must be (dense, lexical), got "
                f"{tuple(self.hybrid_weights)!r}"
            )


@dataclass(frozen=True)
class ServingGeneration:
    """One immutable serving state: a store view plus its derived indexes.

    Requests pin the service's current instance at entry and read only
    from it, so a concurrent :meth:`AliCoCoService.publish` can never
    show a request the new graph with the old indexes (or vice versa) —
    installing a generation is a single attribute assignment, atomic
    under the GIL.  A frozen (non-generational) service holds exactly
    one of these forever, at ``generation_id`` 0.

    Attributes:
        generation_id: The store generation these indexes were built
            over; 0 for a plain frozen store.
        store: The pinned read view (an
            :class:`~repro.kg.store.AliCoCoStore` or
            :class:`~repro.kg.generations.GenerationView`).
        search_index: The BM25 concept index over this view, or ``None``.
        dense_indexes: Dense first-stage indexes by snapshot name
            (empty under ``retriever="bm25"``).
        primitive_index: (surface, domain) -> primitive node id, for
            linking tagged mentions.
        ecommerce_count / item_count: Document-population sizes this
            generation's indexes cover; the next publish extends indexes
            with exactly the nodes beyond these counts.
    """

    generation_id: int
    store: Any
    search_index: BM25Index | None
    dense_indexes: dict[str, BaseRetriever | None] = field(default_factory=dict)
    primitive_index: dict[tuple[str, str], str] = field(default_factory=dict)
    ecommerce_count: int = 0
    item_count: int = 0


def fit_concept_index(
    store: AliCoCoStore,
    k1: float = 1.5,
    b: float = 0.75,
) -> BM25Index | None:
    """Fit the text -> concept BM25 index over a store's concept layer.

    Returns ``None`` when the store has no e-commerce concepts (a service
    over such a store simply answers every search with no results).
    """
    documents = {node.id: node.tokens for node in store.nodes(ECOMMERCE_PREFIX)}
    if not documents:
        return None
    return BM25Index(k1=k1, b=b).fit(documents)


def require_model(module: Module | None, name: str, endpoint: str) -> Module:
    """The served module, or a :class:`~repro.errors.ConfigError` naming
    the endpoint that needs it — shared by the service, the cluster and
    the out-of-process shard workers (same message everywhere)."""
    if module is None:
        raise ConfigError(
            f"endpoint {endpoint!r} needs a served {name!r} model; "
            "construct the service with one (or restore it from a "
            "snapshot model bundle)"
        )
    return module


def require_layer(store: Any, node_id: str, expected_layer: str) -> None:
    """Validate that ``node_id`` exists in ``store`` on the given layer.

    Raises:
        NodeNotFoundError: If the id is absent.
        RelationError: If the id lives on another layer.
    """
    store.get(node_id)  # NodeNotFoundError on absent ids
    if layer_of(node_id) != expected_layer:
        raise RelationError(
            f"node {node_id!r} is in layer {layer_of(node_id)!r}; "
            f"this endpoint serves layer {expected_layer!r}"
        )


def save_shard_snapshot(
    path: str | Path,
    shard_store: AliCoCoStore,
    *,
    search_index: BM25Index | None = None,
    dense_states: dict[str, Any] | None = None,
    config_fingerprint: str = "",
) -> int:
    """Persist one shard's bootstrap state as an ordinary snapshot file.

    The process-backed cluster executor writes one of these per shard so
    each worker process can load *its shard only* from disk instead of
    receiving a pickled live store over the spawn boundary — bootstrap
    cost scales with the shard, not the net, and a crashed worker
    restarts from the same file.  ``search_index`` is the shard's
    *projection* of the global concept index (global corpus statistics,
    shard-local postings — see :func:`repro.serving.shard.project_bm25_index`);
    ``dense_states`` are optional per-shard dense index states for a
    warm start.

    Returns:
        Number of lines written.
    """
    index_states: dict[str, Any] = {}
    if search_index is not None:
        index_states[CONCEPT_INDEX] = search_index.to_state()
    if dense_states:
        index_states.update(dense_states)
    return save_snapshot(
        shard_store,
        path,
        config_fingerprint=config_fingerprint,
        index_states=index_states,
    )


def shard_service_from_snapshot(
    path: str | Path,
    *,
    config: ServiceConfig | None = None,
    tagger: ConceptTagger | None = None,
    reranker: Module | None = None,
    generational: bool = False,
) -> "AliCoCoService":
    """Rehydrate one shard service from a :func:`save_shard_snapshot` file.

    The worker-process counterpart of the cluster's in-process shard
    construction: the shard store replays from disk (insertion order
    preserved, so index fits stay bit-identical to the parent's split),
    the index projection rehydrates from its serialised state, and the
    service is built with ``fit_search_index=False`` — a shard must
    never fit its own index over ghost replicas and local statistics.
    With ``generational=True`` the store is wrapped in a
    :class:`~repro.kg.generations.GenerationalStore` so cluster
    publishes can grow it behind its readers.

    Raises:
        DataError: If the snapshot is malformed.
    """
    snapshot = load_snapshot(path)
    store: AliCoCoStore | GenerationalStore = snapshot.store
    if generational:
        store = GenerationalStore(store)
    state = snapshot.index_states.get(CONCEPT_INDEX)
    search_index = BM25Index.from_state(state) if state is not None else None
    dense_index_states = {
        name: snapshot.index_states[name]
        for name in (DENSE_CONCEPT_INDEX, DENSE_ITEM_INDEX)
        if name in snapshot.index_states
    }
    return AliCoCoService(
        store,
        config=config,
        search_index=search_index,
        fit_search_index=False,
        tagger=tagger,
        reranker=reranker,
        dense_index_states=dense_index_states or None,
        config_fingerprint=snapshot.header.config_fingerprint,
    )


def _build_primitive_index(view: Any) -> dict[tuple[str, str], str]:
    """(surface, domain) -> node id over a view's primitive layer.

    Derived from an immutable view, so the mapping is immutable too;
    setdefault keeps the first node in insertion order on the rare
    duplicate surface.
    """
    primitive_index: dict[tuple[str, str], str] = {}
    for node in view.nodes(PRIMITIVE_PREFIX):
        primitive_index.setdefault((node.name, node.domain), node.id)
    return primitive_index


class AliCoCoService:
    """Concept query service over a frozen net — or an evolvable one.

    Given a plain :class:`~repro.kg.store.AliCoCoStore`, the store is
    frozen at construction time: cached results can never go stale
    because the graph underneath can never change, and the service stays
    at generation 0 forever.  Given a
    :class:`~repro.kg.generations.GenerationalStore`, the service serves
    its *published* view and advances to new generations through
    :meth:`publish` — requests pin one immutable
    :class:`ServingGeneration` at entry, so reads stay lock-free and
    internally consistent even while a publish is installing the next
    one (see the module docstring's **Evolvable serving** section).  One
    instance may be shared across threads either way — graph reads are
    lock-free over immutable state, and the cache/metrics guard
    themselves (see the module docstring for the full thread-safety
    contract).

    Args:
        store: The net to serve; frozen in place (a generational store
            stays growable through its own API — only its published
            views are immutable).
        config: Serving knobs (defaults are fine for tests/benchmarks).
        search_index: A fitted concept index to reuse (warm start); fitted
            from the store when omitted.
        tagger: A trained :class:`~repro.concepts.tagging.ConceptTagger`
            to serve behind ``tag``; the endpoint raises
            :class:`~repro.errors.ConfigError` when omitted.
        reranker: A trained matcher (anything with ``score_text``, e.g.
            :class:`~repro.matching.dssm.DSSM`) to serve behind the
            ``*_reranked`` endpoints; they raise
            :class:`~repro.errors.ConfigError` when omitted.
        dense_index_states: Serialised dense index states to warm-start
            from (snapshot ``index_states`` entries, keyed
            :data:`DENSE_CONCEPT_INDEX` / :data:`DENSE_ITEM_INDEX`).  A
            state whose backend matches ``config.dense_backend`` is
            rehydrated instead of re-fitted — retrieval is bit-identical
            to the fresh fit; mismatched or absent states rebuild from
            the store.  Ignored under ``retriever="bm25"``.
        fit_search_index: Fit a BM25 index from the store when none is
            supplied (the default).  A cluster shard passes ``False``
            together with its *projection* of the global index (or no
            index at all, for a shard owning no concepts): fitting over
            the shard store would index ghost replicas with shard-local
            corpus statistics and break scatter-gather bit-identity (see
            :mod:`repro.serving.shard`).
        config_fingerprint: Digest of the build configuration, embedded in
            snapshots this service writes
            (:meth:`repro.config.RunScale.fingerprint`).

    Raises:
        NotFittedError: If a supplied model has not been trained.
        ConfigError: If the config asks for dense/hybrid retrieval
            without a vector-capable reranker.
    """

    def __init__(
        self,
        store: AliCoCoStore,
        *,
        config: ServiceConfig | None = None,
        search_index: BM25Index | None = None,
        tagger: ConceptTagger | None = None,
        reranker: Module | None = None,
        dense_index_states: dict[str, Any] | None = None,
        fit_search_index: bool = True,
        config_fingerprint: str = "",
    ):
        self.config = config or ServiceConfig()
        self._generational = isinstance(store, GenerationalStore)
        self._store = store.freeze()  # a no-op self-return for generational stores
        self._fingerprint = config_fingerprint
        self._fit_search_index = fit_search_index
        # The view every index below is built over.  For a generational
        # store this pins the *published* view — open/staged writes stay
        # invisible until publish() builds the next generation.
        view = store.current() if self._generational else self._store
        if search_index is None and fit_search_index:
            search_index = fit_concept_index(view)
        self._tagger = (
            prepare_serving_module(tagger, TAGGER_MODEL) if tagger is not None else None
        )
        self._reranker = (
            prepare_serving_module(reranker, RERANKER_MODEL)
            if reranker is not None
            else None
        )
        self._cache = (
            LRUCache(self.config.cache_capacity) if self.config.cache_capacity else None
        )
        # Doc-side encoding cache (see the module docstring): only worth
        # holding when a fast-path reranker is served — fallback matchers
        # have no doc-side encodings to reuse.  Keys carry an epoch so
        # deliberate invalidation (invalidate_doc_cache) never needs a
        # racy clear(); generation swaps leave the epoch alone because
        # nodes are immutable and ids are never reused.
        self._doc_cache = (
            LRUCache(self.config.doc_cache_capacity)
            if (
                self._reranker is not None
                and self.config.use_fast_path
                and self.config.doc_cache_capacity > 0
                and getattr(self._reranker, "fast_path", False)
            )
            else None
        )
        self._doc_epoch = 0
        # Dense first-stage indexes over the pinned view (None entries
        # mean "population empty, fall back to the cheap stage").  Built
        # after the doc cache exists so index construction flows through
        # it — every title/concept encoded here is a future cache hit.
        dense_indexes: dict[str, BaseRetriever | None] = {}
        if self.config.retriever != "bm25":
            require_dense_capable(
                self._reranker, f"retriever {self.config.retriever!r}"
            )
            dense_indexes = self._build_dense_indexes(dense_index_states or {}, view)
        # All per-generation state rides one immutable bundle behind one
        # attribute; requests pin it at entry and publish() replaces it
        # atomically (the lock serializes publishers only — readers
        # never take it).
        self._publish_lock = threading.Lock()
        self._gen = ServingGeneration(
            generation_id=view.generation_id if self._generational else 0,
            store=view,
            search_index=search_index,
            dense_indexes=dense_indexes,
            primitive_index=_build_primitive_index(view),
            ecommerce_count=view.count_nodes(ECOMMERCE_PREFIX),
            item_count=view.count_nodes(ITEM_PREFIX),
        )
        if self._doc_cache is not None and self.config.prewarm_doc_cache:
            self.warm_doc_cache()
        self._handlers: dict[str, Callable[..., Any]] = {
            "items_for_concept": self.items_for_concept,
            "concepts_for_item": self.concepts_for_item,
            "interpretation": self.interpretation,
            "hypernyms": self.hypernyms,
            "search": self.search,
            "tag": self.tag,
            "items_for_concept_reranked": self.items_for_concept_reranked,
            "search_reranked": self.search_reranked,
        }
        self._metrics = {}
        for position, endpoint in enumerate(self._handlers):
            self._metrics[endpoint] = EndpointMetrics(
                self.config.reservoir_capacity,
                seed=self.config.seed + position,
            )

    # ------------------------------------------------------------ warm start
    @classmethod
    def from_build(
        cls,
        result: Any,
        *,
        config: ServiceConfig | None = None,
        tagger: ConceptTagger | None = None,
        reranker: Module | None = None,
        config_fingerprint: str = "",
    ) -> "AliCoCoService":
        """Serve a freshly built net (cold start; fits the search index).

        Args:
            result: A :class:`~repro.pipeline.build.BuildResult` (anything
                with a ``.store`` attribute works).
            tagger / reranker: Trained models to serve (see ``__init__``).
        """
        return cls(
            result.store,
            config=config,
            tagger=tagger,
            reranker=reranker,
            config_fingerprint=config_fingerprint,
        )

    @classmethod
    def from_snapshot(
        cls,
        path: str | Path,
        *,
        config: ServiceConfig | None = None,
        tagger: ConceptTagger | None = None,
        reranker: Module | None = None,
        expected_fingerprint: str | None = None,
    ) -> "AliCoCoService":
        """Warm-start a service from a versioned snapshot.

        The store replays from disk, the search index rehydrates from its
        serialised state, and trained weights load from the snapshot's
        model bundle — no net rebuild, no index re-fit, no re-training.

        Weights cannot conjure a model architecture out of thin air, so
        warm-starting a model works like ``torch`` state dicts: pass a
        freshly constructed (untrained) ``tagger`` / ``reranker`` built
        with the same hyperparameters, and the snapshot's exact float64
        weights are loaded into it after the bundle's architecture
        fingerprint and model kind are validated.  A snapshot may carry
        bundles the caller does not ask to restore (no module passed);
        those are ignored.

        Args:
            tagger / reranker: Untrained architecture instances to
                restore bundled weights into; served once restored.
            expected_fingerprint: When given, refuse to serve a snapshot
                built under a different configuration.

        Raises:
            DataError: If the snapshot is malformed, from another format
                version, fingerprint-mismatched, a requested model bundle
                is absent, or a bundle fails kind/architecture validation.
        """
        snapshot = load_snapshot(path)
        header = snapshot.header
        if (
            expected_fingerprint is not None
            and header.config_fingerprint != expected_fingerprint
        ):
            raise DataError(
                f"snapshot fingerprint {header.config_fingerprint!r} does "
                f"not match expected {expected_fingerprint!r}"
            )
        # A generational snapshot warm-starts a generational service:
        # segments replay with their saved generation numbering, so the
        # restored service resumes at the exact generation it was saved
        # at and its generation-keyed caches stay coherent.  A compacted
        # store may have zero delta records but a folded generation in
        # the header — still generational.  Delta-less generation-0
        # snapshots serve frozen, as before.
        store: AliCoCoStore | GenerationalStore = (
            generational_store_from_snapshot(snapshot)
            if snapshot.deltas or header.base_generation > 0
            else snapshot.store
        )
        state = snapshot.index_states.get(CONCEPT_INDEX)
        search_index = (
            BM25Index.from_state(state)
            if state is not None
            else fit_concept_index(store)
        )
        dense_index_states = {
            name: snapshot.index_states[name]
            for name in (DENSE_CONCEPT_INDEX, DENSE_ITEM_INDEX)
            if name in snapshot.index_states
        }
        for name, module in ((TAGGER_MODEL, tagger), (RERANKER_MODEL, reranker)):
            if module is None:
                continue
            bundle = snapshot.model_states.get(name)
            if bundle is None:
                bundled = ", ".join(sorted(snapshot.model_states)) or "none"
                raise DataError(
                    f"snapshot carries no {name!r} model bundle "
                    f"(bundled models: {bundled})"
                )
            kind = TAGGER_KIND if name == TAGGER_MODEL else RERANKER_KIND
            restore_serving_module(module, bundle, kind, name)
        return cls(
            store,
            config=config,
            search_index=search_index,
            tagger=tagger,
            reranker=reranker,
            dense_index_states=dense_index_states or None,
            config_fingerprint=header.config_fingerprint,
        )

    def save_snapshot(self, path: str | Path) -> int:
        """Persist the served net, indexes and models as one snapshot.

        Served models are embedded as model-bundle records (exact float64
        weights plus an architecture fingerprint); a model-less service
        writes a model-less snapshot, byte-compatible with before.  A
        dense-retrieval service additionally embeds its fitted dense
        index states, so a warm start skips the k-means/graph build and
        retrieves bit-identically.

        Returns:
            Number of lines written.
        """
        index_states = {}
        if self._search_index is not None:
            index_states[CONCEPT_INDEX] = self._search_index.to_state()
        for name, dense_index in self._dense_indexes.items():
            if dense_index is not None:
                index_states[name] = dense_index.to_state()
        model_states = {}
        if self._tagger is not None:
            model_states[TAGGER_MODEL] = model_bundle_state(self._tagger, TAGGER_KIND)
        if self._reranker is not None:
            model_states[RERANKER_MODEL] = model_bundle_state(
                self._reranker, RERANKER_KIND
            )
        saver = save_generations if self._generational else save_snapshot
        return saver(
            self._store,
            path,
            config_fingerprint=self._fingerprint,
            index_states=index_states,
            model_states=model_states,
        )

    # ----------------------------------------------------------- generations
    def publish(self, *, search_index: Any = _MISS) -> int:
        """Seal pending writes and atomically serve the next generation.

        Seals the store's open delta, swaps the published view, extends
        the derived indexes to cover the new nodes — incrementally where
        the backend supports exact extension (BM25 re-derives its corpus
        statistics over the grown collection; brute-force dense appends
        rows), cloned-then-grown so no live index is ever mutated, with
        a full refit as the fallback — and installs the whole bundle as
        one :class:`ServingGeneration` in a single atomic assignment.
        In-flight requests finish against the generation they pinned at
        entry; new requests see the new one.  Result-cache entries carry
        the generation id in their key, so the old generation's entries
        are simply never looked up again and age out of the LRU — no
        ``clear()``, no stale hits, no lost concurrent lookups.

        A publish with nothing staged and nothing open is a no-op that
        returns the current generation id.

        Args:
            search_index: When given, serve this index for the new
                generation instead of extending the old one.  A cluster
                shard cannot extend its index locally — its documents
                score with *global* corpus statistics — so the cluster
                passes a fresh projection of the advanced global index
                here (see :meth:`repro.serving.cluster.AliCoCoCluster.publish`).

        Returns:
            The generation id now being served.

        Raises:
            ConfigError: If the service serves a plain frozen store
                (build it over a
                :class:`~repro.kg.generations.GenerationalStore` to
                evolve it).
        """
        if not self._generational:
            raise ConfigError(
                "publish() needs a service over a GenerationalStore; this "
                "service serves a frozen store (generation 0 forever)"
            )
        with self._publish_lock:
            old = self._gen
            generation_id = self._store.publish()
            if generation_id == old.generation_id:
                return generation_id
            view = self._store.current()
            dense_indexes = old.dense_indexes
            if self.config.retriever != "bm25":
                dense_indexes = self._next_dense_indexes(old, view)
            self._gen = ServingGeneration(
                generation_id=generation_id,
                store=view,
                search_index=(
                    self._next_search_index(old, view)
                    if search_index is _MISS
                    else search_index
                ),
                dense_indexes=dense_indexes,
                primitive_index=_build_primitive_index(view),
                ecommerce_count=view.count_nodes(ECOMMERCE_PREFIX),
                item_count=view.count_nodes(ITEM_PREFIX),
            )
            # Roll the caches' stats windows so per-generation hit rates
            # are observable; entries are left in place — retired keys
            # are unreachable, which is the whole invalidation story.
            if self._cache is not None:
                self._cache.begin_generation(f"gen-{generation_id}")
            if self._doc_cache is not None:
                self._doc_cache.begin_generation(f"gen-{generation_id}")
            return generation_id

    def _next_search_index(
        self, old: ServingGeneration, view: Any
    ) -> BM25Index | None:
        """The next generation's concept index: extended, refit, or reused.

        The old index is never mutated — extension clones it through its
        serialised state first (:meth:`BM25Index.add_documents` is exactly
        refit-identical, see :mod:`repro.matching.bm25`), so requests
        pinned to the old generation keep searching the old index.  A
        state predating raw-length persistence cannot extend; it refits.
        """
        if not self._fit_search_index:
            # Shard services serve projections of a cluster-global index;
            # extending one locally would break scatter-gather parity.
            # The cluster advances them by passing fresh projections
            # through publish(search_index=...).
            return old.search_index
        fresh = [
            node
            for node in islice(
                view.nodes(ECOMMERCE_PREFIX), old.ecommerce_count, None
            )
            if node.tokens
        ]
        if not fresh:
            return old.search_index
        if old.search_index is None:
            return fit_concept_index(view)
        try:
            clone = BM25Index.from_state(old.search_index.to_state())
            clone.add_documents({node.id: list(node.tokens) for node in fresh})
            return clone
        except DataError:
            return fit_concept_index(view)

    def _next_dense_indexes(
        self, old: ServingGeneration, view: Any
    ) -> dict[str, BaseRetriever | None]:
        """The next generation's dense indexes: delta-merged or refit.

        Backends that support incremental add (all three shipped ones)
        are cloned through their serialised state and extended with the
        new documents' vectors — encoded through the doc cache, so the
        work is shared with future pool scoring.  Anything else refits
        over the full view.  Populations only ever grow (generational
        stores are add-only), so the slice past the old count is exactly
        the new documents.
        """
        populations = self._dense_populations(view)
        covered = {
            DENSE_CONCEPT_INDEX: old.ecommerce_count,
            DENSE_ITEM_INDEX: old.item_count,
        }
        indexes: dict[str, BaseRetriever | None] = {}
        for name, population in populations.items():
            old_index = old.dense_indexes.get(name)
            fresh = [
                (node_id, tokens)
                for node_id, tokens in population[covered[name] :]
                if tokens
            ]
            if not fresh:
                indexes[name] = old_index
                continue
            if old_index is not None and old_index.supports_add:
                clone = dense_index_from_state(old_index.to_state())
                clone.add(
                    [node_id for node_id, _ in fresh],
                    [
                        self._dense_vector(node_id, tokens)
                        for node_id, tokens in fresh
                    ],
                )
                indexes[name] = clone
                continue
            ids, vectors = [], []
            for node_id, tokens in population:
                if not tokens:
                    continue
                ids.append(node_id)
                vectors.append(self._dense_vector(node_id, tokens))
            indexes[name] = (
                make_dense_index(self.config.dense_backend).fit(ids, vectors)
                if ids
                else None
            )
        return indexes

    # ------------------------------------------------------------- endpoints
    def items_for_concept(self, concept_id: str, top_k: int | None = None) -> tuple:
        """Best items for an e-commerce concept: ((item id, weight), ...).

        Results are ordered by descending association weight (simulated
        click-through), ties broken by insertion order.

        Raises:
            ConfigError: If ``top_k`` is given but not positive.
        """
        with self._metered_errors("items_for_concept"):
            if top_k is not None and top_k <= 0:
                raise ConfigError(
                    f"items_for_concept top_k must be positive, got {top_k}"
                )
            gen = self._gen
            self._require(concept_id, ECOMMERCE_PREFIX, store=gen.store)
            return self._serve(
                "items_for_concept",
                (concept_id, top_k),
                lambda: self._items_uncached(concept_id, top_k, store=gen.store),
                gen,
            )

    def concepts_for_item(self, item_id: str) -> tuple:
        """E-commerce concept ids an item participates in."""
        with self._metered_errors("concepts_for_item"):
            gen = self._gen
            self._require(item_id, ITEM_PREFIX, store=gen.store)
            return self._serve(
                "concepts_for_item",
                (item_id,),
                lambda: self._targets_of(
                    item_id, RelationKind.ITEM_ECOMMERCE, store=gen.store
                ),
                gen,
            )

    def interpretation(self, concept_id: str) -> tuple:
        """Primitive-concept ids interpreting an e-commerce concept."""
        with self._metered_errors("interpretation"):
            gen = self._gen
            self._require(concept_id, ECOMMERCE_PREFIX, store=gen.store)
            return self._serve(
                "interpretation",
                (concept_id,),
                lambda: self._targets_of(
                    concept_id, RelationKind.INTERPRETED_BY, store=gen.store
                ),
                gen,
            )

    def hypernyms(self, primitive_id: str, transitive: bool = False) -> tuple:
        """Hypernym primitive-concept ids (breadth-first when transitive)."""
        with self._metered_errors("hypernyms"):
            gen = self._gen
            self._require(primitive_id, PRIMITIVE_PREFIX, store=gen.store)
            return self._serve(
                "hypernyms",
                (primitive_id, transitive),
                lambda: self._hypernyms_uncached(
                    primitive_id, transitive, store=gen.store
                ),
                gen,
            )

    def search(self, text: str, k: int | None = None) -> tuple:
        """Best concepts for a free-text query: ((concept id, score), ...).

        Tokenisation matches concept construction (whitespace split), so a
        concept's own text always retrieves it.  The result cache is keyed
        on the *token tuple*, so queries differing only in whitespace
        (``"a  b"`` vs ``"a b"``) share one cache entry.
        """
        with self._metered_errors("search"):
            if k is not None and k <= 0:
                raise ConfigError(f"search k must be positive, got {k}")
            k = k if k is not None else self.config.search_top_k
            tokens = tuple(text.split())
            gen = self._gen
            return self._serve(
                "search",
                (tokens, k),
                lambda: self._search_uncached(tokens, k, index=gen.search_index),
                gen,
            )

    def tag(self, text: str) -> tuple:
        """Tag free text with concept mentions linked to the primitive layer.

        Runs the served :class:`~repro.concepts.tagging.ConceptTagger`
        (IOB decode under ``no_grad``) and links each span to the
        primitive-concept node with the same (surface, domain), when one
        exists: (:class:`~repro.serving.models.TagSpan`, ...).

        Raises:
            ConfigError: If the service was built without a tagger.
            DataError: On empty text (the tagger cannot tag zero tokens).
        """
        with self._metered_errors("tag"):
            tagger = self._require_model(self._tagger, TAGGER_MODEL, "tag")
            tokens = tuple(text.split())
            gen = self._gen
            return self._serve(
                "tag",
                (tokens,),
                lambda: tag_spans(tagger, tokens, gen.primitive_index),
                gen,
            )

    def items_for_concept_reranked(
        self, concept_id: str, top_k: int | None = None
    ) -> tuple:
        """Best items for a concept, rescored by the served matcher.

        Retrieval-then-verify: the configured first stage
        (``config.retriever`` — graph association weights, the dense
        item index, or their RRF fusion) supplies up to
        ``config.rerank_pool_k`` candidate items, the neural matcher
        rescores each (concept text, item title) pair, and the pool is
        re-ordered by model probability:
        ((item id, probability), ...), ties broken by item id.  Dense
        and hybrid stages can surface catalog items the graph never
        linked to the concept.

        Raises:
            ConfigError: If the service was built without a reranker, or
                ``top_k`` is given but not positive.
        """
        with self._metered_errors("items_for_concept_reranked"):
            reranker = self._require_model(
                self._reranker, RERANKER_MODEL, "items_for_concept_reranked"
            )
            if top_k is not None and top_k <= 0:
                raise ConfigError(
                    f"items_for_concept_reranked top_k must be positive, got {top_k}"
                )
            gen = self._gen
            self._require(concept_id, ECOMMERCE_PREFIX, store=gen.store)
            return self._serve(
                "items_for_concept_reranked",
                (concept_id, top_k),
                lambda: self._items_reranked_uncached(
                    reranker, concept_id, top_k, gen
                ),
                gen,
            )

    def search_reranked(self, text: str, k: int | None = None) -> tuple:
        """Best concepts for a query, rescored by the served matcher.

        The configured first stage (``config.retriever`` — BM25, the
        dense concept index, or their RRF fusion) supplies up to
        ``config.rerank_pool_k`` candidate concepts; the matcher rescores
        each (query, concept text) pair and the pool is re-ordered by
        model probability: ((concept id, probability), ...), ties broken
        by concept id.

        Raises:
            ConfigError: If the service was built without a reranker, or
                ``k`` is given but not positive.
        """
        with self._metered_errors("search_reranked"):
            reranker = self._require_model(
                self._reranker, RERANKER_MODEL, "search_reranked"
            )
            if k is not None and k <= 0:
                raise ConfigError(f"search_reranked k must be positive, got {k}")
            k = k if k is not None else self.config.search_top_k
            tokens = tuple(text.split())
            gen = self._gen
            return self._serve(
                "search_reranked",
                (tokens, k),
                lambda: self._search_reranked_uncached(reranker, tokens, k, gen),
                gen,
            )

    def batch(
        self,
        requests: Iterable[Sequence],
        *,
        on_error: str = "raise",
        workers: int | None = None,
    ) -> list:
        """Answer many queries in one call: the multi-query entry point.

        Each request is ``(endpoint_name, *args)``, e.g.
        ``("search", "thanksgiving dinner")`` or
        ``("items_for_concept", "ec_3", 5)``.  Results come back in
        request order; each sub-query is cached and metered exactly as if
        called individually — serial or fanned out.

        Args:
            on_error: Failure policy.  ``"raise"`` (default) propagates
                the first failure, discarding the batch — the historical
                behaviour.  ``"envelope"`` never raises on a sub-query:
                it returns one :class:`BatchResult` per request, in
                request order, so one bad request cannot throw away its
                neighbours' completed work.
            workers: When given, fan sub-queries out over a thread pool
                of this size.  Result order is deterministic (always
                request order) and content is identical to serial
                execution — the store is frozen, so a query's answer does
                not depend on scheduling.

        Raises:
            ConfigError: On an unknown endpoint name (``"raise"`` mode),
                an unknown ``on_error`` policy, or a non-positive
                ``workers``.
        """
        if on_error not in _ON_ERROR_MODES:
            expected = ", ".join(repr(mode) for mode in _ON_ERROR_MODES)
            raise ConfigError(
                f"unknown on_error policy {on_error!r}; expected one of: {expected}"
            )
        if workers is not None and workers <= 0:
            raise ConfigError(f"batch workers must be positive, got {workers}")
        run = self._run_one if on_error == "raise" else self._run_enveloped
        requests = list(requests)
        if workers is None or workers == 1 or len(requests) <= 1:
            return [run(request) for request in requests]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # Futures are gathered in submission order, so results come
            # back in request order regardless of completion order; in
            # "raise" mode the earliest-submitted failure propagates.
            futures = [pool.submit(run, request) for request in requests]
            return [future.result() for future in futures]

    def _run_one(self, request: Sequence) -> Any:
        """Dispatch one batch sub-query, letting failures propagate."""
        endpoint, *args = request
        handler = self._handlers.get(endpoint)
        if handler is None:
            known = ", ".join(sorted(self._handlers))
            raise ConfigError(
                f"unknown endpoint {endpoint!r}; expected one of: {known}"
            )
        return handler(*args)

    def _run_enveloped(self, request: Sequence) -> BatchResult:
        """Dispatch one batch sub-query, capturing any failure."""
        try:
            return BatchResult(ok=True, value=self._run_one(request))
        except Exception as error:
            return BatchResult(
                ok=False,
                error_type=type(error).__name__,
                error_message=str(error),
            )

    # --------------------------------------------------------- introspection
    @property
    def store(self) -> AliCoCoStore:
        """The net being served.

        For a frozen service this is the store itself; for a generational
        service it is the :class:`~repro.kg.generations.GenerationalStore`
        — grow it through its ``create_*`` API and :meth:`publish` the
        next generation.
        """
        return self._store

    @property
    def generation_id(self) -> int:
        """The generation currently being served (0 for frozen services)."""
        return self._gen.generation_id

    @property
    def _search_index(self) -> BM25Index | None:
        """The current generation's concept index (cluster compatibility)."""
        return self._gen.search_index

    @property
    def _dense_indexes(self) -> dict[str, BaseRetriever | None]:
        """The current generation's dense indexes (cluster compatibility)."""
        return self._gen.dense_indexes

    @property
    def _primitive_index(self) -> dict[tuple[str, str], str]:
        """The current generation's primitive surface index."""
        return self._gen.primitive_index

    @property
    def endpoints(self) -> tuple[str, ...]:
        """Names accepted by :meth:`batch`."""
        return tuple(self._handlers)

    @property
    def models(self) -> tuple[str, ...]:
        """Bundle names of the models this service is serving."""
        names = []
        if self._tagger is not None:
            names.append(TAGGER_MODEL)
        if self._reranker is not None:
            names.append(RERANKER_MODEL)
        return tuple(names)

    def stats(self) -> ServiceStats:
        """Current serving statistics (store size, cache, latencies).

        Cache counter triples come from one locked
        :meth:`~repro.serving.cache.LRUCache.counters` snapshot each —
        reading ``hits``/``misses``/``evictions`` as three separate
        attribute loads can interleave with a concurrent request and
        tear (hits from before it, misses from after), which is exactly
        how a monitoring pass ends up reporting ``hits + misses >
        lookups``.
        """
        gen = self._gen
        store_stats = gen.store.stats()
        endpoint_stats = tuple(
            metrics.snapshot(endpoint) for endpoint, metrics in self._metrics.items()
        )
        doc_cache = self._doc_cache
        cache_counters = self._cache.counters() if self._cache else CacheCounters()
        doc_counters = doc_cache.counters() if doc_cache else CacheCounters()
        windows = (
            tuple(
                (label, counters.hits, counters.misses, counters.evictions)
                for label, counters in self._cache.generation_counters()
            )
            if self._cache
            else ()
        )
        return ServiceStats(
            nodes=len(gen.store),
            relations=store_stats.relations_total,
            cache_entries=len(self._cache) if self._cache else 0,
            cache_capacity=self._cache.capacity if self._cache else 0,
            cache_evictions=cache_counters.evictions,
            endpoints=endpoint_stats,
            doc_cache_entries=len(doc_cache) if doc_cache else 0,
            doc_cache_capacity=doc_cache.capacity if doc_cache else 0,
            doc_cache_hits=doc_counters.hits,
            doc_cache_misses=doc_counters.misses,
            doc_cache_evictions=doc_counters.evictions,
            cache_hits=cache_counters.hits,
            cache_misses=cache_counters.misses,
            generation_id=gen.generation_id,
            cache_generations=windows,
        )

    # ------------------------------------------------------------- internals
    # The graph/index helpers default their store/index argument to the
    # *current* generation when a caller passes none — endpoint code
    # always passes its pinned generation's components explicitly, while
    # cluster scatter paths (which serve frozen shard stores, pinned at
    # construction) keep calling the historical one-argument form.
    def _items_uncached(
        self, concept_id: str, top_k: int | None, store: Any = None
    ) -> tuple:
        store = store if store is not None else self._gen.store
        relations = store.in_relations(concept_id, RelationKind.ITEM_ECOMMERCE)
        relations.sort(key=lambda relation: -relation.weight)
        if top_k is not None:
            relations = relations[:top_k]
        return tuple((relation.source, relation.weight) for relation in relations)

    def _targets_of(
        self, node_id: str, kind: RelationKind, store: Any = None
    ) -> tuple:
        store = store if store is not None else self._gen.store
        relations = store.out_relations(node_id, kind)
        return tuple(relation.target for relation in relations)

    def _hypernyms_uncached(
        self, primitive_id: str, transitive: bool, store: Any = None
    ) -> tuple:
        store = store if store is not None else self._gen.store
        nodes = kgq.hypernyms(store, primitive_id, transitive=transitive)
        return tuple(node.id for node in nodes)

    def _search_uncached(
        self, tokens: tuple[str, ...], k: int, index: Any = _MISS
    ) -> tuple:
        if index is _MISS:
            index = self._gen.search_index
        if not tokens or index is None:
            return ()
        return tuple(index.top_k(tokens, k=k))

    # ------------------------------------------------- dense first stage
    def _build_dense_indexes(
        self, states: dict[str, Any], view: Any
    ) -> dict[str, BaseRetriever | None]:
        """Fit (or warm-start) the dense concept and item indexes.

        Every document is encoded through the doc-side cache when one is
        enabled, so building here doubles as a cache warm — and a later
        ``warm_doc_cache`` re-encodes nothing.  A snapshot state is
        reused only when its backend tag matches ``config.dense_backend``
        (rehydration is then bit-identical to the fresh fit); otherwise
        the index is rebuilt from the given view.
        """
        indexes: dict[str, BaseRetriever | None] = {}
        for name, population in self._dense_populations(view).items():
            state = states.get(name)
            if (
                isinstance(state, dict)
                and state.get("backend") == self.config.dense_backend
            ):
                indexes[name] = dense_index_from_state(state)
                continue
            ids, vectors = [], []
            for node_id, tokens in population:
                if not tokens:
                    continue
                ids.append(node_id)
                vectors.append(self._dense_vector(node_id, tokens))
            indexes[name] = (
                make_dense_index(self.config.dense_backend).fit(ids, vectors)
                if ids
                else None
            )
        return indexes

    @staticmethod
    def _dense_populations(view: Any) -> dict[str, list[tuple[str, list[str]]]]:
        """The two document populations the dense indexes cover."""
        return {
            DENSE_CONCEPT_INDEX: [
                (node.id, list(node.tokens))
                for node in view.nodes(ECOMMERCE_PREFIX)
            ],
            DENSE_ITEM_INDEX: [
                (node.id, node.title.split())
                for node in view.nodes(ITEM_PREFIX)
            ],
        }

    def _dense_vector(self, node_id: str, tokens: Sequence[str]) -> Any:
        """One document's retrieval embedding, via the doc-encoding cache."""
        encoding = None
        if self._doc_cache is not None:
            encoding = self._doc_encoding(self._reranker, node_id, tokens)
        return dense_doc_vector(self._reranker, tokens, encoding=encoding)

    def _dense_arm(self, name: str, vector: Any, k: int, indexes: Any = None) -> tuple:
        """One dense first-stage ranking: ((node id, score), ...).

        The query-vector-in flavour of dense retrieval, split out so a
        cluster (:mod:`repro.serving.cluster`) can encode the query once
        and fan the same vector out to every shard's local index.  An
        absent index (e.g. a shard owning no documents of this
        population) answers with an empty arm.
        """
        indexes = indexes if indexes is not None else self._gen.dense_indexes
        index = indexes.get(name)
        if index is None:
            return ()
        return tuple(index.retrieve(vector, k))

    def _concept_pool(
        self, tokens: tuple[str, ...], k: int, gen: ServingGeneration | None = None
    ) -> tuple:
        """Concept candidates for ``search_reranked``, per the configured
        first stage: BM25, the dense concept index, or their RRF fusion."""
        gen = gen if gen is not None else self._gen
        mode = self.config.retriever
        index = gen.dense_indexes.get(DENSE_CONCEPT_INDEX)
        if mode == "bm25" or index is None or not tokens:
            return self._search_uncached(tokens, k, index=gen.search_index)
        vector = dense_query_vector(self._reranker, tokens)
        dense = list(
            self._dense_arm(
                DENSE_CONCEPT_INDEX, vector, k, indexes=gen.dense_indexes
            )
        )
        if mode == "dense":
            return tuple(dense)
        lexical = list(self._search_uncached(tokens, k, index=gen.search_index))
        return tuple(
            rrf_fuse(
                [dense, lexical],
                k=self.config.rrf_k,
                weights=self.config.hybrid_weights,
            )[:k]
        )

    def _item_pool(
        self, concept_id: str, k: int, gen: ServingGeneration | None = None
    ) -> tuple:
        """Item candidates for ``items_for_concept_reranked``.

        The cheap structural arm here is the graph's association ranking
        (items have no BM25 index), so ``"bm25"`` mode keeps the
        historical graph-only pool, ``"dense"`` retrieves by concept
        embedding over the item-title index — which can surface catalog
        items the graph never linked — and ``"hybrid"`` RRF-fuses the
        two rankings.
        """
        gen = gen if gen is not None else self._gen
        mode = self.config.retriever
        index = gen.dense_indexes.get(DENSE_ITEM_INDEX)
        graph = self._items_uncached(concept_id, k, store=gen.store)
        if mode == "bm25" or index is None:
            return graph
        tokens = tuple(gen.store.get(concept_id).tokens)
        if not tokens:
            return graph
        vector = dense_query_vector(self._reranker, tokens)
        dense = list(
            self._dense_arm(DENSE_ITEM_INDEX, vector, k, indexes=gen.dense_indexes)
        )
        if mode == "dense":
            return tuple(dense)
        return tuple(
            rrf_fuse(
                [dense, list(graph)],
                k=self.config.rrf_k,
                weights=self.config.hybrid_weights,
            )[:k]
        )

    def _items_reranked_uncached(
        self,
        reranker: Module,
        concept_id: str,
        top_k: int | None,
        gen: ServingGeneration | None = None,
    ) -> tuple:
        gen = gen if gen is not None else self._gen
        concept_tokens = tuple(gen.store.get(concept_id).tokens)
        pool = self._item_pool(concept_id, self.config.rerank_pool_k, gen)
        item_ids = [item_id for item_id, _ in pool]
        titles = [gen.store.get(item_id).title.split() for item_id in item_ids]
        scores = self._pool_scores(reranker, concept_tokens, item_ids, titles)
        scored = sorted(zip(item_ids, scores), key=lambda pair: (-pair[1], pair[0]))
        if top_k is not None:
            scored = scored[:top_k]
        return tuple(scored)

    def _search_reranked_uncached(
        self,
        reranker: Module,
        tokens: tuple[str, ...],
        k: int,
        gen: ServingGeneration | None = None,
    ) -> tuple:
        gen = gen if gen is not None else self._gen
        pool = self._concept_pool(tokens, self.config.rerank_pool_k, gen)
        concept_ids = [concept_id for concept_id, _ in pool]
        texts = [list(gen.store.get(concept_id).tokens) for concept_id in concept_ids]
        scores = self._pool_scores(reranker, tokens, concept_ids, texts)
        scored = sorted(zip(concept_ids, scores), key=lambda pair: (-pair[1], pair[0]))
        return tuple(scored[:k])

    def _pool_scores(
        self,
        reranker: Module,
        query_tokens: Sequence[str],
        node_ids: Sequence[str],
        doc_token_lists: Sequence[Sequence[str]],
    ) -> list[float]:
        """Model probabilities for one query against a candidate pool.

        The fast path batches through
        :func:`~repro.serving.models.rerank_pool`, feeding cached
        doc-side encodings when the doc cache is enabled; the scalar
        oracle (``use_fast_path=False``, or a reranker without
        ``score_pool``) loops :func:`~repro.serving.models.rerank_score`
        per candidate.  Both produce the same scores — that equivalence
        is what the parity suite pins down.
        """
        if not doc_token_lists:
            return []
        if not self.config.use_fast_path or not hasattr(reranker, "score_pool"):
            return [
                rerank_score(reranker, query_tokens, tokens)
                for tokens in doc_token_lists
            ]
        encodings = None
        if self._doc_cache is not None:
            encodings = [
                self._doc_encoding(reranker, node_id, tokens)
                for node_id, tokens in zip(node_ids, doc_token_lists)
            ]
        scores = rerank_pool(
            reranker, query_tokens, doc_token_lists, doc_encodings=encodings
        )
        return [float(score) for score in scores]

    def _doc_encoding(
        self, reranker: Module, node_id: str, tokens: Sequence[str]
    ) -> Any:
        """One candidate's doc-side encoding, through the epoch-keyed cache.

        Node ids are globally unique across layers (``it_``/``ec_``
        prefixes), so items and concepts share one cache without key
        collisions; keys carry the doc epoch so
        :meth:`invalidate_doc_cache` can retire every entry without a
        ``clear()``.  Two threads missing the same id both encode it —
        deterministically to the same value, nodes and weights being
        immutable — and the second ``put`` is a harmless refresh.
        """
        key = (self._doc_epoch, node_id)
        encoding = self._doc_cache.get(key, _MISS)
        if encoding is _MISS:
            encoding = reranker.encode_doc(tokens)
            self._doc_cache.put(key, encoding)
        return encoding

    def invalidate_doc_cache(self) -> int:
        """Retire every cached doc encoding by bumping the key epoch.

        Old-epoch entries become unreachable and fall out of the LRU
        naturally — no ``clear()``, so a concurrent reader that already
        fetched an old-epoch encoding finishes its pool unharmed.  Never
        needed for generation swaps (nodes are immutable, ids are never
        reused); exists for the deliberate cases, e.g. hot-swapping the
        served reranker weights out-of-band.

        Returns:
            The new epoch (0 means the cache is disabled).
        """
        if self._doc_cache is None:
            return 0
        with self._publish_lock:
            self._doc_epoch += 1
            return self._doc_epoch

    def warm_doc_cache(self) -> int:
        """Pre-encode the served catalog into the doc-side encoding cache.

        Walks every item title and e-commerce concept text — the two
        document populations the reranked endpoints score — and encodes
        the ones not already cached, so the first queries after a warm
        start (or a generation publish) pay no encoding cost.  A no-op
        (returns 0) when the doc cache is disabled or no fast-path
        reranker is served.

        Returns:
            Number of nodes newly encoded.
        """
        if self._doc_cache is None:
            return 0
        reranker = self._reranker
        epoch = self._doc_epoch
        store = self._gen.store
        warmed = 0
        populations = (
            ((node.id, node.title.split()) for node in store.nodes(ITEM_PREFIX)),
            (
                (node.id, list(node.tokens))
                for node in store.nodes(ECOMMERCE_PREFIX)
            ),
        )
        for population in populations:
            for node_id, tokens in population:
                # ``in`` skips already-cached ids without counting a
                # lookup, keeping hit/miss stats meaningful for traffic.
                if not tokens or (epoch, node_id) in self._doc_cache:
                    continue
                self._doc_cache.put((epoch, node_id), reranker.encode_doc(tokens))
                warmed += 1
        return warmed

    def _require_model(
        self, module: Module | None, name: str, endpoint: str
    ) -> Module:
        return require_model(module, name, endpoint)

    def _require(self, node_id: str, expected_layer: str, store: Any = None) -> None:
        store = store if store is not None else self._gen.store
        require_layer(store, node_id, expected_layer)

    @contextmanager
    def _metered_errors(self, endpoint: str) -> Iterator[None]:
        """Count any failure against the endpoint's error stats, re-raising."""
        try:
            yield
        except Exception as error:
            self._metrics[endpoint].record_error(type(error).__name__)
            raise

    def _serve(
        self,
        endpoint: str,
        key: tuple,
        compute: Callable[[], Any],
        gen: ServingGeneration | None = None,
    ) -> Any:
        metrics = self._metrics[endpoint]
        start = perf_counter()
        # Generational services prefix cache keys with the pinned
        # generation id: a swap retires the old generation's entries by
        # making them unreachable (the LRU evicts them naturally) instead
        # of clear()ing under concurrent readers.  Frozen services keep
        # the historical unprefixed keys.
        if self._generational:
            gen = gen if gen is not None else self._gen
            cache_key = ("gen", gen.generation_id, endpoint, *key)
        else:
            cache_key = (endpoint, *key)
        if self._cache is not None:
            cached = self._cache.get(cache_key, _MISS)
            if cached is not _MISS:
                metrics.record_hit(perf_counter() - start)
                return cached
        value = compute()
        if self._cache is not None:
            self._cache.put(cache_key, value)
        metrics.record_miss(perf_counter() - start)
        return value
