"""Compact framed RPC between the cluster parent and its shard workers.

The process-backed shard executor (:mod:`repro.serving.procpool`) talks
to each worker over one :func:`multiprocessing.Pipe` connection.  This
module owns the wire format and the per-channel bookkeeping:

- **Framing** (:func:`encode_frame` / :func:`decode_frame`): every
  message is a fixed 8-byte header — 2-byte magic, 1-byte format
  version, 1-byte reserved flag, 4-byte big-endian payload length —
  followed by a pickled payload.  The header makes corruption loud: a
  frame from another protocol (or a torn write) fails with a
  :class:`~repro.errors.DataError` naming the mismatch instead of a
  pickle error three layers down, and the declared length is validated
  against the bytes actually received.
- **Envelopes**: a request is ``(method, args)``; a response is
  ``(True, value)`` or ``(False, (error_type, message, detail))``.
  Failures travel as *names* so worker-side library errors re-raise in
  the parent as their original :class:`~repro.errors.ReproError`
  subclass (:func:`raise_remote`), keeping routed-endpoint error
  behaviour bit-identical to the in-process executor.
- **Channels** (:class:`ShardChannel`): one per worker — the
  connection, the lock that serializes callers onto the pipe, a
  round-trip :class:`~repro.utils.timing.LatencyReservoir` and a call
  counter.  A *batched scatter* holds several channel locks at once;
  lock order is always increasing shard index (see
  :meth:`repro.serving.procpool.ProcessShardPool.scatter`), so a
  scatter can never deadlock against a routed call.

The parent's whole-pool scatter carries one request per shard per
round-trip — a pool-scoring request ships every candidate the shard
owns in a single frame, so fan-out cost is one syscall each way per
shard, not per candidate.
"""

from __future__ import annotations

import pickle
import struct
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Any

from ..errors import DataError, OverloadedError, ReproError, error_by_name
from ..utils.timing import LatencyReservoir

#: First two bytes of every frame ("AliCoCo RPC").
RPC_MAGIC = b"AR"

#: Wire-format version; bump on incompatible header/envelope changes.
RPC_VERSION = 1

#: Header layout: magic, version byte, reserved byte, payload length.
_HEADER = struct.Struct(">2sBBI")

#: Refuse absurd frames before allocating for them (256 MiB).
MAX_FRAME_BYTES = 1 << 28


def encode_frame(payload: Any) -> bytes:
    """Serialise one RPC payload as a length-prefixed framed message."""
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(RPC_MAGIC, RPC_VERSION, 0, len(body)) + body


def decode_frame(frame: bytes) -> Any:
    """Validate a frame's header and deserialise its payload.

    Raises:
        DataError: On a short frame, wrong magic, wrong version, or a
            declared length that disagrees with the bytes received.
    """
    if len(frame) < _HEADER.size:
        raise DataError(
            f"RPC frame too short: {len(frame)} bytes < {_HEADER.size}-byte header"
        )
    magic, version, _flags, length = _HEADER.unpack_from(frame)
    if magic != RPC_MAGIC:
        raise DataError(f"bad RPC magic {magic!r}; expected {RPC_MAGIC!r}")
    if version != RPC_VERSION:
        raise DataError(
            f"RPC version {version} not supported (speaking {RPC_VERSION})"
        )
    if length > MAX_FRAME_BYTES:
        raise DataError(f"RPC frame declares {length} bytes > {MAX_FRAME_BYTES}")
    body = frame[_HEADER.size :]
    if len(body) != length:
        raise DataError(
            f"RPC frame declares {length} payload bytes, carries {len(body)}"
        )
    return pickle.loads(body)


def error_envelope(error: BaseException) -> tuple:
    """A ``(False, (type name, message, detail))`` response envelope.

    ``detail`` carries typed-error attributes that a plain message cannot
    reconstruct (today: :class:`~repro.errors.OverloadedError.reason`).
    """
    detail = getattr(error, "reason", None)
    return (False, (type(error).__name__, str(error), detail))


def raise_remote(failure: tuple) -> None:
    """Re-raise a worker-side failure under its original library type.

    Names outside the :class:`~repro.errors.ReproError` hierarchy (a
    worker-side ``TypeError``, say) re-raise as a plain ``ReproError``
    carrying the recorded name — same contract as
    :meth:`repro.serving.BatchResult.unwrap`.
    """
    name, message, detail = failure
    klass = error_by_name(name)
    if klass is None:
        raise ReproError(f"{name}: {message}")
    if klass is OverloadedError and detail is not None:
        raise klass(message, reason=detail)
    raise klass(message)


@dataclass(frozen=True)
class ChannelStats:
    """One worker channel's round-trip health, parent-side.

    Attributes:
        calls: Round-trips completed on the channel.
        rtt_p50_ms / rtt_p95_ms / rtt_p99_ms: Round-trip latency
            percentiles over a uniform reservoir sample — the IPC tax a
            scattered sub-request pays, queueing on the channel lock
            included.
    """

    calls: int
    rtt_p50_ms: float
    rtt_p95_ms: float
    rtt_p99_ms: float


class ShardChannel:
    """One worker's pipe endpoint plus its serialization and metering.

    The lock serializes parent threads onto the underlying connection —
    a pipe interleaves writers at arbitrary byte boundaries, so exactly
    one request may be in flight per channel.  Scatter callers hold
    several channel locks at once (always acquired in increasing shard
    order); see the module docstring for the deadlock argument.

    Args:
        connection: The parent end of the worker's pipe.
        reservoir_capacity / seed: Round-trip reservoir knobs.
    """

    def __init__(
        self,
        connection: Any,
        *,
        reservoir_capacity: int = 512,
        seed: int = 0,
    ):
        self.connection = connection
        self.lock = threading.RLock()
        self._rtt = LatencyReservoir(reservoir_capacity, seed=seed)

    def reset(self, connection: Any) -> None:
        """Swap in a respawned worker's pipe end.

        The lock and the round-trip reservoir survive the restart — a
        worker's latency history spans its respawns; only the transport
        is replaced.  Caller must hold :attr:`lock`.
        """
        self.close()
        self.connection = connection

    def send(self, method: str, args: tuple) -> None:
        """Frame and send one request (caller must hold :attr:`lock`)."""
        self.connection.send_bytes(encode_frame((method, args)))

    def receive(self) -> Any:
        """Receive one response, unwrap the envelope, re-raise failures.

        Caller must hold :attr:`lock`.  Raises ``EOFError`` /
        ``OSError`` when the worker died mid-conversation — the pool
        turns those into restart-or-degrade decisions.
        """
        ok, value = decode_frame(self.connection.recv_bytes())
        if not ok:
            raise_remote(value)
        return value

    def roundtrip(self, method: str, args: tuple) -> Any:
        """One send + receive under the channel lock, metered."""
        with self.lock:
            start = perf_counter()
            self.send(method, args)
            value = self.receive()
        self._rtt.record(perf_counter() - start)
        return value

    def record_roundtrip(self, seconds: float) -> None:
        """Meter a round-trip driven externally (pipelined scatter)."""
        self._rtt.record(seconds)

    def stats(self) -> ChannelStats:
        """Round-trip percentiles and call count."""
        summary = self._rtt.percentiles_ms()
        return ChannelStats(
            calls=self._rtt.count,
            rtt_p50_ms=summary["p50"],
            rtt_p95_ms=summary["p95"],
            rtt_p99_ms=summary["p99"],
        )

    def close(self) -> None:
        """Close the parent end of the pipe (idempotent)."""
        if self.connection is None:
            return
        try:
            self.connection.close()
        except OSError:
            pass


def serve_connection(connection: Any, dispatch: Any) -> None:
    """Worker-side RPC loop: frame in, dispatch, envelope out.

    Runs until the parent closes its end (``EOFError``) or a
    ``"shutdown"`` request arrives (acknowledged before exiting, so the
    parent can join the process deterministically).  Handler exceptions
    become error envelopes — the loop itself never dies to an
    application error, only to a broken pipe.
    """
    while True:
        try:
            frame = connection.recv_bytes()
        except (EOFError, OSError):
            return
        try:
            method, args = decode_frame(frame)
            if method == "shutdown":
                connection.send_bytes(encode_frame((True, "bye")))
                return
            response = (True, dispatch(method, args))
        except BaseException as error:  # envelope *everything* app-level
            response = error_envelope(error)
        try:
            connection.send_bytes(encode_frame(response))
        except (BrokenPipeError, OSError):
            return
