"""Per-endpoint serving metrics: call counters and latency percentiles.

Every endpoint of :class:`~repro.serving.AliCoCoService` owns an
:class:`EndpointMetrics` that separates *cached* from *uncached* answers —
the two populations differ by orders of magnitude, so a single mixed
histogram would hide exactly the signal an operator needs (is the cache
absorbing the load, and what does a miss cost?).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.timing import LatencyReservoir


class EndpointMetrics:
    """Mutable counters + hit/miss latency reservoirs for one endpoint."""

    def __init__(self, reservoir_capacity: int = 512, seed: int = 0):
        self.calls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.hit_latency = LatencyReservoir(reservoir_capacity, seed=seed)
        self.miss_latency = LatencyReservoir(reservoir_capacity, seed=seed + 1)

    def record_hit(self, seconds: float) -> None:
        """Count one query answered from the cache."""
        self.calls += 1
        self.cache_hits += 1
        self.hit_latency.record(seconds)

    def record_miss(self, seconds: float) -> None:
        """Count one query computed against the store."""
        self.calls += 1
        self.cache_misses += 1
        self.miss_latency.record(seconds)

    def snapshot(self, endpoint: str) -> "EndpointStats":
        """An immutable summary of the current counters."""
        hit = self.hit_latency.percentiles_ms()
        miss = self.miss_latency.percentiles_ms()
        return EndpointStats(
            endpoint=endpoint,
            calls=self.calls,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            hit_p50_ms=hit["p50"],
            hit_p95_ms=hit["p95"],
            hit_p99_ms=hit["p99"],
            miss_p50_ms=miss["p50"],
            miss_p95_ms=miss["p95"],
            miss_p99_ms=miss["p99"],
        )


@dataclass(frozen=True)
class EndpointStats:
    """Frozen per-endpoint serving summary (latencies in milliseconds)."""

    endpoint: str
    calls: int
    cache_hits: int
    cache_misses: int
    hit_p50_ms: float
    hit_p95_ms: float
    hit_p99_ms: float
    miss_p50_ms: float
    miss_p95_ms: float
    miss_p99_ms: float

    @property
    def hit_rate(self) -> float:
        """Cache hits over calls (0.0 before any call)."""
        return self.cache_hits / self.calls if self.calls else 0.0


@dataclass(frozen=True)
class ServiceStats:
    """Whole-service report: store size, cache state, per-endpoint stats."""

    nodes: int
    relations: int
    cache_entries: int
    cache_capacity: int
    cache_evictions: int
    endpoints: tuple[EndpointStats, ...]

    def endpoint(self, name: str) -> EndpointStats:
        """Stats for one endpoint.

        Raises:
            KeyError: If the endpoint never existed on the service.
        """
        for stats in self.endpoints:
            if stats.endpoint == name:
                return stats
        raise KeyError(f"unknown endpoint {name!r}")

    @property
    def total_calls(self) -> int:
        """Queries answered across all endpoints."""
        return sum(stats.calls for stats in self.endpoints)

    def format_table(self, title: str = "service stats") -> str:
        """Human-readable per-endpoint table for reports."""
        lines = [
            title,
            f"  store: {self.nodes} nodes / {self.relations} relations",
            f"  cache: {self.cache_entries}/{self.cache_capacity} "
            f"entries, {self.cache_evictions} evictions",
            f"  {'endpoint':<20} {'calls':>7} {'hit%':>6} "
            f"{'miss p50':>10} {'miss p99':>10} {'hit p50':>10}",
        ]
        for stats in self.endpoints:
            lines.append(
                f"  {stats.endpoint:<20} {stats.calls:>7} "
                f"{stats.hit_rate * 100:>5.1f}% "
                f"{stats.miss_p50_ms:>8.4f}ms {stats.miss_p99_ms:>8.4f}ms "
                f"{stats.hit_p50_ms:>8.4f}ms"
            )
        return "\n".join(lines)
