"""Per-endpoint serving metrics: call counters, errors, latency percentiles.

Every endpoint of :class:`~repro.serving.AliCoCoService` owns an
:class:`EndpointMetrics` that separates *cached* from *uncached* answers —
the two populations differ by orders of magnitude, so a single mixed
histogram would hide exactly the signal an operator needs (is the cache
absorbing the load, and what does a miss cost?).  Failed requests are
counted separately by exception type, so degraded traffic (bad ids,
invalid arguments) shows up in the stats report instead of vanishing
into the caller's stack traces.

All counters on one :class:`EndpointMetrics` are guarded by a single
lock, so concurrent serving threads can never tear them apart:
``cache_hits + cache_misses == calls`` holds under any interleaving, and
a :meth:`~EndpointMetrics.snapshot` is a consistent cut, never a
mid-update view.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass

from ..utils.timing import LatencyReservoir


class EndpointMetrics:
    """Mutable counters + hit/miss latency reservoirs for one endpoint.

    Thread-safe: one lock serialises every counter update and snapshot.
    ``calls`` counts *answered* queries only; requests that raise are
    tallied in ``errors`` (keyed by exception type name) instead, so
    ``cache_hits + cache_misses == calls`` is an invariant.
    """

    def __init__(self, reservoir_capacity: int = 512, seed: int = 0):
        self.calls = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.errors: Counter[str] = Counter()
        self.hit_latency = LatencyReservoir(reservoir_capacity, seed=seed)
        self.miss_latency = LatencyReservoir(reservoir_capacity, seed=seed + 1)
        self._lock = threading.Lock()

    def record_hit(self, seconds: float) -> None:
        """Count one query answered from the cache."""
        with self._lock:
            self.calls += 1
            self.cache_hits += 1
        self.hit_latency.record(seconds)

    def record_miss(self, seconds: float) -> None:
        """Count one query computed against the store."""
        with self._lock:
            self.calls += 1
            self.cache_misses += 1
        self.miss_latency.record(seconds)

    def record_error(self, error_type: str) -> None:
        """Count one request that raised, keyed by exception type name."""
        with self._lock:
            self.errors[error_type] += 1

    def snapshot(self, endpoint: str) -> "EndpointStats":
        """An immutable summary of the current counters."""
        with self._lock:
            calls = self.calls
            cache_hits = self.cache_hits
            cache_misses = self.cache_misses
            errors = tuple(sorted(self.errors.items()))
        hit = self.hit_latency.percentiles_ms()
        miss = self.miss_latency.percentiles_ms()
        return EndpointStats(
            endpoint=endpoint,
            calls=calls,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            errors=errors,
            hit_p50_ms=hit["p50"],
            hit_p95_ms=hit["p95"],
            hit_p99_ms=hit["p99"],
            miss_p50_ms=miss["p50"],
            miss_p95_ms=miss["p95"],
            miss_p99_ms=miss["p99"],
        )


@dataclass(frozen=True)
class EndpointStats:
    """Frozen per-endpoint serving summary (latencies in milliseconds).

    ``errors`` is a sorted ``(exception type name, count)`` tuple;
    ``calls`` counts successful answers only, so an endpoint's total
    traffic is ``calls + error_total``.
    """

    endpoint: str
    calls: int
    cache_hits: int
    cache_misses: int
    hit_p50_ms: float
    hit_p95_ms: float
    hit_p99_ms: float
    miss_p50_ms: float
    miss_p95_ms: float
    miss_p99_ms: float
    errors: tuple[tuple[str, int], ...] = ()

    @property
    def hit_rate(self) -> float:
        """Cache hits over calls (0.0 before any call)."""
        return self.cache_hits / self.calls if self.calls else 0.0

    @property
    def error_total(self) -> int:
        """Requests that raised, across all exception types."""
        return sum(count for _, count in self.errors)


def endpoint_table(endpoints: tuple["EndpointStats", ...]) -> list[str]:
    """Aligned per-endpoint table rows (header first), for stats reports.

    The endpoint column is sized to the longest endpoint name so long
    names (``items_for_concept_reranked`` is 25 characters) can never
    push the numeric columns out of alignment.
    """
    width = max([len("endpoint")] + [len(stats.endpoint) for stats in endpoints])
    lines = [
        f"  {'endpoint':<{width}} {'calls':>7} {'errors':>7} {'hit%':>6} "
        f"{'miss p50':>10} {'miss p99':>10} {'hit p50':>10}",
    ]
    for stats in endpoints:
        lines.append(
            f"  {stats.endpoint:<{width}} {stats.calls:>7} "
            f"{stats.error_total:>7} "
            f"{stats.hit_rate * 100:>5.1f}% "
            f"{stats.miss_p50_ms:>8.4f}ms {stats.miss_p99_ms:>8.4f}ms "
            f"{stats.hit_p50_ms:>8.4f}ms"
        )
    return lines


@dataclass(frozen=True)
class ServiceStats:
    """Whole-service report: store size, cache state, per-endpoint stats.

    The ``doc_cache_*`` fields describe the doc-side encoding cache of
    the inference fast path (all zero when it is disabled or no
    fast-path reranker is served).  The ``cache_*``/``doc_cache_*``
    counter triples are each taken as one locked snapshot
    (:meth:`repro.serving.cache.LRUCache.counters`), so hits + misses
    always equals the lookups actually made — never a torn mid-update
    read.  ``generation_id`` is 0 for frozen services and the published
    generation for services over a
    :class:`~repro.kg.generations.GenerationalStore`;
    ``cache_generations`` breaks the result cache's counters into
    per-generation windows (``(label, hits, misses, evictions)``,
    oldest first, open window last).
    """

    nodes: int
    relations: int
    cache_entries: int
    cache_capacity: int
    cache_evictions: int
    endpoints: tuple[EndpointStats, ...]
    doc_cache_entries: int = 0
    doc_cache_capacity: int = 0
    doc_cache_hits: int = 0
    doc_cache_misses: int = 0
    doc_cache_evictions: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    generation_id: int = 0
    cache_generations: tuple[tuple[str, int, int, int], ...] = ()

    def endpoint(self, name: str) -> EndpointStats:
        """Stats for one endpoint.

        Raises:
            KeyError: If the endpoint never existed on the service.
        """
        for stats in self.endpoints:
            if stats.endpoint == name:
                return stats
        raise KeyError(f"unknown endpoint {name!r}")

    @property
    def total_calls(self) -> int:
        """Queries answered across all endpoints."""
        return sum(stats.calls for stats in self.endpoints)

    @property
    def total_errors(self) -> int:
        """Requests that raised, across all endpoints and exception types."""
        return sum(stats.error_total for stats in self.endpoints)

    def format_table(self, title: str = "service stats") -> str:
        """Human-readable per-endpoint table for reports."""
        lines = [
            title,
            f"  store: {self.nodes} nodes / {self.relations} relations"
            + (
                f" (generation {self.generation_id})"
                if self.generation_id
                else ""
            ),
            f"  cache: {self.cache_entries}/{self.cache_capacity} "
            f"entries, {self.cache_evictions} evictions",
        ]
        if len(self.cache_generations) > 1:
            windows = ", ".join(
                f"{label}: {hits}h/{misses}m"
                for label, hits, misses, _ in self.cache_generations
            )
            lines.append(f"  cache windows: {windows}")
        if self.doc_cache_capacity:
            lookups = self.doc_cache_hits + self.doc_cache_misses
            rate = self.doc_cache_hits / lookups if lookups else 0.0
            lines.append(
                f"  doc cache: {self.doc_cache_entries}/"
                f"{self.doc_cache_capacity} entries, "
                f"{rate * 100:.1f}% hit rate, "
                f"{self.doc_cache_evictions} evictions"
            )
        lines += endpoint_table(self.endpoints)
        if self.total_errors:
            by_type: dict[str, int] = {}
            for stats in self.endpoints:
                for error_type, count in stats.errors:
                    by_type[error_type] = by_type.get(error_type, 0) + count
            summary = ", ".join(
                f"{error_type} x{count}"
                for error_type, count in sorted(by_type.items())
            )
            lines.append(f"  errors: {summary}")
        return "\n".join(lines)
