"""Hash-sharding a frozen net for scatter-gather serving.

The paper's net answers Alibaba-scale traffic; one Python process with
one monolithic store does not.  This module is the *data* half of the
cluster tier (:mod:`repro.serving.cluster` is the query half): it splits
an :class:`~repro.kg.store.AliCoCoStore` into N self-contained shard
stores by node-id hash, so each shard can be served by an ordinary
:class:`~repro.serving.AliCoCoService` and queries either *route* to one
shard or *scatter* across all of them and merge.

**Placement rules** (:func:`split_store`):

- The taxonomy layers (``cls_``/``pc_`` — small, read on every
  interpretation/hypernym query) are **replicated** to every shard,
  together with every relation whose endpoints both lie in them.
- The big layers (``ec_`` concepts, ``item_`` items) are **partitioned**
  by :func:`shard_of` — a stable CRC32 of the node id, so placement is
  identical across processes and runs (Python's builtin ``hash`` is
  salted per process and would re-shard the net on every restart).
- A relation lives on the owner shard of **each** of its partitioned
  endpoints.  The missing endpoint is added to that shard as a *ghost
  replica* (same node object, not owned), so the shard store passes
  endpoint validation and can serve the relation's text locally.

The placement invariant the cluster relies on: **every relation incident
to a node is present on that node's owner shard, in global insertion
order.**  Point lookups (``items_for_concept``, ``concepts_for_item``,
``interpretation``, ``hypernyms``) therefore route to one shard and
answer bit-identically to the monolithic store — including weight-tie
ordering, because each shard replays its relations in global order.

**Sharded lexical retrieval** (:func:`project_bm25_index`): a BM25 score
depends on corpus statistics (idf, average document length), so an index
*fitted per shard* would score with local statistics and a scatter-gather
merge would disagree with the single-index oracle.  Instead each shard
gets a **projection** of the one global index: its own documents and
postings only, but the global idf table and the global length norms.
Shard scores are then exactly the global scores, and merging per-shard
top-k lists by ``(-score, global fit position)`` reproduces the global
``top_k`` bit for bit (:func:`merge_ranked` — the same tie-break contract
the retrieval backends pin down).
"""

from __future__ import annotations

import zlib
from typing import Iterable, Mapping, Sequence

from ..errors import ConfigError
from ..kg.ids import (
    CLASS_PREFIX,
    ECOMMERCE_PREFIX,
    ITEM_PREFIX,
    PRIMITIVE_PREFIX,
    layer_of,
)
from ..kg.relations import Relation
from ..kg.store import AliCoCoStore
from ..matching.bm25 import BM25Index

#: Layers partitioned across shards by node-id hash.
PARTITIONED_LAYERS = (ECOMMERCE_PREFIX, ITEM_PREFIX)

#: Layers replicated in full to every shard (the small taxonomy layers).
REPLICATED_LAYERS = (CLASS_PREFIX, PRIMITIVE_PREFIX)


def shard_of(node_id: str, n_shards: int) -> int:
    """Owner shard of a node id: a stable hash, identical across runs.

    CRC32 of the UTF-8 id modulo the shard count — deterministic across
    processes (unlike builtin ``hash``, which is salted), cheap, and
    uniform enough that shard loads balance (see the balance stats in
    ``benchmarks/bench_cluster.py``).

    Raises:
        ConfigError: If ``n_shards`` is not positive.
    """
    if n_shards <= 0:
        raise ConfigError(f"n_shards must be positive, got {n_shards}")
    return zlib.crc32(node_id.encode("utf-8")) % n_shards


def is_partitioned(node_id: str) -> bool:
    """Whether a node id belongs to a hash-partitioned layer."""
    return layer_of(node_id) in PARTITIONED_LAYERS


def owner_shards(relation: Relation, n_shards: int) -> tuple[int, ...]:
    """The shards a relation is placed on (sorted, duplicate-free).

    A relation between two replicated-layer nodes lives everywhere; any
    other relation lives on the owner shard of each partitioned endpoint.
    """
    owners = {
        shard_of(endpoint, n_shards)
        for endpoint in (relation.source, relation.target)
        if is_partitioned(endpoint)
    }
    if not owners:
        return tuple(range(n_shards))
    return tuple(sorted(owners))


def split_store(store: AliCoCoStore, n_shards: int) -> list[AliCoCoStore]:
    """Split a store into ``n_shards`` self-contained shard stores.

    Node objects are shared, not copied (nodes are immutable under
    serving); the shard stores come back unfrozen so callers can freeze
    them through the services that serve them.  Splitting is
    deterministic: the same store and shard count always produce the
    same shards, so a cluster can re-split after a snapshot reload and
    land on identical placement.

    Raises:
        ConfigError: If ``n_shards`` is not positive.
    """
    if n_shards <= 0:
        raise ConfigError(f"n_shards must be positive, got {n_shards}")
    shards = [AliCoCoStore() for _ in range(n_shards)]
    for node in store.nodes():
        if is_partitioned(node.id):
            shards[shard_of(node.id, n_shards)].add_node(node)
        else:
            for shard in shards:
                shard.add_node(node)
    # Relations replay in global insertion order per shard, so a shard's
    # adjacency lists are order-preserving subsequences of the global
    # ones — weight ties resolve exactly as the monolithic store would.
    pending: list[list[Relation]] = [[] for _ in range(n_shards)]
    for relation in store.relations():
        for home in owner_shards(relation, n_shards):
            shard = shards[home]
            for endpoint in (relation.source, relation.target):
                if endpoint not in shard:
                    shard.add_node(store.get(endpoint))  # ghost replica
            pending[home].append(relation)
    for shard, relations in zip(shards, pending):
        shard.add_relations_trusted(relations)
    return shards


def shard_sizes(store: AliCoCoStore, n_shards: int) -> list[int]:
    """Partitioned nodes *owned* by each shard (replicas not counted).

    The hash-placement census behind the cluster's ownership-imbalance
    report: an unlucky split can leave a shard owning zero nodes, so
    downstream ratio reports must stay ``inf``-safe
    (:attr:`repro.serving.cluster.ClusterStats.ownership_imbalance`).

    Raises:
        ConfigError: If ``n_shards`` is not positive.
    """
    if n_shards <= 0:
        raise ConfigError(f"n_shards must be positive, got {n_shards}")
    counts = [0] * n_shards
    for layer in PARTITIONED_LAYERS:
        for node in store.nodes(layer):
            counts[shard_of(node.id, n_shards)] += 1
    return counts


def owned_ids(store: AliCoCoStore, shard_id: int, n_shards: int,
              layer: str) -> list[str]:
    """Ids of a layer a shard *owns* (ghost replicas excluded).

    Ownership is a pure function of the id (:func:`shard_of`), so this
    works on the global store and on a shard store alike.
    """
    return [
        node.id
        for node in store.nodes(layer)
        if shard_of(node.id, n_shards) == shard_id
    ]


def project_bm25_index(index: BM25Index | None,
                       keep: Iterable[str]) -> BM25Index | None:
    """Project a fitted global BM25 index onto a document subset.

    The projection keeps only the subset's documents, postings and
    length norms, but the **global** idf table and global-statistics
    norms — so every kept document scores exactly as it does in the full
    index, and a scatter-gather merge of per-shard projections is
    bit-identical to the global ``top_k`` (see :func:`merge_ranked`).
    Local positions preserve global order, so per-shard tie-breaks stay
    order-consistent with the global index.

    Returns ``None`` when the subset is empty (or the index is ``None``)
    — a shard owning no concepts serves an empty search surface.
    """
    if index is None:
        return None
    keep = set(keep)
    state = index.to_state()
    keep_positions = [
        position
        for position, doc_id in enumerate(state["doc_ids"])
        if doc_id in keep
    ]
    if not keep_positions:
        return None
    remap = {old: new for new, old in enumerate(keep_positions)}
    postings = {}
    for term, term_postings in state["postings"].items():
        kept = [
            [remap[position], frequency]
            for position, frequency in term_postings
            if position in remap
        ]
        if kept:
            postings[term] = kept
    return BM25Index.from_state({
        "k1": state["k1"],
        "b": state["b"],
        "doc_ids": [state["doc_ids"][position] for position in keep_positions],
        "postings": postings,
        "norms": [state["norms"][position] for position in keep_positions],
        "idf": state["idf"],  # global idf: scores must not change
    })


def split_concept_index(index: BM25Index | None,
                        n_shards: int) -> list[BM25Index | None]:
    """Per-shard projections of the global concept index.

    Raises:
        ConfigError: If ``n_shards`` is not positive.
    """
    if n_shards <= 0:
        raise ConfigError(f"n_shards must be positive, got {n_shards}")
    if index is None:
        return [None] * n_shards
    doc_ids = index.to_state()["doc_ids"]
    return [
        project_bm25_index(
            index,
            (
                doc_id
                for doc_id in doc_ids
                if shard_of(doc_id, n_shards) == shard
            ),
        )
        for shard in range(n_shards)
    ]


def merge_ranked(arms: Sequence[Sequence[tuple]],
                 position: Mapping[str, int],
                 k: int) -> tuple:
    """Deterministic global merge of per-shard ``(id, score)`` rankings.

    The scatter-gather counterpart of a single index's ``top_k``: every
    candidate from every shard is pooled (duplicates — ghost replicas
    indexed on two shards — keep their first occurrence; replicas score
    identically by construction, so which copy survives cannot matter)
    and re-ranked by ``(-score, global fit position)``.  Because each
    shard's list is its *exact* local top-k under global scores, the
    union is a superset of the global top-k and the merge reproduces the
    single-index ranking bit for bit — the same tie-break contract as
    :meth:`repro.matching.bm25.BM25Index.top_k` and the dense retrievers.

    Args:
        arms: One ``((id, score), ...)`` ranking per shard.
        position: Node id -> global fit position (ties break low-first).
            Ids absent from the map rank after mapped ones, by id.
        k: Result length bound.
    """
    pooled: dict[str, float] = {}
    for arm in arms:
        for node_id, score in arm:
            if node_id not in pooled:
                pooled[node_id] = score
    fallback = len(position)
    ranked = sorted(
        pooled.items(),
        key=lambda pair: (-pair[1], position.get(pair[0], fallback), pair[0]),
    )
    return tuple(ranked[:k])
