"""A counting, thread-safe LRU cache for query results.

The paper's net serves heavy, highly repetitive traffic (hot concepts are
queried far more often than the tail), so an LRU over immutable query
results converts most of the load into dictionary lookups.  The cache
counts hits, misses and evictions so :class:`~repro.serving.AliCoCoService`
can surface cache effectiveness in its stats report.

The cache is shared by every serving thread, so one lock guards the
entry map and all three counters together.  That keeps the counters
consistent with each other under contention: every ``get`` increments
exactly one of ``hits``/``misses``, so ``hits + misses`` always equals
the number of lookups, and ``evictions`` never drifts from the entries
actually dropped.

Readers of the counters must use :meth:`LRUCache.counters` — one locked
snapshot of all three at once.  Reading the public ``hits``/``misses``/
``evictions`` attributes separately can tear under contention (a lookup
lands between two of the three reads and the report shows
``hits + misses != lookups``); the attributes stay public for
single-threaded inspection and backwards compatibility only.

Generational serving (:mod:`repro.kg.generations`) never clears a live
cache — stale entries are made unreachable by keying them with the
generation id and letting LRU pressure evict them.  What a generation
swap *does* want is attributable hit rates, so the cache keeps a
per-generation counter window: :meth:`begin_generation` closes the
current window and opens a new one, and :meth:`generation_counters`
reports each window separately while the lifetime totals keep counting.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from ..errors import ConfigError

#: Unique sentinel distinguishing "absent" from a cached ``None``.
_ABSENT = object()


@dataclass(frozen=True)
class CacheCounters:
    """One consistent snapshot of a cache's hit/miss/eviction counters.

    Taken under the cache lock, so ``hits + misses`` is exactly the
    number of lookups at snapshot time — the invariant a report can rely
    on, which three separate attribute reads cannot guarantee.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Lookups covered by this snapshot (``hits + misses``)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0


class LRUCache:
    """Least-recently-used mapping with a fixed capacity and counters.

    Safe for concurrent use: lookups, insertions and counter updates are
    serialised by a single internal lock.

    Args:
        capacity: Maximum number of entries; the least recently *used*
            (read or written) entry is evicted first.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigError(f"LRUCache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Per-generation counter windows: closed (label, CacheCounters)
        # snapshots plus the totals at the currently-open window's start.
        self._windows: list[tuple[str, CacheCounters]] = []
        self._window_label = "gen-0"
        self._window_start = CacheCounters()

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency; counts a hit or miss."""
        with self._lock:
            value = self._entries.get(key, _ABSENT)
            if value is _ABSENT:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the stalest entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def lookups(self) -> int:
        """Total ``get`` calls (always ``hits + misses``)."""
        with self._lock:
            return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        with self._lock:
            lookups = self.hits + self.misses
            return self.hits / lookups if lookups else 0.0

    def counters(self) -> CacheCounters:
        """All three counters in one locked snapshot.

        This is the only way to read a *consistent* triple under
        contention; use it anywhere the counters feed a report or an
        invariant check.
        """
        with self._lock:
            return CacheCounters(self.hits, self.misses, self.evictions)

    # ----------------------------------------------------------- generations
    def begin_generation(self, label: str) -> None:
        """Close the current counter window and open one named ``label``.

        Called by the serving tier on a generation swap so post-swap hit
        rate is attributable to the new generation instead of being
        diluted by the lifetime totals.  Lifetime counters keep running;
        only the window bookkeeping changes.
        """
        with self._lock:
            self._windows.append((self._window_label, self._window_delta()))
            self._window_label = label
            self._window_start = CacheCounters(self.hits, self.misses, self.evictions)

    def generation_counters(self) -> tuple[tuple[str, CacheCounters], ...]:
        """Per-generation counter windows, oldest first, open window last."""
        with self._lock:
            return (*self._windows, (self._window_label, self._window_delta()))

    def _window_delta(self) -> CacheCounters:
        # Caller holds self._lock.
        start = self._window_start
        return CacheCounters(
            self.hits - start.hits,
            self.misses - start.misses,
            self.evictions - start.evictions,
        )

    def clear(self, reset_counters: bool = False) -> None:
        """Drop every entry.

        Counters are preserved by default (lifetime totals survive a
        flush); ``reset_counters=True`` also zeroes them — and the
        generation windows — so a hit rate measured after the flush is
        not diluted by pre-flush traffic.
        """
        with self._lock:
            self._entries.clear()
            if reset_counters:
                self.hits = 0
                self.misses = 0
                self.evictions = 0
                self._windows = []
                self._window_label = "gen-0"
                self._window_start = CacheCounters()
