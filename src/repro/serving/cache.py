"""A counting, thread-safe LRU cache for query results.

The paper's net serves heavy, highly repetitive traffic (hot concepts are
queried far more often than the tail), so an LRU over immutable query
results converts most of the load into dictionary lookups.  The cache
counts hits, misses and evictions so :class:`~repro.serving.AliCoCoService`
can surface cache effectiveness in its stats report.

The cache is shared by every serving thread, so one lock guards the
entry map and all three counters together.  That keeps the counters
consistent with each other under contention: every ``get`` increments
exactly one of ``hits``/``misses``, so ``hits + misses`` always equals
the number of lookups, and ``evictions`` never drifts from the entries
actually dropped.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from ..errors import ConfigError

#: Unique sentinel distinguishing "absent" from a cached ``None``.
_ABSENT = object()


class LRUCache:
    """Least-recently-used mapping with a fixed capacity and counters.

    Safe for concurrent use: lookups, insertions and counter updates are
    serialised by a single internal lock.

    Args:
        capacity: Maximum number of entries; the least recently *used*
            (read or written) entry is evicted first.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigError(f"LRUCache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency; counts a hit or miss."""
        with self._lock:
            value = self._entries.get(key, _ABSENT)
            if value is _ABSENT:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the stalest entry if full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def lookups(self) -> int:
        """Total ``get`` calls (always ``hits + misses``)."""
        with self._lock:
            return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before any lookup)."""
        with self._lock:
            lookups = self.hits + self.misses
            return self.hits / lookups if lookups else 0.0

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
